(** TAQO — Testing the Accuracy of the Query Optimizer (paper §6.2).

    Samples plans uniformly from the Memo's optimization-context linkage (the
    counting method of Waas & Galindo-Legaria), costs each with the
    optimizer's estimates, executes each for an actual runtime, and scores
    the cost model's ability to order any two plans correctly. The score
    weights pairs by importance (misordering good plans hurts more) and by
    distance (plans with nearly equal actual runtimes are not scored). *)

type point = {
  plan : Ir.Expr.plan;
  estimated : float;  (** the optimizer's cost estimate *)
  actual : float;     (** measured (simulated) execution seconds *)
}

type outcome = {
  points : point list;     (** the sampled plans, chosen plan first *)
  score : float;           (** weighted pair-ordering correlation in [-1, 1] *)
  plans_in_space : float;  (** size of the recorded plan space *)
  best_rank : int;         (** actual-runtime rank of the optimizer's choice *)
}

val sample_plans :
  ?seed:int -> n:int -> Optimizer.report -> Ir.Expr.plan list
(** Up to [n] structurally distinct plans sampled uniformly from the report's
    Memo, always including the optimizer's chosen plan (first). *)

val correlation_score : point list -> float
(** The importance/distance-weighted pair-ordering score on its own. *)

val run :
  ?seed:int ->
  ?n:int ->
  Optimizer.report ->
  execute:(Ir.Expr.plan -> float) ->
  outcome
(** Sample, execute (through the supplied runner) and score one optimized
    query. *)

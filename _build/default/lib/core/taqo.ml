(* TAQO (paper §6.2): Testing the Accuracy of the Query Optimizer.

   Measures the cost model's ability to order any two plans correctly: plans
   are sampled uniformly from the Memo's optimization-request linkage (the
   counting method of Waas & Galindo-Legaria), costed by the optimizer, and
   executed to obtain actual runtimes. The score is a weighted pair-ordering
   correlation: misordering *good* plans is penalized more (importance), and
   pairs whose actual runtimes are close are not penalized at all
   (distance). *)

type point = {
  plan : Ir.Expr.plan;
  estimated : float; (* optimizer cost *)
  actual : float;    (* simulated-execution seconds *)
}

type outcome = {
  points : point list;
  score : float;          (* weighted pair-ordering correlation, [-1, 1] *)
  plans_in_space : float; (* size of the sampled plan space *)
  best_rank : int;        (* actual-runtime rank of the optimizer's choice *)
}

(* Sample [n] distinct plans (by structure) from the optimization report's
   Memo, always including the optimizer's chosen plan. *)
let sample_plans ?(seed = 7) ~(n : int) (report : Optimizer.report) :
    Ir.Expr.plan list =
  let rng = Gpos.Prng.create seed in
  let memo = report.Optimizer.memo in
  let root = Memolib.Memo.root memo in
  let req = report.Optimizer.root_req in
  let seen = Hashtbl.create 16 in
  let plans = ref [] in
  let consider plan =
    let key = Hashtbl.hash (Ir.Plan_ops.to_string ~show_cost:false plan) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      plans := plan :: !plans
    end
  in
  consider (Memolib.Extract.best_plan memo root req);
  (* sampling is with replacement; draw extra candidates to approach n
     distinct plans *)
  let attempts = max (4 * n) 32 in
  for _ = 1 to attempts do
    if List.length !plans < n then
      consider (Memolib.Extract.sample_plan rng memo root req)
  done;
  List.rev !plans

(* Importance- and distance-weighted pair ordering score (Fig. 11): for each
   plan pair whose actual runtimes differ materially, score +w if estimated
   and actual orders agree, -w otherwise, with w emphasizing pairs involving
   fast plans. *)
let correlation_score (points : point list) : float =
  let arr = Array.of_list points in
  let n = Array.length arr in
  if n < 2 then 1.0
  else begin
    (* ranks by actual runtime: importance weighting *)
    let by_actual = Array.copy arr in
    Array.sort (fun a b -> Float.compare a.actual b.actual) by_actual;
    let rank p =
      let rec go i = if by_actual.(i) == p then i else go (i + 1) in
      go 0
    in
    let total = ref 0.0 and agree = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let a = arr.(i) and b = arr.(j) in
        let d =
          Float.abs (a.actual -. b.actual) /. Float.max 1e-12 (Float.max a.actual b.actual)
        in
        (* ignore pairs that are practically equal in actual cost *)
        if d > 0.05 then begin
          let importance =
            1.0 /. float_of_int (1 + min (rank a) (rank b))
          in
          let w = importance *. d in
          let concordant =
            (a.estimated -. b.estimated) *. (a.actual -. b.actual) > 0.0
          in
          total := !total +. w;
          agree := !agree +. (if concordant then w else -.w)
        end
      done
    done;
    if !total <= 0.0 then 1.0 else !agree /. !total
  end

(* Run TAQO for one optimized query: sample plans, execute each on the
   cluster, and score the cost model's ordering. *)
let run ?(seed = 7) ?(n = 16) (report : Optimizer.report)
    ~(execute : Ir.Expr.plan -> float) : outcome =
  let memo = report.Optimizer.memo in
  let root = Memolib.Memo.root memo in
  let req = report.Optimizer.root_req in
  let plans = sample_plans ~seed ~n report in
  let points =
    List.map
      (fun plan ->
        { plan; estimated = plan.Ir.Expr.pcost; actual = execute plan })
      plans
  in
  let best = List.hd points in
  let better_than_best =
    List.length (List.filter (fun p -> p.actual < best.actual) points)
  in
  {
    points;
    score = correlation_score points;
    plans_in_space = Memolib.Extract.count_plans memo root req;
    best_rank = better_than_best + 1;
  }

(* Metadata ids (paper §4.1): "<system>.<object>.<major>.<minor>".
   Versions invalidate cached metadata objects that changed across queries. *)

type t = { system : int; oid : int; major : int; minor : int }

let make ?(system = 0) ?(major = 1) ?(minor = 1) oid =
  { system; oid; major; minor }

let to_string t = Printf.sprintf "%d.%d.%d.%d" t.system t.oid t.major t.minor

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      try
        {
          system = int_of_string a;
          oid = int_of_string b;
          major = int_of_string c;
          minor = int_of_string d;
        }
      with Failure _ ->
        Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error "bad mdid %S" s)
  | _ -> Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error "bad mdid %S" s

(* Same object, ignoring version. *)
let same_object a b = a.system = b.system && a.oid = b.oid

let equal a b = a = b

(* [newer_than a b]: a is a more recent version of the same object. *)
let newer_than a b =
  same_object a b && (a.major > b.major || (a.major = b.major && a.minor > b.minor))

let bump_version t = { t with minor = t.minor + 1 }

let hash t = Hashtbl.hash (t.system, t.oid)

lib/catalog/metadata.ml: Datum Dtype Ir Md_id Printf Stats

lib/catalog/md_cache.mli: Md_id Metadata Provider

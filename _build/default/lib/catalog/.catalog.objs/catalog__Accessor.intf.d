lib/catalog/accessor.mli: Colref Ir Md_cache Md_id Metadata Provider Stats Table_desc

lib/catalog/md_id.ml: Gpos Hashtbl Printf String

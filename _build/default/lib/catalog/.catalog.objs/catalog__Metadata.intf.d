lib/catalog/metadata.mli: Datum Dtype Ir Md_id Stats

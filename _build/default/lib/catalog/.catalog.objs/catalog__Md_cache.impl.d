lib/catalog/md_cache.ml: Fun Hashtbl List Md_id Metadata Mutex Provider

lib/catalog/md_id.mli:

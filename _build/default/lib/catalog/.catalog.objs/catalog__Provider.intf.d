lib/catalog/provider.mli: Md_id Metadata

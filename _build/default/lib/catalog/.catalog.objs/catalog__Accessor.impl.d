lib/catalog/accessor.ml: Array Colref Ir List Md_cache Md_id Metadata Option Provider Stats Table_desc

lib/catalog/provider.ml: Hashtbl List Md_id Metadata Option String

(* Metadata Cache (paper §3, §5): optimizer-side cache of metadata objects.
   Objects are pinned for the duration of an optimization session and
   invalidated when the provider reports a newer version. *)

type entry = { obj : Metadata.obj; mutable pins : int; mutable hits : int }

type t = {
  table : (string, entry) Hashtbl.t;
  mutable lookups : int;
  mutable misses : int;
  mutable invalidations : int;
  lock : Mutex.t;
}

let create () =
  {
    table = Hashtbl.create 64;
    lookups = 0;
    misses = 0;
    invalidations = 0;
    lock = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Look up an object; verify the cached version is still current via the
   provider's [current_version]; on miss or staleness, [fetch] and insert.
   The returned object is pinned; callers must [unpin] (the MD accessor does
   this when the optimization session ends). *)
let lookup_pin t ~(provider : Provider.t) kind mdid
    ~(fetch : unit -> Metadata.obj option) : Metadata.obj option =
  with_lock t (fun () ->
      t.lookups <- t.lookups + 1;
      let key = Metadata.cache_key kind mdid in
      let stale entry =
        match provider.Provider.current_version kind mdid with
        | None -> false
        | Some current ->
            Md_id.newer_than current (Metadata.mdid_of entry.obj)
      in
      let insert_fresh () =
        t.misses <- t.misses + 1;
        match fetch () with
        | None -> None
        | Some obj ->
            let entry = { obj; pins = 1; hits = 0 } in
            Hashtbl.replace t.table key entry;
            Some obj
      in
      match Hashtbl.find_opt t.table key with
      | Some entry when not (stale entry) ->
          entry.pins <- entry.pins + 1;
          entry.hits <- entry.hits + 1;
          Some entry.obj
      | Some _stale_entry ->
          t.invalidations <- t.invalidations + 1;
          Hashtbl.remove t.table key;
          insert_fresh ()
      | None -> insert_fresh ())

let unpin t kind mdid =
  with_lock t (fun () ->
      let key = Metadata.cache_key kind mdid in
      match Hashtbl.find_opt t.table key with
      | Some entry -> entry.pins <- max 0 (entry.pins - 1)
      | None -> ())

(* Evict unpinned entries (e.g. memory pressure or tests). *)
let evict_unpinned t =
  with_lock t (fun () ->
      let keys =
        Hashtbl.fold
          (fun k e acc -> if e.pins = 0 then k :: acc else acc)
          t.table []
      in
      List.iter (Hashtbl.remove t.table) keys;
      List.length keys)

let size t = with_lock t (fun () -> Hashtbl.length t.table)

type stats = { lookups : int; misses : int; invalidations : int }

let stats t =
  with_lock t (fun () ->
      { lookups = t.lookups; misses = t.misses; invalidations = t.invalidations })

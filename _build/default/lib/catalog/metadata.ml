open Ir

(* Catalog-side metadata objects exchanged between the database system and
   the optimizer (paper §5). Columns are identified positionally here;
   binding a table into a query mints fresh column references. *)

type col_md = { col_name : string; col_type : Dtype.t }

type dist_policy = Hash_cols of int list | Random_dist | Replicated_dist

type part_md = { pm_id : int; pm_lo : Datum.t; pm_hi : Datum.t }

type index_md = { im_name : string; im_col : int }

type rel_md = {
  rel_mdid : Md_id.t;
  rel_name : string;
  rel_cols : col_md list;
  rel_dist : dist_policy;
  rel_part_col : int option;  (* position of the partitioning column *)
  rel_parts : part_md list;
  rel_indexes : index_md list;
}

type rel_stats_md = {
  st_mdid : Md_id.t;  (* same object id as the relation, distinct kind *)
  st_rows : float;
  st_col_hists : (int * Stats.Histogram.t) list;  (* by column position *)
}

(* Any metadata object, as stored in the MD cache. *)
type obj = Rel of rel_md | Rel_stats of rel_stats_md

type kind = K_rel | K_rel_stats

let kind_of = function Rel _ -> K_rel | Rel_stats _ -> K_rel_stats

let mdid_of = function
  | Rel r -> r.rel_mdid
  | Rel_stats s -> s.st_mdid

let kind_to_string = function K_rel -> "rel" | K_rel_stats -> "relstats"

(* Cache key: object identity plus kind (versions handled separately). *)
let cache_key kind (mdid : Md_id.t) =
  Printf.sprintf "%s:%d.%d" (kind_to_string kind) mdid.Md_id.system
    mdid.Md_id.oid

let rel_make ?(dist = Random_dist) ?part_col ?(parts = []) ?(indexes = [])
    ~mdid ~name cols =
  {
    rel_mdid = mdid;
    rel_name = name;
    rel_cols = cols;
    rel_dist = dist;
    rel_part_col = part_col;
    rel_parts = parts;
    rel_indexes = indexes;
  }

(** Catalog-side metadata objects exchanged between the database system and
    the optimizer (paper §5). Columns are positional here; binding a table
    into a query mints fresh column references (see {!Accessor}). *)

open Ir

type col_md = { col_name : string; col_type : Dtype.t }

type dist_policy = Hash_cols of int list | Random_dist | Replicated_dist

type part_md = { pm_id : int; pm_lo : Datum.t; pm_hi : Datum.t }

type index_md = { im_name : string; im_col : int }

type rel_md = {
  rel_mdid : Md_id.t;
  rel_name : string;
  rel_cols : col_md list;
  rel_dist : dist_policy;
  rel_part_col : int option;  (** position of the partitioning column *)
  rel_parts : part_md list;
  rel_indexes : index_md list;
}

type rel_stats_md = {
  st_mdid : Md_id.t;  (** same object id as the relation, distinct kind *)
  st_rows : float;
  st_col_hists : (int * Stats.Histogram.t) list;  (** by column position *)
}

(** Any metadata object, as stored in the MD cache. *)
type obj = Rel of rel_md | Rel_stats of rel_stats_md

type kind = K_rel | K_rel_stats

val kind_of : obj -> kind
val mdid_of : obj -> Md_id.t
val kind_to_string : kind -> string

val cache_key : kind -> Md_id.t -> string
(** Object identity plus kind; versions are handled separately. *)

val rel_make :
  ?dist:dist_policy ->
  ?part_col:int ->
  ?parts:part_md list ->
  ?indexes:index_md list ->
  mdid:Md_id.t ->
  name:string ->
  col_md list ->
  rel_md

(** Metadata ids (paper §4.1): ["<system>.<object>.<major>.<minor>"].
    Versions invalidate cached metadata objects that changed across
    queries. *)

type t = { system : int; oid : int; major : int; minor : int }

val make : ?system:int -> ?major:int -> ?minor:int -> int -> t
(** [make oid] defaults to system 0, version 1.1. *)

val to_string : t -> string
val of_string : string -> t

val same_object : t -> t -> bool
(** Same object identity, version ignored. *)

val equal : t -> t -> bool

val newer_than : t -> t -> bool
(** [newer_than a b]: [a] is a more recent version of the same object. *)

val bump_version : t -> t
val hash : t -> int

(* Metadata Provider interface (paper §5, Fig. 9): a system-specific plug-in
   that serves metadata objects to the optimizer. Implementations include the
   in-memory provider (backed by a live "database system" catalog), the
   file-based DXL provider (used for AMPERe replay and offline testing), and
   recording/filtering wrappers. *)

type t = {
  provider_name : string;
  lookup_rel_by_name : string -> Metadata.rel_md option;
  lookup_rel : Md_id.t -> Metadata.rel_md option;
  lookup_stats : Md_id.t -> Metadata.rel_stats_md option;
  (* current version of an object, used for cache invalidation *)
  current_version : Metadata.kind -> Md_id.t -> Md_id.t option;
}

let name t = t.provider_name

(* A provider over a fixed list of metadata objects. *)
let of_objects ~name (objs : Metadata.obj list) : t =
  let rels =
    List.filter_map
      (function Metadata.Rel r -> Some r | Metadata.Rel_stats _ -> None)
      objs
  in
  let stats =
    List.filter_map
      (function Metadata.Rel_stats s -> Some s | Metadata.Rel _ -> None)
      objs
  in
  {
    provider_name = name;
    lookup_rel_by_name =
      (* SQL identifiers are case-folded; match names case-insensitively *)
      (fun n ->
        let fold = String.lowercase_ascii in
        List.find_opt (fun r -> fold r.Metadata.rel_name = fold n) rels);
    lookup_rel =
      (fun id ->
        List.find_opt
          (fun r -> Md_id.same_object r.Metadata.rel_mdid id)
          rels);
    lookup_stats =
      (fun id ->
        List.find_opt
          (fun s -> Md_id.same_object s.Metadata.st_mdid id)
          stats);
    current_version =
      (fun kind id ->
        match kind with
        | Metadata.K_rel ->
            List.find_opt
              (fun r -> Md_id.same_object r.Metadata.rel_mdid id)
              rels
            |> Option.map (fun r -> r.Metadata.rel_mdid)
        | Metadata.K_rel_stats ->
            List.find_opt
              (fun s -> Md_id.same_object s.Metadata.st_mdid id)
              stats
            |> Option.map (fun s -> s.Metadata.st_mdid));
  }

(* Wrap a provider, recording every object served. Used by the AMPERe dump
   harvester to capture the minimal metadata needed to replay a query. *)
let recording (inner : t) : t * (unit -> Metadata.obj list) =
  let recorded : (string, Metadata.obj) Hashtbl.t = Hashtbl.create 16 in
  let record obj =
    Hashtbl.replace recorded
      (Metadata.cache_key (Metadata.kind_of obj) (Metadata.mdid_of obj))
      obj
  in
  let t =
    {
      provider_name = inner.provider_name ^ "+recording";
      lookup_rel_by_name =
        (fun n ->
          let r = inner.lookup_rel_by_name n in
          Option.iter (fun r -> record (Metadata.Rel r)) r;
          r);
      lookup_rel =
        (fun id ->
          let r = inner.lookup_rel id in
          Option.iter (fun r -> record (Metadata.Rel r)) r;
          r);
      lookup_stats =
        (fun id ->
          let s = inner.lookup_stats id in
          Option.iter (fun s -> record (Metadata.Rel_stats s)) s;
          s);
      current_version = inner.current_version;
    }
  in
  (t, fun () -> Hashtbl.fold (fun _ o acc -> o :: acc) recorded [])

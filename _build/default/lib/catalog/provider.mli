(** Metadata Provider interface (paper §5, Fig. 9): a system-specific plug-in
    serving metadata objects to the optimizer. Implementations include the
    in-memory provider (a live "database catalog"), the file-based DXL
    provider (AMPERe replay, offline testing — see {!Dxl.Dxl_metadata}), and
    the recording wrapper used to harvest dump contents. *)

type t = {
  provider_name : string;
  lookup_rel_by_name : string -> Metadata.rel_md option;
      (** case-insensitive (SQL identifiers are folded) *)
  lookup_rel : Md_id.t -> Metadata.rel_md option;
  lookup_stats : Md_id.t -> Metadata.rel_stats_md option;
  current_version : Metadata.kind -> Md_id.t -> Md_id.t option;
      (** current version of an object, for cache invalidation *)
}

val name : t -> string

val of_objects : name:string -> Metadata.obj list -> t
(** A provider over a fixed object list. *)

val recording : t -> t * (unit -> Metadata.obj list)
(** Wrap a provider, recording every object served — the AMPERe harvest
    mechanism. The thunk returns the deduplicated set so far. *)

(** Metadata Cache (paper §3, §5): optimizer-side cache of metadata objects.

    Objects are pinned for the duration of an optimization session and
    invalidated when the provider reports a newer version of the same object
    (metadata versions are part of the Mdid). Thread-safe. *)

type t

val create : unit -> t

val lookup_pin :
  t ->
  provider:Provider.t ->
  Metadata.kind ->
  Md_id.t ->
  fetch:(unit -> Metadata.obj option) ->
  Metadata.obj option
(** Look up an object; verify the cached version is still current via the
    provider; on miss or staleness run [fetch] and cache the result. The
    returned object is pinned — callers must {!unpin} (the MD accessor does
    this when its session ends). *)

val unpin : t -> Metadata.kind -> Md_id.t -> unit

val evict_unpinned : t -> int
(** Drop all unpinned entries; returns how many were evicted. *)

val size : t -> int

type stats = { lookups : int; misses : int; invalidations : int }

val stats : t -> stats

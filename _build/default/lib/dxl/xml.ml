(* Minimal XML reader/writer used by DXL. Supports elements, attributes and
   text nodes with the standard five entities — all that DXL messages need. *)

type node =
  | Element of element
  | Text of string

and element = { tag : string; attrs : (string * string) list; children : node list }

let element ?(attrs = []) ?(children = []) tag = { tag; attrs; children }

let attr (e : element) name = List.assoc_opt name e.attrs

let attr_exn e name =
  match attr e name with
  | Some v -> v
  | None ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
        "element <%s> missing attribute %S" e.tag name

let child_elements (e : element) =
  List.filter_map (function Element c -> Some c | Text _ -> None) e.children

let find_child e tag = List.find_opt (fun c -> c.tag = tag) (child_elements e)

let find_child_exn e tag =
  match find_child e tag with
  | Some c -> c
  | None ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
        "element <%s> missing child <%s>" e.tag tag

let children_named e tag =
  List.filter (fun c -> c.tag = tag) (child_elements e)

let text_content (e : element) =
  String.concat ""
    (List.filter_map (function Text t -> Some t | Element _ -> None) e.children)

(* --- printing --- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(header = true) (root : element) =
  let buf = Buffer.create 1024 in
  if header then
    Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  let rec emit indent (e : element) =
    let pad = String.make (indent * 2) ' ' in
    Buffer.add_string buf pad;
    Buffer.add_char buf '<';
    Buffer.add_string buf e.tag;
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape v)))
      e.attrs;
    match e.children with
    | [] -> Buffer.add_string buf "/>\n"
    | children ->
        Buffer.add_string buf ">";
        let only_text =
          List.for_all (function Text _ -> true | Element _ -> false) children
        in
        if only_text then begin
          List.iter
            (function Text t -> Buffer.add_string buf (escape t) | _ -> ())
            children;
          Buffer.add_string buf (Printf.sprintf "</%s>\n" e.tag)
        end
        else begin
          Buffer.add_char buf '\n';
          List.iter
            (function
              | Element c -> emit (indent + 1) c
              | Text t ->
                  Buffer.add_string buf (String.make ((indent + 1) * 2) ' ');
                  Buffer.add_string buf (escape t);
                  Buffer.add_char buf '\n')
            children;
          Buffer.add_string buf pad;
          Buffer.add_string buf (Printf.sprintf "</%s>\n" e.tag)
        end
  in
  emit 0 root;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_failure of string

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      match String.index_from_opt s !i ';' with
      | Some j ->
          let entity = String.sub s (!i + 1) (j - !i - 1) in
          (match entity with
          | "lt" -> Buffer.add_char buf '<'
          | "gt" -> Buffer.add_char buf '>'
          | "amp" -> Buffer.add_char buf '&'
          | "quot" -> Buffer.add_char buf '"'
          | "apos" -> Buffer.add_char buf '\''
          | e -> raise (Parse_failure ("unknown entity &" ^ e ^ ";")));
          i := j + 1
      | None -> raise (Parse_failure "unterminated entity")
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

type parser_state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.input
    && (match st.input.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ ->
      raise
        (Parse_failure
           (Printf.sprintf "expected %c at offset %d" c st.pos))

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = ':' || c = '.'

let read_name st =
  let start = st.pos in
  while
    st.pos < String.length st.input && is_name_char st.input.[st.pos]
  do
    advance st
  done;
  if st.pos = start then
    raise (Parse_failure (Printf.sprintf "expected name at offset %d" st.pos));
  String.sub st.input start (st.pos - start)

let read_quoted st =
  let quote =
    match peek st with
    | Some ('"' as q) | Some ('\'' as q) ->
        advance st;
        q
    | _ -> raise (Parse_failure "expected quoted value")
  in
  let start = st.pos in
  while st.pos < String.length st.input && st.input.[st.pos] <> quote do
    advance st
  done;
  let v = String.sub st.input start (st.pos - start) in
  expect st quote;
  unescape v

let rec skip_misc st =
  skip_ws st;
  if
    st.pos + 3 < String.length st.input
    && String.sub st.input st.pos 4 = "<!--"
  then begin
    (* comment *)
    let rec find i =
      if i + 2 >= String.length st.input then
        raise (Parse_failure "unterminated comment")
      else if String.sub st.input i 3 = "-->" then i + 3
      else find (i + 1)
    in
    st.pos <- find (st.pos + 4);
    skip_misc st
  end
  else if
    st.pos + 1 < String.length st.input
    && st.input.[st.pos] = '<'
    && st.input.[st.pos + 1] = '?'
  then begin
    (* processing instruction / declaration *)
    match String.index_from_opt st.input st.pos '>' with
    | Some j ->
        st.pos <- j + 1;
        skip_misc st
    | None -> raise (Parse_failure "unterminated declaration")
  end

let rec parse_element st : element =
  skip_misc st;
  expect st '<';
  let tag = read_name st in
  let attrs = ref [] in
  let rec read_attrs () =
    skip_ws st;
    match peek st with
    | Some '/' | Some '>' -> ()
    | Some _ ->
        let name = read_name st in
        skip_ws st;
        expect st '=';
        skip_ws st;
        let v = read_quoted st in
        attrs := (name, v) :: !attrs;
        read_attrs ()
    | None -> raise (Parse_failure "unexpected end of input in attributes")
  in
  read_attrs ();
  match peek st with
  | Some '/' ->
      advance st;
      expect st '>';
      { tag; attrs = List.rev !attrs; children = [] }
  | Some '>' ->
      advance st;
      let children = ref [] in
      let rec read_children () =
        (* accumulate text until '<' *)
        let start = st.pos in
        while st.pos < String.length st.input && st.input.[st.pos] <> '<' do
          advance st
        done;
        if st.pos > start then begin
          let raw = String.sub st.input start (st.pos - start) in
          let trimmed = String.trim raw in
          if trimmed <> "" then children := Text (unescape trimmed) :: !children
        end;
        if st.pos + 1 < String.length st.input && st.input.[st.pos + 1] = '/'
        then begin
          (* closing tag *)
          advance st;
          advance st;
          let close = read_name st in
          skip_ws st;
          expect st '>';
          if close <> tag then
            raise
              (Parse_failure
                 (Printf.sprintf "mismatched </%s>, expected </%s>" close tag))
        end
        else if
          st.pos + 3 < String.length st.input
          && String.sub st.input st.pos 4 = "<!--"
        then begin
          skip_misc st;
          read_children ()
        end
        else begin
          let child = parse_element st in
          children := Element child :: !children;
          read_children ()
        end
      in
      read_children ();
      { tag; attrs = List.rev !attrs; children = List.rev !children }
  | _ -> raise (Parse_failure "malformed element")

let of_string (s : string) : element =
  let st = { input = s; pos = 0 } in
  try
    skip_misc st;
    let e = parse_element st in
    skip_ws st;
    e
  with Parse_failure msg ->
    Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error "XML parse error: %s"
      msg

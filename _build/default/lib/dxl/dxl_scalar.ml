open Ir

(* DXL (de)serialization of scalar expressions, column references, sort
   specifications and projections. Subplans never cross DXL: they are
   internal to the legacy Planner's execution and are rejected here. *)

let colref_to_xml ?(tag = "dxl:Ident") (c : Colref.t) : Xml.element =
  Xml.element tag
    ~attrs:
      [
        ("ColId", string_of_int (Colref.id c));
        ("Name", Colref.name c);
        ("Type", Dtype.to_string (Colref.ty c));
      ]

let colref_of_xml (e : Xml.element) : Colref.t =
  Colref.make
    ~id:(int_of_string (Xml.attr_exn e "ColId"))
    ~name:(Xml.attr_exn e "Name")
    ~ty:(Dtype.of_string (Xml.attr_exn e "Type"))

let cmp_of_string s =
  match s with
  | "=" -> Expr.Eq
  | "<>" -> Expr.Neq
  | "<" -> Expr.Lt
  | "<=" -> Expr.Le
  | ">" -> Expr.Gt
  | ">=" -> Expr.Ge
  | _ -> Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error "bad cmp %S" s

let arith_of_string s =
  match s with
  | "+" -> Expr.Add
  | "-" -> Expr.Sub
  | "*" -> Expr.Mul
  | "/" -> Expr.Div
  | "%" -> Expr.Mod
  | _ -> Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error "bad arith %S" s

let rec to_xml (s : Expr.scalar) : Xml.element =
  match s with
  | Expr.Col c -> colref_to_xml c
  | Expr.Const d ->
      Xml.element "dxl:Const" ~attrs:[ ("Value", Datum.serialize d) ]
  | Expr.Cmp (op, a, b) ->
      Xml.element "dxl:Comparison"
        ~attrs:[ ("Operator", Expr.cmp_to_string op) ]
        ~children:[ Xml.Element (to_xml a); Xml.Element (to_xml b) ]
  | Expr.And cs ->
      Xml.element "dxl:And"
        ~children:(List.map (fun c -> Xml.Element (to_xml c)) cs)
  | Expr.Or cs ->
      Xml.element "dxl:Or"
        ~children:(List.map (fun c -> Xml.Element (to_xml c)) cs)
  | Expr.Not c -> Xml.element "dxl:Not" ~children:[ Xml.Element (to_xml c) ]
  | Expr.Arith (op, a, b) ->
      Xml.element "dxl:Arith"
        ~attrs:[ ("Operator", Expr.arith_to_string op) ]
        ~children:[ Xml.Element (to_xml a); Xml.Element (to_xml b) ]
  | Expr.Is_null c ->
      Xml.element "dxl:IsNull" ~children:[ Xml.Element (to_xml c) ]
  | Expr.Case (whens, els) ->
      let when_elems =
        List.map
          (fun (c, v) ->
            Xml.Element
              (Xml.element "dxl:When"
                 ~children:[ Xml.Element (to_xml c); Xml.Element (to_xml v) ]))
          whens
      in
      let else_elems =
        match els with
        | None -> []
        | Some v ->
            [
              Xml.Element
                (Xml.element "dxl:Else" ~children:[ Xml.Element (to_xml v) ]);
            ]
      in
      Xml.element "dxl:Case" ~children:(when_elems @ else_elems)
  | Expr.In_list (c, ds) ->
      Xml.element "dxl:InList"
        ~attrs:
          [ ("Values", String.concat "|" (List.map Datum.serialize ds)) ]
        ~children:[ Xml.Element (to_xml c) ]
  | Expr.Like (c, pat) ->
      Xml.element "dxl:Like" ~attrs:[ ("Pattern", pat) ]
        ~children:[ Xml.Element (to_xml c) ]
  | Expr.Coalesce cs ->
      Xml.element "dxl:Coalesce"
        ~children:(List.map (fun c -> Xml.Element (to_xml c)) cs)
  | Expr.Cast (c, ty) ->
      Xml.element "dxl:Cast"
        ~attrs:[ ("Type", Dtype.to_string ty) ]
        ~children:[ Xml.Element (to_xml c) ]
  | Expr.Subplan _ ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
        "SubPlan scalars cannot be serialized to DXL"

let rec of_xml (e : Xml.element) : Expr.scalar =
  let kids () = List.map of_xml (Xml.child_elements e) in
  let kid n =
    match List.nth_opt (Xml.child_elements e) n with
    | Some c -> of_xml c
    | None ->
        Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
          "<%s>: missing operand %d" e.Xml.tag n
  in
  match e.Xml.tag with
  | "dxl:Ident" -> Expr.Col (colref_of_xml e)
  | "dxl:Const" -> Expr.Const (Datum.deserialize (Xml.attr_exn e "Value"))
  | "dxl:Comparison" ->
      Expr.Cmp (cmp_of_string (Xml.attr_exn e "Operator"), kid 0, kid 1)
  | "dxl:And" -> Expr.And (kids ())
  | "dxl:Or" -> Expr.Or (kids ())
  | "dxl:Not" -> Expr.Not (kid 0)
  | "dxl:Arith" ->
      Expr.Arith (arith_of_string (Xml.attr_exn e "Operator"), kid 0, kid 1)
  | "dxl:IsNull" -> Expr.Is_null (kid 0)
  | "dxl:Case" ->
      let whens =
        Xml.children_named e "dxl:When"
        |> List.map (fun w ->
               match Xml.child_elements w with
               | [ c; v ] -> (of_xml c, of_xml v)
               | _ ->
                   Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
                     "malformed <dxl:When>")
      in
      let els =
        match Xml.find_child e "dxl:Else" with
        | Some el -> (
            match Xml.child_elements el with
            | [ v ] -> Some (of_xml v)
            | _ -> None)
        | None -> None
      in
      Expr.Case (whens, els)
  | "dxl:InList" ->
      let values =
        match Xml.attr_exn e "Values" with
        | "" -> []
        | s -> List.map Datum.deserialize (String.split_on_char '|' s)
      in
      Expr.In_list (kid 0, values)
  | "dxl:Like" -> Expr.Like (kid 0, Xml.attr_exn e "Pattern")
  | "dxl:Coalesce" -> Expr.Coalesce (kids ())
  | "dxl:Cast" -> Expr.Cast (kid 0, Dtype.of_string (Xml.attr_exn e "Type"))
  | tag ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
        "unknown scalar element <%s>" tag

(* --- sort specifications --- *)

let sortspec_to_xml (spec : Sortspec.t) : Xml.element =
  Xml.element "dxl:SortingColumnList"
    ~children:
      (List.map
         (fun (i : Sortspec.item) ->
           Xml.Element
             (Xml.element "dxl:SortingColumn"
                ~attrs:
                  [
                    ("ColId", string_of_int (Colref.id i.Sortspec.col));
                    ("Name", Colref.name i.Sortspec.col);
                    ("Type", Dtype.to_string (Colref.ty i.Sortspec.col));
                    ("Dir", Sortspec.dir_to_string i.Sortspec.dir);
                  ]))
         spec)

let sortspec_of_xml (e : Xml.element) : Sortspec.t =
  Xml.children_named e "dxl:SortingColumn"
  |> List.map (fun c ->
         let col =
           Colref.make
             ~id:(int_of_string (Xml.attr_exn c "ColId"))
             ~name:(Xml.attr_exn c "Name")
             ~ty:(Dtype.of_string (Xml.attr_exn c "Type"))
         in
         match Xml.attr_exn c "Dir" with
         | "asc" -> Sortspec.asc col
         | "desc" -> Sortspec.desc col
         | d ->
             Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
               "bad sort direction %S" d)

(* --- aggregates and projections --- *)

let agg_to_xml (a : Expr.agg) : Xml.element =
  let attrs =
    [
      ("Kind", Expr.agg_kind_to_string a.Expr.agg_kind);
      ("Distinct", string_of_bool a.Expr.agg_distinct);
    ]
  in
  Xml.element "dxl:Aggregate" ~attrs
    ~children:
      ([ Xml.Element (colref_to_xml ~tag:"dxl:Output" a.Expr.agg_out) ]
      @
      match a.Expr.agg_arg with
      | None -> []
      | Some arg ->
          [
            Xml.Element
              (Xml.element "dxl:Arg" ~children:[ Xml.Element (to_xml arg) ]);
          ])

let agg_kind_of_string = function
  | "count(*)" -> Expr.Count_star
  | "count" -> Expr.Count
  | "sum" -> Expr.Sum
  | "min" -> Expr.Min
  | "max" -> Expr.Max
  | s ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error "bad agg kind %S" s

let agg_of_xml (e : Xml.element) : Expr.agg =
  let out = colref_of_xml (Xml.find_child_exn e "dxl:Output") in
  let arg =
    match Xml.find_child e "dxl:Arg" with
    | Some a -> (
        match Xml.child_elements a with [ x ] -> Some (of_xml x) | _ -> None)
    | None -> None
  in
  {
    Expr.agg_kind = agg_kind_of_string (Xml.attr_exn e "Kind");
    agg_arg = arg;
    agg_distinct = bool_of_string (Xml.attr_exn e "Distinct");
    agg_out = out;
  }

let wfunc_to_xml (w : Expr.wfunc) : Xml.element =
  Xml.element "dxl:WindowFunc"
    ~attrs:[ ("Kind", Expr.wkind_to_string w.Expr.wf_kind) ]
    ~children:
      ([ Xml.Element (colref_to_xml ~tag:"dxl:Output" w.Expr.wf_out) ]
      @
      match w.Expr.wf_arg with
      | None -> []
      | Some arg ->
          [
            Xml.Element
              (Xml.element "dxl:Arg" ~children:[ Xml.Element (to_xml arg) ]);
          ])

let wkind_of_string = function
  | "row_number" -> Expr.W_row_number
  | "rank" -> Expr.W_rank
  | "dense_rank" -> Expr.W_dense_rank
  | s -> Expr.W_agg (agg_kind_of_string s)

let wfunc_of_xml (e : Xml.element) : Expr.wfunc =
  let out = colref_of_xml (Xml.find_child_exn e "dxl:Output") in
  let arg =
    match Xml.find_child e "dxl:Arg" with
    | Some a -> (
        match Xml.child_elements a with [ x ] -> Some (of_xml x) | _ -> None)
    | None -> None
  in
  {
    Expr.wf_kind = wkind_of_string (Xml.attr_exn e "Kind");
    wf_arg = arg;
    wf_out = out;
  }

let window_payload_to_children partition order wfuncs =
  Xml.Element
    (Xml.element "dxl:PartitionColumns"
       ~children:
         (List.map (fun c -> Xml.Element (colref_to_xml c)) partition))
  :: Xml.Element (sortspec_to_xml order)
  :: List.map (fun w -> Xml.Element (wfunc_to_xml w)) wfuncs

let window_payload_of_xml (e : Xml.element) =
  let partition =
    Xml.child_elements (Xml.find_child_exn e "dxl:PartitionColumns")
    |> List.map colref_of_xml
  in
  let order = sortspec_of_xml (Xml.find_child_exn e "dxl:SortingColumnList") in
  let wfuncs = Xml.children_named e "dxl:WindowFunc" |> List.map wfunc_of_xml in
  (partition, order, wfuncs)

let proj_to_xml (p : Expr.proj) : Xml.element =
  Xml.element "dxl:ProjElem"
    ~children:
      [
        Xml.Element (colref_to_xml ~tag:"dxl:Output" p.Expr.proj_out);
        Xml.Element
          (Xml.element "dxl:Expr"
             ~children:[ Xml.Element (to_xml p.Expr.proj_expr) ]);
      ]

let proj_of_xml (e : Xml.element) : Expr.proj =
  let out = colref_of_xml (Xml.find_child_exn e "dxl:Output") in
  let expr =
    match Xml.child_elements (Xml.find_child_exn e "dxl:Expr") with
    | [ x ] -> of_xml x
    | _ ->
        Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
          "malformed <dxl:Expr>"
  in
  { Expr.proj_expr = expr; proj_out = out }

(* --- table descriptors --- *)

let table_desc_to_xml (td : Table_desc.t) : Xml.element =
  let cols =
    Xml.element "dxl:Columns"
      ~children:
        (List.map (fun c -> Xml.Element (colref_to_xml c)) td.Table_desc.cols)
  in
  let dist_attrs =
    match td.Table_desc.dist with
    | Table_desc.Dist_hash cols ->
        [
          ("DistributionPolicy", "Hash");
          ( "DistributionColumns",
            String.concat "," (List.map (fun c -> string_of_int (Colref.id c)) cols)
          );
        ]
    | Table_desc.Dist_random -> [ ("DistributionPolicy", "Random") ]
    | Table_desc.Dist_replicated -> [ ("DistributionPolicy", "Replicated") ]
  in
  let part_children =
    match td.Table_desc.part_col with
    | None -> []
    | Some pc ->
        [
          Xml.Element
            (Xml.element "dxl:Partitioning"
               ~attrs:[ ("ColId", string_of_int (Colref.id pc)) ]
               ~children:
                 (List.map
                    (fun (p : Table_desc.part) ->
                      Xml.Element
                        (Xml.element "dxl:Partition"
                           ~attrs:
                             [
                               ("Id", string_of_int p.Table_desc.part_id);
                               ("Lo", Datum.serialize p.Table_desc.lo);
                               ("Hi", Datum.serialize p.Table_desc.hi);
                             ]))
                    td.Table_desc.parts));
        ]
  in
  let index_children =
    List.map
      (fun (i : Table_desc.index) ->
        Xml.Element
          (Xml.element "dxl:Index"
             ~attrs:
               [
                 ("Name", i.Table_desc.idx_name);
                 ("ColId", string_of_int (Colref.id i.Table_desc.idx_col));
               ]))
      td.Table_desc.indexes
  in
  Xml.element "dxl:TableDescriptor"
    ~attrs:([ ("Mdid", td.Table_desc.mdid); ("Name", td.Table_desc.name) ] @ dist_attrs)
    ~children:([ Xml.Element cols ] @ part_children @ index_children)

let table_desc_of_xml (e : Xml.element) : Table_desc.t =
  let cols =
    Xml.child_elements (Xml.find_child_exn e "dxl:Columns")
    |> List.map colref_of_xml
  in
  let by_id id =
    match List.find_opt (fun c -> Colref.id c = id) cols with
    | Some c -> c
    | None ->
        Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
          "table descriptor references unknown column %d" id
  in
  let dist =
    match Xml.attr e "DistributionPolicy" with
    | Some "Hash" ->
        let col_ids =
          Xml.attr_exn e "DistributionColumns"
          |> String.split_on_char ','
          |> List.filter (fun s -> s <> "")
          |> List.map int_of_string
        in
        Table_desc.Dist_hash (List.map by_id col_ids)
    | Some "Replicated" -> Table_desc.Dist_replicated
    | Some "Random" | None -> Table_desc.Dist_random
    | Some p ->
        Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
          "bad distribution policy %S" p
  in
  let part_col, parts =
    match Xml.find_child e "dxl:Partitioning" with
    | None -> (None, [])
    | Some p ->
        let pc = by_id (int_of_string (Xml.attr_exn p "ColId")) in
        let parts =
          Xml.children_named p "dxl:Partition"
          |> List.map (fun pe ->
                 {
                   Table_desc.part_id = int_of_string (Xml.attr_exn pe "Id");
                   lo = Datum.deserialize (Xml.attr_exn pe "Lo");
                   hi = Datum.deserialize (Xml.attr_exn pe "Hi");
                 })
        in
        (Some pc, parts)
  in
  let indexes =
    Xml.children_named e "dxl:Index"
    |> List.map (fun ie ->
           {
             Table_desc.idx_name = Xml.attr_exn ie "Name";
             idx_col = by_id (int_of_string (Xml.attr_exn ie "ColId"));
           })
  in
  Table_desc.make ~dist ?part_col ~parts ~indexes
    ~mdid:(Xml.attr_exn e "Mdid") ~name:(Xml.attr_exn e "Name") cols

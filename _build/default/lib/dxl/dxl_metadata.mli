(** DXL serialization of metadata objects (paper §5): relations and relation
    statistics, histograms included. Enables the file-based MD Provider used
    to replay AMPERe dumps with no live backend (Fig. 10). *)

val rel_to_xml : Catalog.Metadata.rel_md -> Xml.element
val rel_of_xml : Xml.element -> Catalog.Metadata.rel_md

val histogram_to_xml : Stats.Histogram.t -> Xml.element
val histogram_of_xml : Xml.element -> Stats.Histogram.t

val rel_stats_to_xml : Catalog.Metadata.rel_stats_md -> Xml.element
val rel_stats_of_xml : Xml.element -> Catalog.Metadata.rel_stats_md

val obj_to_xml : Catalog.Metadata.obj -> Xml.element
val obj_of_xml : Xml.element -> Catalog.Metadata.obj option

val objects_to_xml : Catalog.Metadata.obj list -> Xml.element
val objects_of_xml : Xml.element -> Catalog.Metadata.obj list
val to_string : Catalog.Metadata.obj list -> string

val file_provider_of_string : string -> Catalog.Provider.t
(** A provider serving the metadata objects of a serialized DXL document. *)

val file_provider : string -> Catalog.Provider.t
(** Same, reading the document from a file path. *)

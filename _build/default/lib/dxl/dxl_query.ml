open Ir

(* DXL query messages (paper Listing 1): required output columns, sorting
   columns, result distribution and the logical operator tree. A DXL query is
   the input to Orca; the database system's Query2DXL translator produces it. *)

type t = {
  output : Colref.t list;
  order : Sortspec.t;
  dist : Props.dist_req;
  tree : Ltree.t;
}

let dist_req_to_xml (d : Props.dist_req) : Xml.element =
  let attrs =
    match d with
    | Props.Any_dist -> [ ("Type", "Any") ]
    | Props.Req_singleton -> [ ("Type", "Singleton") ]
    | Props.Req_replicated -> [ ("Type", "Replicated") ]
    | Props.Req_non_singleton -> [ ("Type", "NonSingleton") ]
    | Props.Req_hashed cols ->
        [
          ("Type", "Hashed");
          ( "Columns",
            String.concat ","
              (List.map (fun c -> string_of_int (Colref.id c)) cols) );
        ]
  in
  Xml.element "dxl:Distribution" ~attrs

let dist_req_of_xml ~(resolve : int -> Colref.t) (e : Xml.element) :
    Props.dist_req =
  match Xml.attr_exn e "Type" with
  | "Any" -> Props.Any_dist
  | "Singleton" -> Props.Req_singleton
  | "Replicated" -> Props.Req_replicated
  | "NonSingleton" -> Props.Req_non_singleton
  | "Hashed" ->
      let ids =
        Xml.attr_exn e "Columns" |> String.split_on_char ','
        |> List.filter (fun s -> s <> "")
        |> List.map int_of_string
      in
      Props.Req_hashed (List.map resolve ids)
  | t ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
        "bad distribution type %S" t

(* --- logical operators --- *)

let apply_kind_to_xml (k : Expr.apply_kind) =
  match k with
  | Expr.Apply_scalar c ->
      ([ ("Kind", "Scalar") ], [ Xml.Element (Dxl_scalar.colref_to_xml ~tag:"dxl:Output" c) ])
  | Expr.Apply_exists -> ([ ("Kind", "Exists") ], [])
  | Expr.Apply_not_exists -> ([ ("Kind", "NotExists") ], [])
  | Expr.Apply_in (e, c) ->
      ( [ ("Kind", "In") ],
        [
          Xml.Element
            (Xml.element "dxl:Tested"
               ~children:[ Xml.Element (Dxl_scalar.to_xml e) ]);
          Xml.Element (Dxl_scalar.colref_to_xml ~tag:"dxl:Output" c);
        ] )
  | Expr.Apply_not_in (e, c) ->
      ( [ ("Kind", "NotIn") ],
        [
          Xml.Element
            (Xml.element "dxl:Tested"
               ~children:[ Xml.Element (Dxl_scalar.to_xml e) ]);
          Xml.Element (Dxl_scalar.colref_to_xml ~tag:"dxl:Output" c);
        ] )

let rec logical_to_xml (t : Ltree.t) : Xml.element =
  let children = List.map (fun c -> Xml.Element (logical_to_xml c)) t.Ltree.children in
  let scalar_child label s =
    Xml.Element
      (Xml.element label ~children:[ Xml.Element (Dxl_scalar.to_xml s) ])
  in
  match t.Ltree.op with
  | Expr.L_get td ->
      Xml.element "dxl:LogicalGet"
        ~children:[ Xml.Element (Dxl_scalar.table_desc_to_xml td) ]
  | Expr.L_select pred ->
      Xml.element "dxl:LogicalSelect"
        ~children:(scalar_child "dxl:Predicate" pred :: children)
  | Expr.L_project projs ->
      Xml.element "dxl:LogicalProject"
        ~children:
          (List.map (fun p -> Xml.Element (Dxl_scalar.proj_to_xml p)) projs
          @ children)
  | Expr.L_join (kind, cond) ->
      Xml.element "dxl:LogicalJoin"
        ~attrs:[ ("JoinType", Expr.join_kind_to_string kind) ]
        ~children:(children @ [ scalar_child "dxl:JoinCondition" cond ])
  | Expr.L_gb_agg (phase, keys, aggs) ->
      Xml.element "dxl:LogicalGbAgg"
        ~attrs:
          [
            ("Phase", Expr.agg_phase_to_string phase);
            ( "GroupingColumns",
              String.concat ","
                (List.map (fun c -> string_of_int (Colref.id c)) keys) );
          ]
        ~children:
          (Xml.Element
             (Xml.element "dxl:GroupingKeys"
                ~children:
                  (List.map
                     (fun c -> Xml.Element (Dxl_scalar.colref_to_xml c))
                     keys))
          :: List.map (fun a -> Xml.Element (Dxl_scalar.agg_to_xml a)) aggs
          @ children)
  | Expr.L_window (partition, order, wfuncs) ->
      Xml.element "dxl:LogicalWindow"
        ~children:
          (Dxl_scalar.window_payload_to_children partition order wfuncs
          @ children)
  | Expr.L_limit (sort, offset, count) ->
      Xml.element "dxl:LogicalLimit"
        ~attrs:
          ([ ("Offset", string_of_int offset) ]
          @ match count with None -> [] | Some c -> [ ("Count", string_of_int c) ])
        ~children:(Xml.Element (Dxl_scalar.sortspec_to_xml sort) :: children)
  | Expr.L_apply (kind, corr) ->
      let attrs, extra = apply_kind_to_xml kind in
      Xml.element "dxl:LogicalApply"
        ~attrs:
          (attrs
          @ [
              ( "CorrelatedColumns",
                String.concat ","
                  (List.map (fun c -> string_of_int (Colref.id c)) corr) );
            ])
        ~children:
          (extra
          @ Xml.Element
              (Xml.element "dxl:CorrelatedColumnRefs"
                 ~children:
                   (List.map
                      (fun c -> Xml.Element (Dxl_scalar.colref_to_xml c))
                      corr))
            :: children)
  | Expr.L_cte_producer id ->
      Xml.element "dxl:LogicalCTEProducer"
        ~attrs:[ ("CTEId", string_of_int id) ]
        ~children
  | Expr.L_cte_anchor id ->
      Xml.element "dxl:LogicalCTEAnchor"
        ~attrs:[ ("CTEId", string_of_int id) ]
        ~children
  | Expr.L_cte_consumer (id, cols) ->
      Xml.element "dxl:LogicalCTEConsumer"
        ~attrs:[ ("CTEId", string_of_int id) ]
        ~children:
          [
            Xml.Element
              (Xml.element "dxl:Columns"
                 ~children:
                   (List.map
                      (fun c -> Xml.Element (Dxl_scalar.colref_to_xml c))
                      cols));
          ]
  | Expr.L_set (kind, cols) ->
      Xml.element "dxl:LogicalSetOp"
        ~attrs:[ ("Kind", Expr.set_kind_to_string kind) ]
        ~children:
          (Xml.Element
             (Xml.element "dxl:Columns"
                ~children:
                  (List.map
                     (fun c -> Xml.Element (Dxl_scalar.colref_to_xml c))
                     cols))
          :: children)
  | Expr.L_const_table (cols, rows) ->
      Xml.element "dxl:LogicalConstTable"
        ~children:
          (Xml.Element
             (Xml.element "dxl:Columns"
                ~children:
                  (List.map
                     (fun c -> Xml.Element (Dxl_scalar.colref_to_xml c))
                     cols))
          :: List.map
               (fun row ->
                 Xml.Element
                   (Xml.element "dxl:Row"
                      ~attrs:
                        [
                          ( "Values",
                            String.concat "|" (List.map Datum.serialize row)
                          );
                        ]))
               rows)

let scalar_of_labeled (e : Xml.element) label =
  match Xml.child_elements (Xml.find_child_exn e label) with
  | [ x ] -> Dxl_scalar.of_xml x
  | _ ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error "malformed <%s>"
        label

let cols_of_columns_child e =
  Xml.child_elements (Xml.find_child_exn e "dxl:Columns")
  |> List.map Dxl_scalar.colref_of_xml

let rec logical_of_xml (e : Xml.element) : Ltree.t =
  let op_children =
    Xml.child_elements e
    |> List.filter (fun (c : Xml.element) ->
           String.length c.Xml.tag >= 11
           && (String.sub c.Xml.tag 0 11 = "dxl:Logical"))
    |> List.map logical_of_xml
  in
  match e.Xml.tag with
  | "dxl:LogicalGet" ->
      Ltree.leaf
        (Expr.L_get
           (Dxl_scalar.table_desc_of_xml
              (Xml.find_child_exn e "dxl:TableDescriptor")))
  | "dxl:LogicalSelect" ->
      Ltree.make
        (Expr.L_select (scalar_of_labeled e "dxl:Predicate"))
        op_children
  | "dxl:LogicalProject" ->
      let projs =
        Xml.children_named e "dxl:ProjElem" |> List.map Dxl_scalar.proj_of_xml
      in
      Ltree.make (Expr.L_project projs) op_children
  | "dxl:LogicalJoin" ->
      let kind =
        match Xml.attr_exn e "JoinType" with
        | "Inner" -> Expr.Inner
        | "LeftOuter" -> Expr.Left_outer
        | "FullOuter" -> Expr.Full_outer
        | "Semi" -> Expr.Semi
        | "AntiSemi" -> Expr.Anti_semi
        | k ->
            Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
              "bad join type %S" k
      in
      Ltree.make
        (Expr.L_join (kind, scalar_of_labeled e "dxl:JoinCondition"))
        op_children
  | "dxl:LogicalGbAgg" ->
      let keys =
        Xml.child_elements (Xml.find_child_exn e "dxl:GroupingKeys")
        |> List.map Dxl_scalar.colref_of_xml
      in
      let aggs =
        Xml.children_named e "dxl:Aggregate" |> List.map Dxl_scalar.agg_of_xml
      in
      let phase =
        match Xml.attr_exn e "Phase" with
        | "" -> Expr.One_phase
        | "Partial" -> Expr.Partial
        | "Final" -> Expr.Final
        | p ->
            Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
              "bad agg phase %S" p
      in
      Ltree.make (Expr.L_gb_agg (phase, keys, aggs)) op_children
  | "dxl:LogicalWindow" ->
      let partition, order, wfuncs = Dxl_scalar.window_payload_of_xml e in
      Ltree.make (Expr.L_window (partition, order, wfuncs)) op_children
  | "dxl:LogicalLimit" ->
      let sort =
        match Xml.find_child e "dxl:SortingColumnList" with
        | Some s -> Dxl_scalar.sortspec_of_xml s
        | None -> Sortspec.empty
      in
      let offset = int_of_string (Xml.attr_exn e "Offset") in
      let count = Option.map int_of_string (Xml.attr e "Count") in
      Ltree.make (Expr.L_limit (sort, offset, count)) op_children
  | "dxl:LogicalApply" ->
      let corr =
        Xml.child_elements (Xml.find_child_exn e "dxl:CorrelatedColumnRefs")
        |> List.map Dxl_scalar.colref_of_xml
      in
      let output () =
        Dxl_scalar.colref_of_xml (Xml.find_child_exn e "dxl:Output")
      in
      let tested () = scalar_of_labeled e "dxl:Tested" in
      let kind =
        match Xml.attr_exn e "Kind" with
        | "Scalar" -> Expr.Apply_scalar (output ())
        | "Exists" -> Expr.Apply_exists
        | "NotExists" -> Expr.Apply_not_exists
        | "In" -> Expr.Apply_in (tested (), output ())
        | "NotIn" -> Expr.Apply_not_in (tested (), output ())
        | k ->
            Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
              "bad apply kind %S" k
      in
      Ltree.make (Expr.L_apply (kind, corr)) op_children
  | "dxl:LogicalCTEProducer" ->
      Ltree.make
        (Expr.L_cte_producer (int_of_string (Xml.attr_exn e "CTEId")))
        op_children
  | "dxl:LogicalCTEAnchor" ->
      Ltree.make
        (Expr.L_cte_anchor (int_of_string (Xml.attr_exn e "CTEId")))
        op_children
  | "dxl:LogicalCTEConsumer" ->
      Ltree.leaf
        (Expr.L_cte_consumer
           (int_of_string (Xml.attr_exn e "CTEId"), cols_of_columns_child e))
  | "dxl:LogicalSetOp" ->
      let kind =
        match Xml.attr_exn e "Kind" with
        | "UnionAll" -> Expr.Union_all
        | "Union" -> Expr.Union_distinct
        | "Intersect" -> Expr.Intersect
        | "Except" -> Expr.Except
        | k ->
            Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
              "bad set kind %S" k
      in
      Ltree.make (Expr.L_set (kind, cols_of_columns_child e)) op_children
  | "dxl:LogicalConstTable" ->
      let cols = cols_of_columns_child e in
      let rows =
        Xml.children_named e "dxl:Row"
        |> List.map (fun r ->
               match Xml.attr_exn r "Values" with
               | "" -> []
               | s -> List.map Datum.deserialize (String.split_on_char '|' s))
      in
      Ltree.leaf (Expr.L_const_table (cols, rows))
  | tag ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
        "unknown logical element <%s>" tag

(* --- whole query messages --- *)

let to_xml (q : t) : Xml.element =
  Xml.element "dxl:DXLMessage"
    ~attrs:[ ("xmlns:dxl", "http://greenplum.com/dxl/v1") ]
    ~children:
      [
        Xml.Element
          (Xml.element "dxl:Query"
             ~children:
               [
                 Xml.Element
                   (Xml.element "dxl:OutputColumns"
                      ~children:
                        (List.map
                           (fun c -> Xml.Element (Dxl_scalar.colref_to_xml c))
                           q.output));
                 Xml.Element (Dxl_scalar.sortspec_to_xml q.order);
                 Xml.Element (dist_req_to_xml q.dist);
                 Xml.Element (logical_to_xml q.tree);
               ]);
      ]

let query_element (root : Xml.element) =
  if root.Xml.tag = "dxl:Query" then root
  else Xml.find_child_exn root "dxl:Query"

let of_xml (root : Xml.element) : t =
  let qe = query_element root in
  let output =
    Xml.child_elements (Xml.find_child_exn qe "dxl:OutputColumns")
    |> List.map Dxl_scalar.colref_of_xml
  in
  let order =
    Dxl_scalar.sortspec_of_xml (Xml.find_child_exn qe "dxl:SortingColumnList")
  in
  let tree =
    match
      Xml.child_elements qe
      |> List.find_opt (fun (c : Xml.element) ->
             String.length c.Xml.tag >= 11
             && String.sub c.Xml.tag 0 11 = "dxl:Logical")
    with
    | Some e -> logical_of_xml e
    | None ->
        Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
          "query message has no logical tree"
  in
  let all_cols = Ltree.output_cols tree @ output in
  let resolve id =
    match List.find_opt (fun c -> Colref.id c = id) all_cols with
    | Some c -> c
    | None -> Colref.make ~id ~name:(Printf.sprintf "c%d" id) ~ty:Dtype.Int
  in
  let dist =
    dist_req_of_xml ~resolve (Xml.find_child_exn qe "dxl:Distribution")
  in
  { output; order; dist; tree }

let to_string (q : t) = Xml.to_string (to_xml q)

let of_string (s : string) : t = of_xml (Xml.of_string s)

(* Highest column id mentioned anywhere in the query; the optimizer's colref
   factory starts past it. *)
let max_col_id (q : t) : int =
  let tree_max =
    Ltree.fold
      (fun acc node ->
        let cols =
          Colref.Set.elements (Logical_ops.used_cols node.Ltree.op)
          @ Logical_ops.output_cols node.Ltree.op
              (List.map Ltree.output_cols node.Ltree.children)
        in
        List.fold_left (fun m c -> max m (Colref.id c)) acc cols)
      0 q.tree
  in
  List.fold_left (fun m c -> max m (Colref.id c)) tree_max q.output

open Ir

(* DXL physical plan messages: the optimizer's output, consumed by the
   database system's DXL2Plan translator (here, the execution simulator). *)

let rec to_xml (p : Expr.plan) : Xml.element =
  let children = List.map (fun c -> Xml.Element (to_xml c)) p.Expr.pchildren in
  let scalar_child label s =
    Xml.Element
      (Xml.element label ~children:[ Xml.Element (Dxl_scalar.to_xml s) ])
  in
  let schema =
    Xml.Element
      (Xml.element "dxl:OutputColumns"
         ~children:
           (List.map
              (fun c -> Xml.Element (Dxl_scalar.colref_to_xml c))
              p.Expr.pschema))
  in
  let base_attrs =
    [
      ("EstRows", Printf.sprintf "%.2f" p.Expr.pest_rows);
      ("Cost", Printf.sprintf "%.4f" p.Expr.pcost);
    ]
  in
  let elem tag ?(attrs = []) ?(extra = []) () =
    Xml.element tag ~attrs:(attrs @ base_attrs)
      ~children:((schema :: extra) @ children)
  in
  match p.Expr.pop with
  | Expr.P_table_scan (td, parts, filter) ->
      let attrs =
        match parts with
        | None -> []
        | Some ids ->
            [ ("Partitions", String.concat "," (List.map string_of_int ids)) ]
      in
      let extra =
        [ Xml.Element (Dxl_scalar.table_desc_to_xml td) ]
        @
        match filter with
        | None -> []
        | Some f -> [ scalar_child "dxl:Filter" f ]
      in
      elem "dxl:TableScan" ~attrs ~extra ()
  | Expr.P_index_scan (td, idx, cmp, key, residual) ->
      let extra =
        [
          Xml.Element (Dxl_scalar.table_desc_to_xml td);
          scalar_child "dxl:IndexCond" key;
        ]
        @
        match residual with
        | None -> []
        | Some f -> [ scalar_child "dxl:Filter" f ]
      in
      elem "dxl:IndexScan"
        ~attrs:
          [
            ("Index", idx.Table_desc.idx_name);
            ("Operator", Expr.cmp_to_string cmp);
          ]
        ~extra ()
  | Expr.P_filter pred -> elem "dxl:Result" ~extra:[ scalar_child "dxl:Filter" pred ] ()
  | Expr.P_project projs ->
      elem "dxl:ComputeScalar"
        ~extra:(List.map (fun pr -> Xml.Element (Dxl_scalar.proj_to_xml pr)) projs)
        ()
  | Expr.P_hash_join (kind, keys, residual) ->
      let key_elems =
        List.map
          (fun (a, b) ->
            Xml.Element
              (Xml.element "dxl:HashCond"
                 ~children:
                   [
                     Xml.Element (Dxl_scalar.to_xml a);
                     Xml.Element (Dxl_scalar.to_xml b);
                   ]))
          keys
      in
      let extra =
        key_elems
        @
        match residual with
        | None -> []
        | Some f -> [ scalar_child "dxl:JoinFilter" f ]
      in
      elem "dxl:HashJoin"
        ~attrs:[ ("JoinType", Expr.join_kind_to_string kind) ]
        ~extra ()
  | Expr.P_merge_join (kind, keys, residual) ->
      let key_elems =
        List.map
          (fun (a, b) ->
            Xml.Element
              (Xml.element "dxl:MergeCond"
                 ~children:
                   [
                     Xml.Element (Dxl_scalar.colref_to_xml a);
                     Xml.Element (Dxl_scalar.colref_to_xml b);
                   ]))
          keys
      in
      let extra =
        key_elems
        @
        match residual with
        | None -> []
        | Some f -> [ scalar_child "dxl:JoinFilter" f ]
      in
      elem "dxl:MergeJoin"
        ~attrs:[ ("JoinType", Expr.join_kind_to_string kind) ]
        ~extra ()
  | Expr.P_nl_join (kind, cond) ->
      elem "dxl:NestedLoopJoin"
        ~attrs:[ ("JoinType", Expr.join_kind_to_string kind) ]
        ~extra:[ scalar_child "dxl:JoinFilter" cond ]
        ()
  | Expr.P_hash_agg (phase, keys, aggs) | Expr.P_stream_agg (phase, keys, aggs)
    ->
      let tag =
        match p.Expr.pop with
        | Expr.P_hash_agg _ -> "dxl:HashAggregate"
        | _ -> "dxl:StreamAggregate"
      in
      elem tag
        ~attrs:[ ("Phase", Expr.agg_phase_to_string phase) ]
        ~extra:
          (Xml.Element
             (Xml.element "dxl:GroupingKeys"
                ~children:
                  (List.map
                     (fun c -> Xml.Element (Dxl_scalar.colref_to_xml c))
                     keys))
          :: List.map (fun a -> Xml.Element (Dxl_scalar.agg_to_xml a)) aggs)
        ()
  | Expr.P_window (partition, order, wfuncs) ->
      elem "dxl:Window"
        ~extra:(Dxl_scalar.window_payload_to_children partition order wfuncs)
        ()
  | Expr.P_sort spec ->
      elem "dxl:Sort" ~extra:[ Xml.Element (Dxl_scalar.sortspec_to_xml spec) ] ()
  | Expr.P_limit (sort, offset, count) ->
      elem "dxl:Limit"
        ~attrs:
          ([ ("Offset", string_of_int offset) ]
          @ match count with None -> [] | Some c -> [ ("Count", string_of_int c) ])
        ~extra:[ Xml.Element (Dxl_scalar.sortspec_to_xml sort) ]
        ()
  | Expr.P_motion m -> (
      match m with
      | Expr.Gather -> elem "dxl:GatherMotion" ()
      | Expr.Gather_merge spec ->
          elem "dxl:GatherMergeMotion"
            ~extra:[ Xml.Element (Dxl_scalar.sortspec_to_xml spec) ]
            ()
      | Expr.Redistribute es ->
          elem "dxl:RedistributeMotion"
            ~extra:
              (List.map
                 (fun e ->
                   Xml.Element
                     (Xml.element "dxl:HashExpr"
                        ~children:[ Xml.Element (Dxl_scalar.to_xml e) ]))
                 es)
            ()
      | Expr.Broadcast -> elem "dxl:BroadcastMotion" ())
  | Expr.P_cte_producer id ->
      elem "dxl:CTEProducer" ~attrs:[ ("CTEId", string_of_int id) ] ()
  | Expr.P_cte_consumer (id, _) ->
      elem "dxl:CTEConsumer" ~attrs:[ ("CTEId", string_of_int id) ] ()
  | Expr.P_sequence id ->
      elem "dxl:Sequence" ~attrs:[ ("CTEId", string_of_int id) ] ()
  | Expr.P_set (kind, _) ->
      elem "dxl:SetOp" ~attrs:[ ("Kind", Expr.set_kind_to_string kind) ] ()
  | Expr.P_const_table (_, rows) ->
      elem "dxl:ConstTable"
        ~extra:
          (List.map
             (fun row ->
               Xml.Element
                 (Xml.element "dxl:Row"
                    ~attrs:
                      [
                        ("Values", String.concat "|" (List.map Datum.serialize row));
                      ]))
             rows)
        ()
  | Expr.P_partition_selector parts ->
      elem "dxl:PartitionSelector"
        ~attrs:[ ("Partitions", String.concat "," (List.map string_of_int parts)) ]
        ()

let message (p : Expr.plan) : Xml.element =
  Xml.element "dxl:DXLMessage"
    ~attrs:[ ("xmlns:dxl", "http://greenplum.com/dxl/v1") ]
    ~children:
      [ Xml.Element (Xml.element "dxl:Plan" ~children:[ Xml.Element (to_xml p) ]) ]

(* --- parsing --- *)

let schema_of e =
  Xml.child_elements (Xml.find_child_exn e "dxl:OutputColumns")
  |> List.map Dxl_scalar.colref_of_xml

let scalar_of e label =
  match Xml.child_elements (Xml.find_child_exn e label) with
  | [ x ] -> Dxl_scalar.of_xml x
  | _ ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error "malformed <%s>"
        label

let opt_scalar_of e label =
  match Xml.find_child e label with
  | None -> None
  | Some c -> (
      match Xml.child_elements c with
      | [ x ] -> Some (Dxl_scalar.of_xml x)
      | _ -> None)

let plan_tags =
  [
    "dxl:TableScan"; "dxl:IndexScan"; "dxl:Result"; "dxl:ComputeScalar";
    "dxl:HashJoin"; "dxl:MergeJoin"; "dxl:NestedLoopJoin"; "dxl:HashAggregate";
    "dxl:Window";
    "dxl:StreamAggregate"; "dxl:Sort"; "dxl:Limit"; "dxl:GatherMotion";
    "dxl:GatherMergeMotion"; "dxl:RedistributeMotion"; "dxl:BroadcastMotion";
    "dxl:CTEProducer"; "dxl:CTEConsumer"; "dxl:Sequence"; "dxl:SetOp";
    "dxl:ConstTable"; "dxl:PartitionSelector";
  ]

let join_kind_of e =
  match Xml.attr_exn e "JoinType" with
  | "Inner" -> Expr.Inner
  | "LeftOuter" -> Expr.Left_outer
  | "FullOuter" -> Expr.Full_outer
  | "Semi" -> Expr.Semi
  | "AntiSemi" -> Expr.Anti_semi
  | k ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error "bad join type %S" k

let agg_phase_of e =
  match Xml.attr_exn e "Phase" with
  | "" -> Expr.One_phase
  | "Partial" -> Expr.Partial
  | "Final" -> Expr.Final
  | p -> Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error "bad phase %S" p

let rec of_xml (e : Xml.element) : Expr.plan =
  let children =
    Xml.child_elements e
    |> List.filter (fun (c : Xml.element) -> List.mem c.Xml.tag plan_tags)
    |> List.map of_xml
  in
  let schema = schema_of e in
  let est_rows = float_of_string (Xml.attr_exn e "EstRows") in
  let cost = float_of_string (Xml.attr_exn e "Cost") in
  let op =
    match e.Xml.tag with
    | "dxl:TableScan" ->
        let td =
          Dxl_scalar.table_desc_of_xml
            (Xml.find_child_exn e "dxl:TableDescriptor")
        in
        let parts =
          Option.map
            (fun s ->
              String.split_on_char ',' s
              |> List.filter (fun x -> x <> "")
              |> List.map int_of_string)
            (Xml.attr e "Partitions")
        in
        Expr.P_table_scan (td, parts, opt_scalar_of e "dxl:Filter")
    | "dxl:IndexScan" ->
        let td =
          Dxl_scalar.table_desc_of_xml
            (Xml.find_child_exn e "dxl:TableDescriptor")
        in
        let idx_name = Xml.attr_exn e "Index" in
        let idx =
          match
            List.find_opt
              (fun (i : Table_desc.index) -> i.Table_desc.idx_name = idx_name)
              td.Table_desc.indexes
          with
          | Some i -> i
          | None ->
              Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
                "unknown index %S" idx_name
        in
        Expr.P_index_scan
          ( td,
            idx,
            Dxl_scalar.cmp_of_string (Xml.attr_exn e "Operator"),
            scalar_of e "dxl:IndexCond",
            opt_scalar_of e "dxl:Filter" )
    | "dxl:Result" -> Expr.P_filter (scalar_of e "dxl:Filter")
    | "dxl:ComputeScalar" ->
        Expr.P_project
          (Xml.children_named e "dxl:ProjElem" |> List.map Dxl_scalar.proj_of_xml)
    | "dxl:HashJoin" ->
        let keys =
          Xml.children_named e "dxl:HashCond"
          |> List.map (fun c ->
                 match Xml.child_elements c with
                 | [ a; b ] -> (Dxl_scalar.of_xml a, Dxl_scalar.of_xml b)
                 | _ ->
                     Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
                       "malformed <dxl:HashCond>")
        in
        Expr.P_hash_join (join_kind_of e, keys, opt_scalar_of e "dxl:JoinFilter")
    | "dxl:MergeJoin" ->
        let keys =
          Xml.children_named e "dxl:MergeCond"
          |> List.map (fun c ->
                 match Xml.child_elements c with
                 | [ a; b ] ->
                     (Dxl_scalar.colref_of_xml a, Dxl_scalar.colref_of_xml b)
                 | _ ->
                     Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
                       "malformed <dxl:MergeCond>")
        in
        Expr.P_merge_join
          (join_kind_of e, keys, opt_scalar_of e "dxl:JoinFilter")
    | "dxl:NestedLoopJoin" ->
        Expr.P_nl_join (join_kind_of e, scalar_of e "dxl:JoinFilter")
    | "dxl:HashAggregate" | "dxl:StreamAggregate" ->
        let keys =
          Xml.child_elements (Xml.find_child_exn e "dxl:GroupingKeys")
          |> List.map Dxl_scalar.colref_of_xml
        in
        let aggs =
          Xml.children_named e "dxl:Aggregate" |> List.map Dxl_scalar.agg_of_xml
        in
        if e.Xml.tag = "dxl:HashAggregate" then
          Expr.P_hash_agg (agg_phase_of e, keys, aggs)
        else Expr.P_stream_agg (agg_phase_of e, keys, aggs)
    | "dxl:Window" ->
        let partition, order, wfuncs = Dxl_scalar.window_payload_of_xml e in
        Expr.P_window (partition, order, wfuncs)
    | "dxl:Sort" ->
        Expr.P_sort
          (Dxl_scalar.sortspec_of_xml
             (Xml.find_child_exn e "dxl:SortingColumnList"))
    | "dxl:Limit" ->
        let sort =
          match Xml.find_child e "dxl:SortingColumnList" with
          | Some s -> Dxl_scalar.sortspec_of_xml s
          | None -> Sortspec.empty
        in
        Expr.P_limit
          ( sort,
            int_of_string (Xml.attr_exn e "Offset"),
            Option.map int_of_string (Xml.attr e "Count") )
    | "dxl:GatherMotion" -> Expr.P_motion Expr.Gather
    | "dxl:GatherMergeMotion" ->
        Expr.P_motion
          (Expr.Gather_merge
             (Dxl_scalar.sortspec_of_xml
                (Xml.find_child_exn e "dxl:SortingColumnList")))
    | "dxl:RedistributeMotion" ->
        let es =
          Xml.children_named e "dxl:HashExpr"
          |> List.map (fun h ->
                 match Xml.child_elements h with
                 | [ x ] -> Dxl_scalar.of_xml x
                 | _ ->
                     Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
                       "malformed <dxl:HashExpr>")
        in
        Expr.P_motion (Expr.Redistribute es)
    | "dxl:BroadcastMotion" -> Expr.P_motion Expr.Broadcast
    | "dxl:CTEProducer" ->
        Expr.P_cte_producer (int_of_string (Xml.attr_exn e "CTEId"))
    | "dxl:CTEConsumer" ->
        Expr.P_cte_consumer (int_of_string (Xml.attr_exn e "CTEId"), schema)
    | "dxl:Sequence" -> Expr.P_sequence (int_of_string (Xml.attr_exn e "CTEId"))
    | "dxl:SetOp" ->
        let kind =
          match Xml.attr_exn e "Kind" with
          | "UnionAll" -> Expr.Union_all
          | "Union" -> Expr.Union_distinct
          | "Intersect" -> Expr.Intersect
          | "Except" -> Expr.Except
          | k ->
              Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
                "bad set kind %S" k
        in
        Expr.P_set (kind, schema)
    | "dxl:ConstTable" ->
        let rows =
          Xml.children_named e "dxl:Row"
          |> List.map (fun r ->
                 match Xml.attr_exn r "Values" with
                 | "" -> []
                 | s -> List.map Datum.deserialize (String.split_on_char '|' s))
        in
        Expr.P_const_table (schema, rows)
    | "dxl:PartitionSelector" ->
        Expr.P_partition_selector
          (Xml.attr_exn e "Partitions" |> String.split_on_char ','
          |> List.filter (fun x -> x <> "")
          |> List.map int_of_string)
    | tag ->
        Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
          "unknown plan element <%s>" tag
  in
  {
    Expr.pop = op;
    pchildren = children;
    pschema = schema;
    pest_rows = est_rows;
    pcost = cost;
  }

let of_message (root : Xml.element) : Expr.plan =
  let pe =
    if root.Xml.tag = "dxl:Plan" then root else Xml.find_child_exn root "dxl:Plan"
  in
  match Xml.child_elements pe with
  | [ p ] -> of_xml p
  | _ ->
      Gpos.Gpos_error.raise_error Gpos.Gpos_error.Dxl_error
        "plan message must contain exactly one root"

let to_string (p : Expr.plan) = Xml.to_string (message p)

let of_string (s : string) : Expr.plan = of_message (Xml.of_string s)

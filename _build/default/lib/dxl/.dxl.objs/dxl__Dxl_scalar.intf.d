lib/dxl/dxl_scalar.mli: Colref Expr Ir Sortspec Table_desc Xml

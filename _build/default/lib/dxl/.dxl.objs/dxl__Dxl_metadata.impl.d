lib/dxl/dxl_metadata.ml: Catalog Int Ir List Md_id Metadata Option Printf Provider Stats String Xml

lib/dxl/dxl_plan.mli: Expr Ir Xml

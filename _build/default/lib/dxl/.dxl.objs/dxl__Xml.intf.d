lib/dxl/xml.mli:

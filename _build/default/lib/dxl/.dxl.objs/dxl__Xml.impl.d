lib/dxl/xml.ml: Buffer Gpos List Printf String

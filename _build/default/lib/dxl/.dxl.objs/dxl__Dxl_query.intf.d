lib/dxl/dxl_query.mli: Colref Ir Ltree Props Sortspec Xml

lib/dxl/dxl_metadata.mli: Catalog Stats Xml

lib/dxl/dxl_plan.ml: Datum Dxl_scalar Expr Gpos Ir List Option Printf Sortspec String Table_desc Xml

lib/dxl/dxl_query.ml: Colref Datum Dtype Dxl_scalar Expr Gpos Ir List Logical_ops Ltree Option Printf Props Sortspec String Xml

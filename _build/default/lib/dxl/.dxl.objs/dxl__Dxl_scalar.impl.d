lib/dxl/dxl_scalar.ml: Colref Datum Dtype Expr Gpos Ir List Sortspec String Table_desc Xml

(** DXL query messages (paper Listing 1): the input to Orca.

    A query message carries the required output columns, sorting columns,
    result distribution and the logical operator tree; table descriptors are
    embedded with their Mdids so further metadata can be requested during
    optimization. *)

open Ir

type t = {
  output : Colref.t list;  (** required output columns, in order *)
  order : Sortspec.t;      (** required result order *)
  dist : Props.dist_req;   (** required result distribution *)
  tree : Ltree.t;          (** the logical query *)
}

val to_xml : t -> Xml.element
val of_xml : Xml.element -> t

val to_string : t -> string
(** Full DXL document, XML header included. *)

val of_string : string -> t

val query_element : Xml.element -> Xml.element
(** The <dxl:Query> element of a message (identity if already one). *)

val logical_to_xml : Ltree.t -> Xml.element
val logical_of_xml : Xml.element -> Ltree.t

val max_col_id : t -> int
(** Highest column id mentioned anywhere in the query; the optimizer's
    colref factory starts past it. *)

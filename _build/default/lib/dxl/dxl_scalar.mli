(** DXL serialization of scalar expressions and shared payloads (paper §3:
    DXL query/plan messages share one scalar sub-language). Round-trips are
    exact: [of_xml (to_xml s) = s], including float datums (serialized in
    hex to preserve every bit). *)

open Ir

val colref_to_xml : ?tag:string -> Colref.t -> Xml.element
val colref_of_xml : Xml.element -> Colref.t

val cmp_of_string : string -> Expr.cmp
val arith_of_string : string -> Expr.arith

val to_xml : Expr.scalar -> Xml.element
val of_xml : Xml.element -> Expr.scalar

val sortspec_to_xml : Sortspec.t -> Xml.element
val sortspec_of_xml : Xml.element -> Sortspec.t

val agg_to_xml : Expr.agg -> Xml.element
val agg_of_xml : Xml.element -> Expr.agg

val wfunc_to_xml : Expr.wfunc -> Xml.element
val wfunc_of_xml : Xml.element -> Expr.wfunc

val window_payload_to_children :
  Colref.t list -> Sortspec.t -> Expr.wfunc list -> Xml.node list
(** The three child elements a window operator carries: partition columns,
    the within-partition sort spec, and the window-function list. *)

val window_payload_of_xml :
  Xml.element -> Colref.t list * Sortspec.t * Expr.wfunc list

val proj_to_xml : Expr.proj -> Xml.element
val proj_of_xml : Xml.element -> Expr.proj

val table_desc_to_xml : Table_desc.t -> Xml.element
val table_desc_of_xml : Xml.element -> Table_desc.t

(** Minimal XML reader/writer used by DXL: elements, attributes and text
    nodes with the five standard entities — all that DXL messages need.
    Pretty-printing round-trips through parsing. *)

type node = Element of element | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
}

val element : ?attrs:(string * string) list -> ?children:node list -> string -> element
val attr : element -> string -> string option

val attr_exn : element -> string -> string
(** Raises [Gpos_error.Error Dxl_error] when missing. *)

val child_elements : element -> element list
val find_child : element -> string -> element option
val find_child_exn : element -> string -> element
val children_named : element -> string -> element list
val text_content : element -> string

val escape : string -> string
val to_string : ?header:bool -> element -> string

exception Parse_failure of string

val of_string : string -> element
(** Parse one document; declarations and comments are skipped. Raises
    [Gpos_error.Error Dxl_error] on malformed input. *)

(** DXL physical plan messages: the optimizer's output, consumed by the
    database system's DXL2Plan translator (here, the execution simulator).
    Round-trippable: [of_string (to_string p)] executes identically to [p].

    SubPlan scalars (internal to the legacy Planner's execution) cannot cross
    DXL and are rejected during serialization. *)

open Ir

val to_xml : Expr.plan -> Xml.element
val of_xml : Xml.element -> Expr.plan

val message : Expr.plan -> Xml.element
(** Wrap in a <dxl:DXLMessage>/<dxl:Plan> envelope. *)

val of_message : Xml.element -> Expr.plan

val to_string : Expr.plan -> string
val of_string : string -> Expr.plan

open Catalog

(* DXL serialization of metadata objects (paper §5): relations and relation
   statistics (including column histograms). Enables the file-based MD
   Provider used to replay AMPERe dumps with no live backend (Fig. 10). *)

let col_md_to_xml i (c : Metadata.col_md) : Xml.element =
  Xml.element "dxl:Column"
    ~attrs:
      [
        ("Name", c.Metadata.col_name);
        ("Attno", string_of_int i);
        ("Type", Ir.Dtype.to_string c.Metadata.col_type);
      ]

let col_md_of_xml (e : Xml.element) : int * Metadata.col_md =
  ( int_of_string (Xml.attr_exn e "Attno"),
    {
      Metadata.col_name = Xml.attr_exn e "Name";
      col_type = Ir.Dtype.of_string (Xml.attr_exn e "Type");
    } )

let rel_to_xml (r : Metadata.rel_md) : Xml.element =
  let dist_attrs =
    match r.Metadata.rel_dist with
    | Metadata.Hash_cols ps ->
        [
          ("DistributionPolicy", "Hash");
          ("DistributionColumns", String.concat "," (List.map string_of_int ps));
        ]
    | Metadata.Random_dist -> [ ("DistributionPolicy", "Random") ]
    | Metadata.Replicated_dist -> [ ("DistributionPolicy", "Replicated") ]
  in
  let part_attrs =
    match r.Metadata.rel_part_col with
    | None -> []
    | Some p -> [ ("PartitionColumn", string_of_int p) ]
  in
  let parts =
    List.map
      (fun (p : Metadata.part_md) ->
        Xml.Element
          (Xml.element "dxl:Partition"
             ~attrs:
               [
                 ("Id", string_of_int p.Metadata.pm_id);
                 ("Lo", Ir.Datum.serialize p.Metadata.pm_lo);
                 ("Hi", Ir.Datum.serialize p.Metadata.pm_hi);
               ]))
      r.Metadata.rel_parts
  in
  let indexes =
    List.map
      (fun (i : Metadata.index_md) ->
        Xml.Element
          (Xml.element "dxl:Index"
             ~attrs:
               [
                 ("Name", i.Metadata.im_name);
                 ("Column", string_of_int i.Metadata.im_col);
               ]))
      r.Metadata.rel_indexes
  in
  Xml.element "dxl:Relation"
    ~attrs:
      ([
         ("Mdid", Md_id.to_string r.Metadata.rel_mdid);
         ("Name", r.Metadata.rel_name);
       ]
      @ dist_attrs @ part_attrs)
    ~children:
      (Xml.Element
         (Xml.element "dxl:Columns"
            ~children:
              (List.mapi
                 (fun i c -> Xml.Element (col_md_to_xml i c))
                 r.Metadata.rel_cols))
      :: (parts @ indexes))

let rel_of_xml (e : Xml.element) : Metadata.rel_md =
  let cols =
    Xml.child_elements (Xml.find_child_exn e "dxl:Columns")
    |> List.map col_md_of_xml
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map snd
  in
  let dist =
    match Xml.attr e "DistributionPolicy" with
    | Some "Hash" ->
        Metadata.Hash_cols
          (Xml.attr_exn e "DistributionColumns"
          |> String.split_on_char ','
          |> List.filter (fun s -> s <> "")
          |> List.map int_of_string)
    | Some "Replicated" -> Metadata.Replicated_dist
    | _ -> Metadata.Random_dist
  in
  let parts =
    Xml.children_named e "dxl:Partition"
    |> List.map (fun p ->
           {
             Metadata.pm_id = int_of_string (Xml.attr_exn p "Id");
             pm_lo = Ir.Datum.deserialize (Xml.attr_exn p "Lo");
             pm_hi = Ir.Datum.deserialize (Xml.attr_exn p "Hi");
           })
  in
  let indexes =
    Xml.children_named e "dxl:Index"
    |> List.map (fun i ->
           {
             Metadata.im_name = Xml.attr_exn i "Name";
             im_col = int_of_string (Xml.attr_exn i "Column");
           })
  in
  {
    Metadata.rel_mdid = Md_id.of_string (Xml.attr_exn e "Mdid");
    rel_name = Xml.attr_exn e "Name";
    rel_cols = cols;
    rel_dist = dist;
    rel_part_col = Option.map int_of_string (Xml.attr e "PartitionColumn");
    rel_parts = parts;
    rel_indexes = indexes;
  }

(* --- histograms --- *)

let histogram_to_xml (h : Stats.Histogram.t) : Xml.element =
  Xml.element "dxl:Histogram"
    ~attrs:[ ("NullRows", Printf.sprintf "%.4f" h.Stats.Histogram.null_rows) ]
    ~children:
      (List.map
         (fun (b : Stats.Histogram.bucket) ->
           Xml.Element
             (Xml.element "dxl:Bucket"
                ~attrs:
                  [
                    ("Lo", Ir.Datum.serialize b.Stats.Histogram.lo);
                    ("Hi", Ir.Datum.serialize b.Stats.Histogram.hi);
                    ("Rows", Printf.sprintf "%.4f" b.Stats.Histogram.rows);
                    ("Ndv", Printf.sprintf "%.4f" b.Stats.Histogram.ndv);
                  ]))
         h.Stats.Histogram.buckets)

let histogram_of_xml (e : Xml.element) : Stats.Histogram.t =
  {
    Stats.Histogram.null_rows = float_of_string (Xml.attr_exn e "NullRows");
    buckets =
      Xml.children_named e "dxl:Bucket"
      |> List.map (fun b ->
             {
               Stats.Histogram.lo = Ir.Datum.deserialize (Xml.attr_exn b "Lo");
               hi = Ir.Datum.deserialize (Xml.attr_exn b "Hi");
               rows = float_of_string (Xml.attr_exn b "Rows");
               ndv = float_of_string (Xml.attr_exn b "Ndv");
             });
  }

let rel_stats_to_xml (s : Metadata.rel_stats_md) : Xml.element =
  Xml.element "dxl:RelStats"
    ~attrs:
      [
        ("Mdid", Md_id.to_string s.Metadata.st_mdid);
        ("Rows", Printf.sprintf "%.2f" s.Metadata.st_rows);
      ]
    ~children:
      (List.map
         (fun (pos, h) ->
           Xml.Element
             (Xml.element "dxl:ColStats"
                ~attrs:[ ("Column", string_of_int pos) ]
                ~children:[ Xml.Element (histogram_to_xml h) ]))
         s.Metadata.st_col_hists)

let rel_stats_of_xml (e : Xml.element) : Metadata.rel_stats_md =
  {
    Metadata.st_mdid = Md_id.of_string (Xml.attr_exn e "Mdid");
    st_rows = float_of_string (Xml.attr_exn e "Rows");
    st_col_hists =
      Xml.children_named e "dxl:ColStats"
      |> List.map (fun c ->
             ( int_of_string (Xml.attr_exn c "Column"),
               histogram_of_xml (Xml.find_child_exn c "dxl:Histogram") ));
  }

(* --- collections of metadata objects --- *)

let obj_to_xml = function
  | Metadata.Rel r -> rel_to_xml r
  | Metadata.Rel_stats s -> rel_stats_to_xml s

let obj_of_xml (e : Xml.element) : Metadata.obj option =
  match e.Xml.tag with
  | "dxl:Relation" -> Some (Metadata.Rel (rel_of_xml e))
  | "dxl:RelStats" -> Some (Metadata.Rel_stats (rel_stats_of_xml e))
  | _ -> None

let objects_to_xml (objs : Metadata.obj list) : Xml.element =
  Xml.element "dxl:Metadata"
    ~attrs:[ ("SystemIds", "0.GPDB") ]
    ~children:(List.map (fun o -> Xml.Element (obj_to_xml o)) objs)

let objects_of_xml (e : Xml.element) : Metadata.obj list =
  let me = if e.Xml.tag = "dxl:Metadata" then e else Xml.find_child_exn e "dxl:Metadata" in
  Xml.child_elements me |> List.filter_map obj_of_xml

(* File-based MD Provider (paper §5): serve metadata from a serialized DXL
   document instead of a live system. *)
let file_provider_of_string (s : string) : Provider.t =
  let objs = objects_of_xml (Xml.of_string s) in
  Provider.of_objects ~name:"file" objs

let file_provider (path : string) : Provider.t =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  file_provider_of_string s

let to_string (objs : Metadata.obj list) = Xml.to_string (objects_to_xml objs)

open Ir

(* The legacy "Planner" baseline (paper §7.2): a PostgreSQL-style bottom-up
   optimizer. It is a robust planner — it uses base-table row counts and
   simple selectivity constants, runs a System-R dynamic program over
   left-deep join trees, and plans motions — but it lacks exactly the four
   features the paper credits for Orca's largest wins:

     - join ordering degrades to syntactic order beyond [dp_limit] relations,
       and its estimates ignore histograms entirely;
     - correlated subqueries run as SubPlans re-executed per outer row;
     - WITH/CTE producers are inlined (re-planned and re-executed) per
       consumer instead of shared;
     - partitioned tables are always scanned in full (no elimination);
     - joins are always planned by redistributing both sides (never
       broadcast), and non-equi joins are gathered to the master. *)

type config = {
  segments : int;
  dp_limit : int; (* max relations considered by the join-order DP *)
  broadcast_inner : bool;
      (* Impala-style motion planning: always replicate the join's inner side
         to every node instead of redistributing both sides. Cheap for small
         dimensions, catastrophic (and memory-hungry) for fact-fact joins. *)
}

let default_config = { segments = 16; dp_limit = 5; broadcast_inner = false }

(* --- crude cardinality estimation: row counts + magic constants --- *)

let eq_sel = 0.02
let range_sel = 1.0 /. 3.0
let like_sel = 0.1
let default_sel = 0.25

let rec pred_selectivity (p : Expr.scalar) : float =
  match p with
  | Expr.Const (Datum.Bool true) -> 1.0
  | Expr.Const (Datum.Bool false) -> 0.0
  | Expr.Cmp (Expr.Eq, _, _) -> eq_sel
  | Expr.Cmp (_, _, _) -> range_sel
  | Expr.And ps -> List.fold_left (fun a p -> a *. pred_selectivity p) 1.0 ps
  | Expr.Or ps ->
      1.0 -. List.fold_left (fun a p -> a *. (1.0 -. pred_selectivity p)) 1.0 ps
  | Expr.Not p -> 1.0 -. pred_selectivity p
  | Expr.In_list (_, vs) ->
      Float.min 1.0 (eq_sel *. float_of_int (List.length vs))
  | Expr.Like _ -> like_sel
  | Expr.Is_null _ -> 0.05
  | _ -> default_sel

(* --- planner state --- *)

type t = {
  config : config;
  accessor : Catalog.Accessor.t;
  factory : Colref.Factory.t;
}

let create ?(config = default_config) (accessor : Catalog.Accessor.t) : t =
  { config; accessor; factory = Catalog.Accessor.factory accessor }

let table_rows t (td : Table_desc.t) =
  Float.max 1.0 (Stats.Relstats.rows (Catalog.Accessor.base_stats t.accessor td))

(* simple cost used by the DP: rows processed plus motion charges *)
let motion_charge = 2.5

(* a planned subtree with its crude estimated row count *)
type sub = { plan : Expr.plan; rows : float }

let node op children ~rows =
  let cost =
    rows +. List.fold_left (fun a c -> a +. c.Expr.pcost) 0.0 children
  in
  Plan_ops.node op children ~est_rows:rows ~cost

let schema_set (p : Expr.plan) = Colref.Set.of_list p.Expr.pschema

let delivered_dist (p : Expr.plan) : Props.dist =
  (* recompute the delivered distribution bottom-up *)
  let rec go p =
    Physical_ops.derive p.Expr.pop (List.map go p.Expr.pchildren)
  in
  (go p).Props.ddist

let gather (s : sub) : sub =
  match delivered_dist s.plan with
  | Props.D_singleton -> s
  | _ ->
      {
        plan =
          node (Expr.P_motion Expr.Gather) [ s.plan ]
            ~rows:(s.rows +. (motion_charge *. s.rows));
        rows = s.rows;
      }

let redistribute (s : sub) (cols : Expr.scalar list) : sub =
  let already =
    match delivered_dist s.plan with
    | Props.D_hashed have ->
        let want = List.filter_map (function Expr.Col c -> Some c | _ -> None) cols in
        List.length have = List.length want
        && List.for_all2 Colref.equal have want
    | _ -> false
  in
  if already then s
  else
    {
      plan =
        node (Expr.P_motion (Expr.Redistribute cols)) [ s.plan ]
          ~rows:(s.rows +. (motion_charge *. s.rows));
      rows = s.rows;
    }

let add_filter (s : sub) (pred : Expr.scalar) : sub =
  let rows = Float.max 1.0 (s.rows *. pred_selectivity pred) in
  { plan = node (Expr.P_filter pred) [ s.plan ] ~rows; rows }

(* --- join planning --- *)

(* Join two planned inputs: hash join on equi keys with both sides
   redistributed onto the keys; otherwise gather both to the master and
   nested-loop there. *)
let join_pair t (kind : Expr.join_kind) (cond : Expr.scalar) (l : sub) (r : sub)
    : sub =
  let keys, residual =
    Scalar_ops.extract_equi_keys ~outer_cols:(schema_set l.plan)
      ~inner_cols:(schema_set r.plan) cond
  in
  let join_rows =
    Float.max 1.0
      (l.rows *. r.rows
      *. (if keys = [] then pred_selectivity cond
         else eq_sel /. float_of_int (List.length keys)))
  in
  if keys <> [] && kind <> Expr.Full_outer then begin
    let res = if residual = [] then None else Some (Scalar_ops.conjoin residual) in
    let l', r' =
      if t.config.broadcast_inner && kind = Expr.Inner then
        ( l,
          {
            plan =
              node (Expr.P_motion Expr.Broadcast) [ r.plan ]
                ~rows:(r.rows *. 2.0);
            rows = r.rows;
          } )
      else
        let lkeys = List.map fst keys and rkeys = List.map snd keys in
        (redistribute l lkeys, redistribute r rkeys)
    in
    {
      plan =
        node (Expr.P_hash_join (kind, keys, res)) [ l'.plan; r'.plan ]
          ~rows:join_rows;
      rows = join_rows;
    }
  end
  else begin
    (* no equi keys: gather to the master and nested-loop *)
    let l' = gather l and r' = gather r in
    match kind with
    | Expr.Full_outer ->
        let res = if residual = [] then None else Some (Scalar_ops.conjoin residual) in
        {
          plan =
            node (Expr.P_hash_join (kind, keys, res)) [ l'.plan; r'.plan ]
              ~rows:join_rows;
          rows = join_rows;
        }
    | _ ->
        {
          plan =
            node (Expr.P_nl_join (kind, cond)) [ l'.plan; r'.plan ]
              ~rows:join_rows;
          rows = join_rows;
        }
  end

(* Flatten a tree of inner joins and selects into base inputs + predicates. *)
let rec flatten (tree : Ltree.t) : Ltree.t list * Expr.scalar list =
  match (tree.Ltree.op, tree.Ltree.children) with
  | Expr.L_join (Expr.Inner, cond), [ l; r ] ->
      let ls, lp = flatten l in
      let rs, rp = flatten r in
      (ls @ rs, lp @ rp @ Scalar_ops.conjuncts cond)
  | Expr.L_select pred, [ c ] ->
      let cs, cp = flatten c in
      (cs, cp @ Scalar_ops.conjuncts pred)
  | _ -> ([ tree ], [])

(* --- the planner --- *)

let rec plan_tree (t : t) (tree : Ltree.t) : sub =
  match (tree.Ltree.op, tree.Ltree.children) with
  | Expr.L_get td, [] ->
      (* note: no partition elimination — all partitions scanned *)
      let rows = table_rows t td in
      { plan = node (Expr.P_table_scan (td, None, None)) [] ~rows; rows }
  | Expr.L_select _, _ | Expr.L_join (Expr.Inner, _), _ ->
      plan_join_block t tree
  | Expr.L_join (kind, cond), [ l; r ] ->
      let ls = plan_tree t l and rs = plan_tree t r in
      join_pair t kind cond ls rs
  | Expr.L_project projs, [ c ] ->
      let s = plan_tree t c in
      { plan = node (Expr.P_project projs) [ s.plan ] ~rows:s.rows; rows = s.rows }
  | Expr.L_gb_agg (_, keys, aggs), [ c ] ->
      let s = plan_tree t c in
      let s =
        if keys = [] then gather s
        else redistribute s (List.map (fun k -> Expr.Col k) keys)
      in
      let groups =
        if keys = [] then 1.0 else Float.max 1.0 (s.rows *. 0.1)
      in
      {
        plan =
          node (Expr.P_hash_agg (Expr.One_phase, keys, aggs)) [ s.plan ]
            ~rows:groups;
        rows = groups;
      }
  | Expr.L_window (partition, worder, wfuncs), [ c ] ->
      let s = plan_tree t c in
      let s =
        if partition = [] then gather s
        else redistribute s (List.map (fun k -> Expr.Col k) partition)
      in
      let sort_spec = List.map Sortspec.asc partition @ worder in
      let s =
        if sort_spec = [] then s
        else { s with plan = node (Expr.P_sort sort_spec) [ s.plan ] ~rows:s.rows }
      in
      {
        plan =
          node (Expr.P_window (partition, worder, wfuncs)) [ s.plan ] ~rows:s.rows;
        rows = s.rows;
      }
  | Expr.L_limit (sort, offset, count), [ c ] ->
      let s = plan_tree t c in
      let s = gather s in
      let s =
        if Sortspec.is_empty sort then s
        else { s with plan = node (Expr.P_sort sort) [ s.plan ] ~rows:s.rows }
      in
      let rows =
        match count with
        | None -> s.rows
        | Some n -> Float.min s.rows (float_of_int n)
      in
      {
        plan = node (Expr.P_limit (sort, offset, count)) [ s.plan ] ~rows;
        rows;
      }
  | Expr.L_apply (kind, corr), [ outer; inner ] -> plan_apply t kind corr outer inner
  | Expr.L_cte_anchor _, [ _producer; body ] ->
      (* no CTE sharing: consumers were inlined below; skip the producer *)
      plan_tree t body
  | Expr.L_cte_producer _, [ c ] -> plan_tree t c
  | Expr.L_cte_consumer _, _ ->
      Gpos.Gpos_error.internal
        "planner: CTE consumers must be inlined before planning"
  | Expr.L_set (kind, cols), children ->
      let subs = List.map (fun c -> gather (plan_tree t c)) children in
      let rows =
        List.fold_left (fun a s -> a +. s.rows) 0.0 subs
        *. match kind with Expr.Union_all -> 1.0 | _ -> 0.7
      in
      {
        plan =
          node (Expr.P_set (kind, cols)) (List.map (fun s -> s.plan) subs) ~rows;
        rows;
      }
  | Expr.L_const_table (cols, rows), [] ->
      let n = float_of_int (List.length rows) in
      { plan = node (Expr.P_const_table (cols, rows)) [] ~rows:n; rows = n }
  | op, _ ->
      Gpos.Gpos_error.internal "planner: unexpected operator %s"
        (Logical_ops.to_string op)

(* System-R DP over left-deep join orders, or syntactic order when the block
   is too large. *)
and plan_join_block (t : t) (tree : Ltree.t) : sub =
  let inputs, preds = flatten tree in
  let planned = List.map (plan_tree t) inputs in
  let n = List.length planned in
  if n = 1 then
    let s = List.hd planned in
    apply_predicates t s preds
  else begin
    let arr = Array.of_list planned in
    let cols_of s = schema_set s.plan in
    (* predicates applicable once the given column set is available *)
    let applicable available used =
      List.mapi (fun i p -> (i, p)) preds
      |> List.filter (fun (i, p) ->
             (not (List.mem i used))
             && Colref.Set.subset (Scalar_ops.free_cols p) available)
    in
    let join_step (acc : sub * int list) (next : sub) =
      let current, used = acc in
      let available = Colref.Set.union (cols_of current) (cols_of next) in
      let ready = applicable available used in
      let cond = Scalar_ops.conjoin (List.map snd ready) in
      let joined = join_pair t Expr.Inner cond current next in
      (joined, used @ List.map fst ready)
    in
    let order =
      if n <= t.config.dp_limit then begin
        (* greedy-DP: repeatedly pick the join partner minimizing the
           intermediate result estimate (left-deep) *)
        let remaining = ref (List.init n (fun i -> i)) in
        let pick_first =
          List.fold_left
            (fun best i ->
              match best with
              | None -> Some i
              | Some b -> if arr.(i).rows < arr.(b).rows then Some i else Some b)
            None !remaining
          |> Option.get
        in
        remaining := List.filter (fun i -> i <> pick_first) !remaining;
        let order = ref [ pick_first ] in
        let current_cols = ref (cols_of arr.(pick_first)) in
        while !remaining <> [] do
          (* prefer partners connected by a predicate; break ties by size *)
          let scored =
            List.map
              (fun i ->
                let both = Colref.Set.union !current_cols (cols_of arr.(i)) in
                let connected =
                  List.exists
                    (fun p ->
                      let f = Scalar_ops.free_cols p in
                      Colref.Set.subset f both
                      && (not (Colref.Set.subset f !current_cols))
                      && not (Colref.Set.subset f (cols_of arr.(i))))
                    preds
                in
                (i, connected, arr.(i).rows))
              !remaining
          in
          let best =
            List.fold_left
              (fun best (i, conn, rows) ->
                match best with
                | None -> Some (i, conn, rows)
                | Some (_, bconn, brows) ->
                    if conn && not bconn then Some (i, conn, rows)
                    else if conn = bconn && rows < brows then Some (i, conn, rows)
                    else best)
              None scored
            |> Option.get
          in
          let i, _, _ = best in
          remaining := List.filter (fun j -> j <> i) !remaining;
          order := !order @ [ i ];
          current_cols := Colref.Set.union !current_cols (cols_of arr.(i))
        done;
        !order
      end
      else
        (* too many relations: literal syntactic order *)
        List.init n (fun i -> i)
    in
    match order with
    | [] -> Gpos.Gpos_error.internal "planner: empty join block"
    | first :: rest ->
        let init = (arr.(first), []) in
        let final, used =
          List.fold_left (fun acc i -> join_step acc arr.(i)) init rest
        in
        (* leftover predicates (single-input ones) as a filter on top *)
        let leftover =
          List.mapi (fun i p -> (i, p)) preds
          |> List.filter (fun (i, _) -> not (List.mem i used))
          |> List.map snd
        in
        if leftover = [] then final
        else apply_predicates t final leftover
  end

and apply_predicates t (s : sub) (preds : Expr.scalar list) : sub =
  ignore t;
  if preds = [] then s else add_filter s (Scalar_ops.conjoin preds)

(* Correlated subqueries: plan the inner side as a gathered SubPlan that the
   executor re-runs per outer row (PostgreSQL SubPlan semantics). *)
and plan_apply (t : t) (kind : Expr.apply_kind) (corr : Colref.t list)
    (outer : Ltree.t) (inner : Ltree.t) : sub =
  let outer_sub = plan_tree t outer in
  let inner_sub = gather (plan_tree t inner) in
  let params = List.map (fun c -> (c, c)) corr in
  let subplan sp_kind =
    Expr.Subplan { Expr.sp_kind; sp_plan = inner_sub.plan; sp_params = params }
  in
  match kind with
  | Expr.Apply_scalar out_col ->
      let pass =
        List.map
          (fun c -> { Expr.proj_expr = Expr.Col c; proj_out = c })
          outer_sub.plan.Expr.pschema
      in
      let projs =
        pass @ [ { Expr.proj_expr = subplan Expr.Sp_scalar; proj_out = out_col } ]
      in
      {
        plan = node (Expr.P_project projs) [ outer_sub.plan ] ~rows:outer_sub.rows;
        rows = outer_sub.rows;
      }
  | Expr.Apply_exists -> add_filter outer_sub (subplan Expr.Sp_exists)
  | Expr.Apply_not_exists -> add_filter outer_sub (subplan Expr.Sp_not_exists)
  | Expr.Apply_in (e, _) -> add_filter outer_sub (subplan (Expr.Sp_in e))
  | Expr.Apply_not_in (e, _) -> add_filter outer_sub (subplan (Expr.Sp_not_in e))

(* Inline CTE consumers: each consumer gets its own copy of the producer
   body, topped with a projection mapping producer outputs onto the
   consumer's column ids. *)
let rec inline_ctes (defs : (int * Ltree.t) list) (tree : Ltree.t) : Ltree.t =
  match (tree.Ltree.op, tree.Ltree.children) with
  | Expr.L_cte_anchor id, [ producer; body ] ->
      let producer_body =
        match (producer.Ltree.op, producer.Ltree.children) with
        | Expr.L_cte_producer _, [ b ] -> b
        | _ -> producer
      in
      let producer_body = inline_ctes defs producer_body in
      inline_ctes ((id, producer_body) :: defs) body
  | Expr.L_cte_consumer (id, cols), [] -> (
      match List.assoc_opt id defs with
      | Some producer ->
          let out = Ltree.output_cols producer in
          let projs =
            List.map2
              (fun src dst -> { Expr.proj_expr = Expr.Col src; proj_out = dst })
              out cols
          in
          Ltree.make (Expr.L_project projs) [ producer ]
      | None ->
          Gpos.Gpos_error.internal "planner: CTE %d has no definition" id)
  | _ ->
      {
        tree with
        Ltree.children = List.map (inline_ctes defs) tree.Ltree.children;
      }

(* Plan a DXL query. *)
let plan (t : t) (query : Dxl.Dxl_query.t) : Expr.plan =
  let tree = Xform.Normalize.run query.Dxl.Dxl_query.tree in
  let tree = inline_ctes [] tree in
  let s = plan_tree t tree in
  (* deliver the root requirements: singleton + order *)
  let s = gather s in
  let s =
    let order = query.Dxl.Dxl_query.order in
    if Sortspec.is_empty order then s
    else { s with plan = node (Expr.P_sort order) [ s.plan ] ~rows:s.rows }
  in
  let out = query.Dxl.Dxl_query.output in
  let same =
    List.length s.plan.Expr.pschema = List.length out
    && List.for_all2 Colref.equal s.plan.Expr.pschema out
  in
  if same || out = [] then s.plan
  else
    let projs =
      List.map (fun c -> { Expr.proj_expr = Expr.Col c; proj_out = c }) out
    in
    node (Expr.P_project projs) [ s.plan ] ~rows:s.rows

let plan_sql ?config accessor (query : Dxl.Dxl_query.t) : Expr.plan =
  plan (create ?config accessor) query

(** The legacy "Planner" baseline (paper §7.2): a PostgreSQL-style bottom-up
    optimizer used as the Figure 12 comparator.

    It plans competently — greedy System-R-style join ordering up to
    [dp_limit] relations, motion planning, predicate placement — but lacks
    the paper's four headline features: join ordering degrades to syntactic
    order on wide joins and ignores histograms; correlated subqueries execute
    as SubPlans re-run per outer row; CTEs are inlined per consumer;
    partitioned tables are always scanned in full. *)

open Ir

type config = {
  segments : int;
  dp_limit : int;
      (** maximum relations considered by the join-order search; beyond it,
          literal syntactic order *)
  broadcast_inner : bool;
      (** Impala-style motion planning: always replicate the join's inner
          side instead of redistributing both sides *)
}

val default_config : config

type t

val create : ?config:config -> Catalog.Accessor.t -> t

val plan : t -> Dxl.Dxl_query.t -> Expr.plan
(** Plan a query bottom-up. The result delivers the query's root
    requirements (Singleton distribution, requested order, output columns). *)

val plan_sql : ?config:config -> Catalog.Accessor.t -> Dxl.Dxl_query.t -> Expr.plan

lib/planner/legacy_planner.ml: Array Catalog Colref Datum Dxl Expr Float Gpos Ir List Logical_ops Ltree Option Physical_ops Plan_ops Props Scalar_ops Sortspec Stats Table_desc Xform

lib/planner/legacy_planner.mli: Catalog Dxl Expr Ir

(* SQL abstract syntax (the parser's output, the binder's input). *)

type expr =
  | E_col of string option * string (* [qualifier.]column *)
  | E_star                          (* COUNT-star argument / SELECT star *)
  | E_int of int
  | E_float of float
  | E_string of string
  | E_bool of bool
  | E_null
  | E_date of string                (* DATE 'YYYY-MM-DD' *)
  | E_cmp of Ir.Expr.cmp * expr * expr
  | E_and of expr * expr
  | E_or of expr * expr
  | E_not of expr
  | E_arith of Ir.Expr.arith * expr * expr
  | E_neg of expr
  | E_is_null of expr * bool        (* negated? *)
  | E_between of expr * expr * expr
  | E_in_list of expr * expr list
  | E_in_query of expr * query * bool (* negated? *)
  | E_exists of query * bool          (* negated? *)
  | E_scalar_subquery of query
  | E_like of expr * string
  | E_case of (expr * expr) list * expr option
  | E_func of string * expr list    (* COALESCE and friends *)
  | E_agg of agg_call
  | E_window of window_call
  | E_cast of expr * string

and agg_call = { agg_name : string; agg_expr : expr option; agg_dist : bool }

and window_call = {
  win_name : string; (* ROW_NUMBER | RANK | COUNT | SUM | AVG | MIN | MAX *)
  win_expr : expr option;
  win_partition : expr list;
  win_order : (expr * [ `Asc | `Desc ]) list;
}

and select_item = { item_expr : expr; item_alias : string option }

and join_type = J_inner | J_left | J_right | J_full | J_cross

and from_item =
  | F_table of string * string option (* table or CTE name, alias *)
  | F_subquery of query * string
  | F_join of from_item * join_type * from_item * expr option

and group_mode =
  | G_plain
  | G_rollup  (* grouping sets = every prefix of [group_by] *)
  | G_cube    (* grouping sets = every subset of [group_by] *)
  | G_sets of int list
      (* explicit GROUPING SETS: each mask selects a subset of [group_by]
         (bit i = expression i kept) *)

and select_core = {
  distinct : bool;
  items : select_item list;
  from : from_item list; (* comma list: implicit cross join *)
  where : expr option;
  group_by : expr list;
  group_mode : group_mode;
      (* ROLLUP/CUBE: [group_by] is the grouping-set generator; expanded to
         a UNION ALL of plain GROUP BY arms before binding (see Rollup) *)
  having : expr option;
}

and body = Select of select_core | Setop of Ir.Expr.set_kind * body * body

and query = {
  ctes : (string * query) list;
  body : body;
  order_by : (expr * [ `Asc | `Desc ]) list;
  limit : int option;
  offset : int option;
}

let simple_select core =
  { ctes = []; body = Select core; order_by = []; limit = None; offset = None }

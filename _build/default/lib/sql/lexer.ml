(* SQL lexer: identifiers, numbers, strings, symbols, line comments. *)

type t = { input : string; mutable pos : int; mutable line : int }

let create input = { input; pos = 0; line = 1 }

let error t fmt =
  Printf.ksprintf
    (fun msg ->
      raise
        (Gpos.Gpos_error.Error
           ( Gpos.Gpos_error.Parse_error,
             Printf.sprintf "line %d: %s" t.line msg )))
    fmt

let peek t = if t.pos < String.length t.input then Some t.input.[t.pos] else None

let peek2 t =
  if t.pos + 1 < String.length t.input then Some t.input.[t.pos + 1] else None

let advance t =
  (match peek t with Some '\n' -> t.line <- t.line + 1 | _ -> ());
  t.pos <- t.pos + 1

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws_and_comments t =
  match peek t with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance t;
      skip_ws_and_comments t
  | Some '-' when peek2 t = Some '-' ->
      while peek t <> None && peek t <> Some '\n' do
        advance t
      done;
      skip_ws_and_comments t
  | _ -> ()

let read_while t pred =
  let start = t.pos in
  while (match peek t with Some c -> pred c | None -> false) do
    advance t
  done;
  String.sub t.input start (t.pos - start)

let next (t : t) : Token.t =
  skip_ws_and_comments t;
  match peek t with
  | None -> Token.EOF
  | Some c when is_ident_start c ->
      let word = read_while t is_ident_char in
      if Token.is_keyword word then Token.KEYWORD (String.uppercase_ascii word)
      else Token.IDENT (String.lowercase_ascii word)
  | Some c when is_digit c ->
      let digits = read_while t (fun c -> is_digit c) in
      if peek t = Some '.' && (match peek2 t with Some d -> is_digit d | None -> false)
      then begin
        advance t;
        let frac = read_while t is_digit in
        Token.FLOAT (float_of_string (digits ^ "." ^ frac))
      end
      else Token.INT (int_of_string digits)
  | Some '\'' ->
      advance t;
      let buf = Buffer.create 16 in
      let rec go () =
        match peek t with
        | None -> error t "unterminated string literal"
        | Some '\'' when peek2 t = Some '\'' ->
            Buffer.add_char buf '\'';
            advance t;
            advance t;
            go ()
        | Some '\'' -> advance t
        | Some c ->
            Buffer.add_char buf c;
            advance t;
            go ()
      in
      go ();
      Token.STRING (Buffer.contents buf)
  | Some c -> (
      let two =
        if t.pos + 1 < String.length t.input then
          Some (String.sub t.input t.pos 2)
        else None
      in
      match two with
      | Some (("<=" | ">=" | "<>" | "!=") as op) ->
          advance t;
          advance t;
          Token.SYMBOL (if op = "!=" then "<>" else op)
      | _ -> (
          match c with
          | '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '%' | '=' | '<'
          | '>' | ';' ->
              advance t;
              Token.SYMBOL (String.make 1 c)
          | c -> error t "unexpected character %C" c))

(* Tokenize a full statement. *)
let tokenize (input : string) : Token.t list =
  let t = create input in
  let rec go acc =
    match next t with
    | Token.EOF -> List.rev (Token.EOF :: acc)
    | tok -> go (tok :: acc)
  in
  go []

(** Recursive-descent SQL parser for the dialect the workload uses:
    SELECT [DISTINCT] .. FROM (tables, inline views, explicit joins) WHERE /
    GROUP BY / HAVING / ORDER BY / LIMIT / OFFSET, WITH-CTEs, UNION [ALL] /
    INTERSECT / EXCEPT, scalar/IN/EXISTS subqueries, CASE, BETWEEN, LIKE,
    IS [NOT] NULL, CAST, aggregates. *)

val parse : string -> Ast.query
(** Parse one statement (a trailing [;] is accepted). Raises
    [Gpos_error.Error Parse_error] with a message on malformed input,
    including trailing garbage. *)

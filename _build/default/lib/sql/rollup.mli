(** GROUP BY ROLLUP / CUBE expansion (GPDB grouping sets, exercised by many
    real TPC-DS templates — q5, q18, q22, q27, q36, q67, q77, q80, q86).

    [ROLLUP (e1, ..., en)] aggregates once per prefix of the list and
    [CUBE (e1, ..., en)] once per subset, with NULL standing in for every
    rolled-away expression and [GROUPING(e)] resolving to 1 where [e] is
    rolled away. The expansion rewrites such a select into a [UNION ALL] of
    plain GROUP BY arms — finest grouping set first — before binding, so the
    Orca pipeline, the legacy Planner and the naive oracle all share one
    implementation. *)

val masks : Ast.group_mode -> int -> int list
(** The grouping-set masks for [n] grouping expressions (bit i = expression
    i kept), widest set first. ROLLUP: the n+1 prefixes. CUBE: all 2^n
    subsets. G_sets: the given masks, reordered widest-first. Exposed for
    property tests. *)

val expand_query : Ast.query -> Ast.query
(** Recursively expand every ROLLUP/CUBE in the query, its CTEs and
    subqueries. Queries without one come back unchanged (up to clearing the
    group mode). *)

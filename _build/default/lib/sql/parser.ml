(* Recursive-descent SQL parser covering the dialect used by the workload:
   SELECT [DISTINCT] .. FROM (tables, subqueries, explicit joins)
   WHERE / GROUP BY / HAVING / ORDER BY / LIMIT / OFFSET, WITH-CTEs,
   UNION [ALL] / INTERSECT / EXCEPT, scalar/IN/EXISTS subqueries,
   CASE, BETWEEN, LIKE, IS [NOT] NULL, CAST, aggregates. *)

type t = { mutable toks : Token.t list }

let error fmt =
  Printf.ksprintf
    (fun msg -> raise (Gpos.Gpos_error.Error (Gpos.Gpos_error.Parse_error, msg)))
    fmt

let peek p = match p.toks with tok :: _ -> tok | [] -> Token.EOF

let peek2 p = match p.toks with _ :: tok :: _ -> tok | _ -> Token.EOF

let advance p = match p.toks with _ :: rest -> p.toks <- rest | [] -> ()

let eat p tok =
  if peek p = tok then advance p
  else error "expected %s, found %s" (Token.to_string tok) (Token.to_string (peek p))

let accept p tok =
  if peek p = tok then begin
    advance p;
    true
  end
  else false

let kw p k = accept p (Token.KEYWORD k)

let expect_kw p k = eat p (Token.KEYWORD k)

let sym p s = accept p (Token.SYMBOL s)

let expect_sym p s = eat p (Token.SYMBOL s)

let ident p =
  match peek p with
  | Token.IDENT s ->
      advance p;
      s
  | tok -> error "expected identifier, found %s" (Token.to_string tok)

let int_lit p =
  match peek p with
  | Token.INT n ->
      advance p;
      n
  | tok -> error "expected integer, found %s" (Token.to_string tok)

(* --- expressions, by precedence --- *)

let agg_names = [ "COUNT"; "SUM"; "AVG"; "MIN"; "MAX" ]

let rec parse_expr p : Ast.expr = parse_or p

and parse_or p =
  let left = parse_and p in
  if kw p "OR" then Ast.E_or (left, parse_or p) else left

and parse_and p =
  let left = parse_not p in
  if kw p "AND" then Ast.E_and (left, parse_and p) else left

and parse_not p =
  if kw p "NOT" then Ast.E_not (parse_not p) else parse_predicate p

and parse_predicate p =
  (* EXISTS (subquery) *)
  if peek p = Token.KEYWORD "EXISTS" then begin
    advance p;
    expect_sym p "(";
    let q = parse_query p in
    expect_sym p ")";
    Ast.E_exists (q, false)
  end
  else begin
    let left = parse_additive p in
    parse_predicate_tail p left
  end

and parse_predicate_tail p left =
  match peek p with
  | Token.SYMBOL (("=" | "<>" | "<" | "<=" | ">" | ">=") as op) ->
      advance p;
      let cmp =
        match op with
        | "=" -> Ir.Expr.Eq
        | "<>" -> Ir.Expr.Neq
        | "<" -> Ir.Expr.Lt
        | "<=" -> Ir.Expr.Le
        | ">" -> Ir.Expr.Gt
        | ">=" -> Ir.Expr.Ge
        | _ -> assert false
      in
      let right = parse_additive p in
      Ast.E_cmp (cmp, left, right)
  | Token.KEYWORD "BETWEEN" ->
      advance p;
      let lo = parse_additive p in
      expect_kw p "AND";
      let hi = parse_additive p in
      Ast.E_between (left, lo, hi)
  | Token.KEYWORD "IN" ->
      advance p;
      expect_sym p "(";
      if peek p = Token.KEYWORD "SELECT" || peek p = Token.KEYWORD "WITH" then begin
        let q = parse_query p in
        expect_sym p ")";
        Ast.E_in_query (left, q, false)
      end
      else begin
        let rec vals acc =
          let v = parse_additive p in
          if sym p "," then vals (v :: acc) else List.rev (v :: acc)
        in
        let vs = vals [] in
        expect_sym p ")";
        Ast.E_in_list (left, vs)
      end
  | Token.KEYWORD "NOT" when peek2 p = Token.KEYWORD "IN" ->
      advance p;
      advance p;
      expect_sym p "(";
      if peek p = Token.KEYWORD "SELECT" || peek p = Token.KEYWORD "WITH" then begin
        let q = parse_query p in
        expect_sym p ")";
        Ast.E_in_query (left, q, true)
      end
      else begin
        let rec vals acc =
          let v = parse_additive p in
          if sym p "," then vals (v :: acc) else List.rev (v :: acc)
        in
        let vs = vals [] in
        expect_sym p ")";
        Ast.E_not (Ast.E_in_list (left, vs))
      end
  | Token.KEYWORD "NOT" when peek2 p = Token.KEYWORD "LIKE" ->
      advance p;
      advance p;
      (match peek p with
      | Token.STRING pat ->
          advance p;
          Ast.E_not (Ast.E_like (left, pat))
      | tok -> error "expected pattern string, found %s" (Token.to_string tok))
  | Token.KEYWORD "NOT" when peek2 p = Token.KEYWORD "BETWEEN" ->
      advance p;
      advance p;
      let lo = parse_additive p in
      expect_kw p "AND";
      let hi = parse_additive p in
      Ast.E_not (Ast.E_between (left, lo, hi))
  | Token.KEYWORD "LIKE" ->
      advance p;
      (match peek p with
      | Token.STRING pat ->
          advance p;
          Ast.E_like (left, pat)
      | tok -> error "expected pattern string, found %s" (Token.to_string tok))
  | Token.KEYWORD "IS" ->
      advance p;
      let negated = kw p "NOT" in
      expect_kw p "NULL";
      Ast.E_is_null (left, negated)
  | _ -> left

and parse_additive p =
  let left = parse_multiplicative p in
  parse_additive_tail p left

and parse_additive_tail p left =
  match peek p with
  | Token.SYMBOL "+" ->
      advance p;
      let right = parse_multiplicative p in
      parse_additive_tail p (Ast.E_arith (Ir.Expr.Add, left, right))
  | Token.SYMBOL "-" ->
      advance p;
      let right = parse_multiplicative p in
      parse_additive_tail p (Ast.E_arith (Ir.Expr.Sub, left, right))
  | _ -> left

and parse_multiplicative p =
  let left = parse_unary p in
  parse_multiplicative_tail p left

and parse_multiplicative_tail p left =
  match peek p with
  | Token.SYMBOL "*" ->
      advance p;
      let right = parse_unary p in
      parse_multiplicative_tail p (Ast.E_arith (Ir.Expr.Mul, left, right))
  | Token.SYMBOL "/" ->
      advance p;
      let right = parse_unary p in
      parse_multiplicative_tail p (Ast.E_arith (Ir.Expr.Div, left, right))
  | Token.SYMBOL "%" ->
      advance p;
      let right = parse_unary p in
      parse_multiplicative_tail p (Ast.E_arith (Ir.Expr.Mod, left, right))
  | _ -> left

and parse_unary p =
  if sym p "-" then Ast.E_neg (parse_unary p) else parse_primary p

and parse_primary p : Ast.expr =
  match peek p with
  | Token.INT n ->
      advance p;
      Ast.E_int n
  | Token.FLOAT f ->
      advance p;
      Ast.E_float f
  | Token.STRING s ->
      advance p;
      Ast.E_string s
  | Token.KEYWORD "NULL" ->
      advance p;
      Ast.E_null
  | Token.KEYWORD "TRUE" ->
      advance p;
      Ast.E_bool true
  | Token.KEYWORD "FALSE" ->
      advance p;
      Ast.E_bool false
  | Token.KEYWORD "DATE" ->
      advance p;
      (match peek p with
      | Token.STRING s ->
          advance p;
          Ast.E_date s
      | tok -> error "expected date string, found %s" (Token.to_string tok))
  | Token.KEYWORD "CASE" ->
      advance p;
      let rec whens acc =
        if kw p "WHEN" then begin
          let c = parse_expr p in
          expect_kw p "THEN";
          let v = parse_expr p in
          whens ((c, v) :: acc)
        end
        else List.rev acc
      in
      let ws = whens [] in
      let els = if kw p "ELSE" then Some (parse_expr p) else None in
      expect_kw p "END";
      Ast.E_case (ws, els)
  | Token.KEYWORD "CAST" ->
      advance p;
      expect_sym p "(";
      let e = parse_expr p in
      expect_kw p "AS";
      let ty = ident p in
      expect_sym p ")";
      Ast.E_cast (e, ty)
  | Token.KEYWORD "COALESCE" ->
      advance p;
      expect_sym p "(";
      let rec args acc =
        let e = parse_expr p in
        if sym p "," then args (e :: acc) else List.rev (e :: acc)
      in
      let es = args [] in
      expect_sym p ")";
      Ast.E_func ("COALESCE", es)
  | Token.KEYWORD name when List.mem name agg_names ->
      advance p;
      expect_sym p "(";
      let dist = kw p "DISTINCT" in
      let arg =
        if sym p "*" then None
        else Some (parse_expr p)
      in
      expect_sym p ")";
      if peek p = Token.KEYWORD "OVER" then
        parse_over p name arg
      else Ast.E_agg { Ast.agg_name = name; agg_expr = arg; agg_dist = dist }
  | Token.SYMBOL "(" ->
      advance p;
      if peek p = Token.KEYWORD "SELECT" || peek p = Token.KEYWORD "WITH" then begin
        let q = parse_query p in
        expect_sym p ")";
        Ast.E_scalar_subquery q
      end
      else begin
        let e = parse_expr p in
        expect_sym p ")";
        e
      end
  | Token.IDENT "grouping" when peek2 p = Token.SYMBOL "(" ->
      (* GROUPING(e): 1 when [e] is rolled away in the current grouping set,
          0 otherwise; substituted per-arm by the ROLLUP expansion *)
      advance p;
      expect_sym p "(";
      let e = parse_expr p in
      expect_sym p ")";
      Ast.E_func ("GROUPING", [ e ])
  | Token.IDENT ("row_number" | "rank" | "dense_rank") when peek2 p = Token.SYMBOL "(" -> (
      match peek p with
      | Token.IDENT name ->
          advance p;
          expect_sym p "(";
          expect_sym p ")";
          parse_over p (String.uppercase_ascii name) None
      | _ -> assert false)
  | Token.IDENT name ->
      advance p;
      if sym p "." then begin
        if sym p "*" then Ast.E_star
        else
          let col = ident p in
          Ast.E_col (Some name, col)
      end
      else Ast.E_col (None, name)
  | Token.SYMBOL "*" ->
      advance p;
      Ast.E_star
  | tok -> error "unexpected token %s in expression" (Token.to_string tok)

(* OVER ( [PARTITION BY e, ...] [ORDER BY e [ASC|DESC], ...] ) *)
and parse_over p name arg : Ast.expr =
  expect_kw p "OVER";
  expect_sym p "(";
  let partition =
    if kw p "PARTITION" then begin
      expect_kw p "BY";
      let rec go acc =
        let e = parse_expr p in
        if sym p "," then go (e :: acc) else List.rev (e :: acc)
      in
      go []
    end
    else []
  in
  let order =
    if kw p "ORDER" then begin
      expect_kw p "BY";
      let rec go acc =
        let e = parse_expr p in
        let dir =
          if kw p "DESC" then `Desc
          else begin
            let _ = kw p "ASC" in
            `Asc
          end
        in
        if sym p "," then go ((e, dir) :: acc) else List.rev ((e, dir) :: acc)
      in
      go []
    end
    else []
  in
  (* Optional explicit frame. Only the SQL default frame is accepted --
     [ROWS|RANGE] BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW -- which is
     the semantics window aggregates already implement; anything else is an
     honest Unsupported error rather than a silent reinterpretation. *)
  (match peek p with
  | Token.IDENT (("rows" | "range") as unit_word) ->
      advance p;
      let frame_ident expected =
        match peek p with
        | Token.IDENT w when w = expected -> advance p
        | tok ->
            error "unsupported window frame (%s, expected %s): only %s \
                   BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW is supported"
              (Token.to_string tok) expected
              (String.uppercase_ascii unit_word)
      in
      expect_kw p "BETWEEN";
      frame_ident "unbounded";
      frame_ident "preceding";
      expect_kw p "AND";
      frame_ident "current";
      frame_ident "row";
      if order = [] then
        error "a window frame requires an ORDER BY in its window"
  | _ -> ());
  expect_sym p ")";
  Ast.E_window
    { Ast.win_name = name; win_expr = arg; win_partition = partition; win_order = order }

(* --- FROM clause --- *)

and parse_from_item p : Ast.from_item =
  let base =
    if sym p "(" then begin
      if peek p = Token.KEYWORD "SELECT" || peek p = Token.KEYWORD "WITH" then begin
        let q = parse_query p in
        expect_sym p ")";
        let _ = kw p "AS" in
        let alias = ident p in
        Ast.F_subquery (q, alias)
      end
      else begin
        (* parenthesized join tree *)
        let item = parse_from_item p in
        expect_sym p ")";
        item
      end
    end
    else begin
      let name = ident p in
      let alias =
        if kw p "AS" then Some (ident p)
        else
          match peek p with
          | Token.IDENT a ->
              advance p;
              Some a
          | _ -> None
      in
      Ast.F_table (name, alias)
    end
  in
  parse_join_tail p base

and parse_join_tail p left =
  let jt =
    if kw p "INNER" then begin
      expect_kw p "JOIN";
      Some Ast.J_inner
    end
    else if kw p "LEFT" then begin
      let _ = kw p "OUTER" in
      expect_kw p "JOIN";
      Some Ast.J_left
    end
    else if kw p "RIGHT" then begin
      let _ = kw p "OUTER" in
      expect_kw p "JOIN";
      Some Ast.J_right
    end
    else if kw p "FULL" then begin
      let _ = kw p "OUTER" in
      expect_kw p "JOIN";
      Some Ast.J_full
    end
    else if kw p "CROSS" then begin
      expect_kw p "JOIN";
      Some Ast.J_cross
    end
    else if kw p "JOIN" then Some Ast.J_inner
    else None
  in
  match jt with
  | None -> left
  | Some jt ->
      let right =
        if sym p "(" then begin
          if peek p = Token.KEYWORD "SELECT" || peek p = Token.KEYWORD "WITH"
          then begin
            let q = parse_query p in
            expect_sym p ")";
            let _ = kw p "AS" in
            let alias = ident p in
            Ast.F_subquery (q, alias)
          end
          else begin
            let item = parse_from_item p in
            expect_sym p ")";
            item
          end
        end
        else begin
          let name = ident p in
          let alias =
            if kw p "AS" then Some (ident p)
            else
              match peek p with
              | Token.IDENT a when peek2 p <> Token.SYMBOL "(" ->
                  advance p;
                  Some a
              | _ -> None
          in
          Ast.F_table (name, alias)
        end
      in
      let cond =
        if jt = Ast.J_cross then None
        else begin
          expect_kw p "ON";
          Some (parse_expr p)
        end
      in
      parse_join_tail p (Ast.F_join (left, jt, right, cond))

(* --- SELECT core --- *)

and parse_select_core p : Ast.select_core =
  expect_kw p "SELECT";
  let distinct = kw p "DISTINCT" in
  let rec items acc =
    let e = parse_expr p in
    let alias =
      if kw p "AS" then Some (ident p)
      else
        match peek p with
        | Token.IDENT a ->
            advance p;
            Some a
        | _ -> None
    in
    let item = { Ast.item_expr = e; item_alias = alias } in
    if sym p "," then items (item :: acc) else List.rev (item :: acc)
  in
  let items = items [] in
  let from =
    if kw p "FROM" then begin
      let rec froms acc =
        let f = parse_from_item p in
        if sym p "," then froms (f :: acc) else List.rev (f :: acc)
      in
      froms []
    end
    else []
  in
  let where = if kw p "WHERE" then Some (parse_expr p) else None in
  let group_by, group_mode =
    if kw p "GROUP" then begin
      expect_kw p "BY";
      match peek p with
      | Token.IDENT "grouping" ->
          (* GROUPING SETS ((e, ...), (e, ...), ..., ()) *)
          advance p;
          (match peek p with
          | Token.IDENT "sets" -> advance p
          | tok ->
              error "expected SETS after GROUPING, got %s" (Token.to_string tok));
          expect_sym p "(";
          let rec one_set acc =
            (* a parenthesized list, or a single bare expression *)
            let exprs =
              if sym p "(" then begin
                if sym p ")" then []
                else begin
                  let rec go acc =
                    let e = parse_expr p in
                    if sym p "," then go (e :: acc) else List.rev (e :: acc)
                  in
                  let es = go [] in
                  expect_sym p ")";
                  es
                end
              end
              else [ parse_expr p ]
            in
            if sym p "," then one_set (exprs :: acc)
            else List.rev (exprs :: acc)
          in
          let sets = one_set [] in
          expect_sym p ")";
          (* the generator list = first occurrence of each expression *)
          let cols =
            List.fold_left
              (fun acc e -> if List.mem e acc then acc else acc @ [ e ])
              []
              (List.concat sets)
          in
          let index e =
            let rec go i = function
              | [] -> assert false
              | x :: _ when x = e -> i
              | _ :: rest -> go (i + 1) rest
            in
            go 0 cols
          in
          let masks =
            List.map
              (fun set ->
                List.fold_left (fun m e -> m lor (1 lsl index e)) 0 set)
              sets
          in
          (cols, Ast.G_sets masks)
      | _ ->
          let mode =
            match peek p with
            | Token.IDENT "rollup" ->
                advance p;
                expect_sym p "(";
                Ast.G_rollup
            | Token.IDENT "cube" ->
                advance p;
                expect_sym p "(";
                Ast.G_cube
            | _ -> Ast.G_plain
          in
          let rec cols acc =
            let e = parse_expr p in
            if sym p "," then cols (e :: acc) else List.rev (e :: acc)
          in
          let cols = cols [] in
          if mode <> Ast.G_plain then expect_sym p ")";
          (cols, mode)
    end
    else ([], Ast.G_plain)
  in
  let having = if kw p "HAVING" then Some (parse_expr p) else None in
  { Ast.distinct; items; from; where; group_by; group_mode; having }

and parse_body p : Ast.body =
  let left = Ast.Select (parse_select_core p) in
  parse_body_tail p left

and parse_body_tail p left =
  if kw p "UNION" then begin
    let kind = if kw p "ALL" then Ir.Expr.Union_all else Ir.Expr.Union_distinct in
    let right = Ast.Select (parse_select_core p) in
    parse_body_tail p (Ast.Setop (kind, left, right))
  end
  else if kw p "INTERSECT" then begin
    let right = Ast.Select (parse_select_core p) in
    parse_body_tail p (Ast.Setop (Ir.Expr.Intersect, left, right))
  end
  else if kw p "EXCEPT" then begin
    let right = Ast.Select (parse_select_core p) in
    parse_body_tail p (Ast.Setop (Ir.Expr.Except, left, right))
  end
  else left

(* --- full queries --- *)

and parse_query p : Ast.query =
  let ctes =
    if kw p "WITH" then begin
      let rec go acc =
        let name = ident p in
        expect_kw p "AS";
        expect_sym p "(";
        let q = parse_query p in
        expect_sym p ")";
        if sym p "," then go ((name, q) :: acc) else List.rev ((name, q) :: acc)
      in
      go []
    end
    else []
  in
  let body = parse_body p in
  let order_by =
    if kw p "ORDER" then begin
      expect_kw p "BY";
      let rec go acc =
        let e = parse_expr p in
        let dir =
          if kw p "DESC" then `Desc
          else begin
            let _ = kw p "ASC" in
            `Asc
          end
        in
        if sym p "," then go ((e, dir) :: acc) else List.rev ((e, dir) :: acc)
      in
      go []
    end
    else []
  in
  let limit = if kw p "LIMIT" then Some (int_lit p) else None in
  let offset = if kw p "OFFSET" then Some (int_lit p) else None in
  { Ast.ctes; body; order_by; limit; offset }

let parse (sql : string) : Ast.query =
  let p = { toks = Lexer.tokenize sql } in
  let q = parse_query p in
  let _ = sym p ";" in
  (match peek p with
  | Token.EOF -> ()
  | tok -> error "trailing input: %s" (Token.to_string tok));
  q

(** The binder — the system's Query2DXL translator (paper Fig. 2).

    Resolves names against the catalog through an MD accessor, mints fresh
    column references per table instance (self-joins bind twice), lowers the
    AST to a logical operator tree and packages it as a DXL query message.

    Subqueries become Apply operators whose correlation sets are the columns
    resolved through enclosing scopes. EXISTS/IN subqueries are accepted only
    in conjunct positions (where the semi-join rewrite is sound); scalar
    subqueries anywhere. AVG is decomposed into SUM/COUNT at bind time so
    every aggregate splits cleanly into partial/final stages. *)

type t

val create : Catalog.Accessor.t -> t

val bind : t -> Ast.query -> Dxl.Dxl_query.t
(** Lower a parsed query. Raises [Gpos_error.Error Bind_error] for unknown
    tables/columns, misplaced aggregates or subqueries, and unsupported
    constructs. *)

val bind_sql : Catalog.Accessor.t -> string -> Dxl.Dxl_query.t
(** Parser + binder: SQL text straight to a DXL query. *)

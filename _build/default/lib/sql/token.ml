(* SQL tokens. *)

type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KEYWORD of string (* uppercased *)
  | SYMBOL of string  (* punctuation and operators *)
  | EOF

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "LIMIT";
    "OFFSET"; "AS"; "AND"; "OR"; "NOT"; "IN"; "EXISTS"; "BETWEEN"; "LIKE";
    "IS"; "NULL"; "TRUE"; "FALSE"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END";
    "JOIN"; "INNER"; "LEFT"; "RIGHT"; "FULL"; "OUTER"; "CROSS"; "ON";
    "UNION"; "ALL"; "INTERSECT"; "EXCEPT"; "DISTINCT"; "WITH"; "ASC"; "DESC";
    "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "COALESCE"; "CAST"; "DATE"; "VALUES";
    "OVER"; "PARTITION";
  ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "'%s'" s
  | KEYWORD k -> k
  | SYMBOL s -> s
  | EOF -> "<end of input>"

(* GROUP BY ROLLUP / CUBE expansion.

   ROLLUP (e1, ..., en) computes one aggregate per prefix of the list —
   (e1..en), (e1..e(n-1)), ..., () — and CUBE one per subset, with NULL
   standing in for every rolled-away expression. GPDB/Orca plan grouping
   sets as a shared input aggregated once per set and appended; we realize
   the same semantics as an AST-level rewrite into a UNION ALL of plain
   GROUP BY arms, so the Orca pipeline, the legacy Planner and the naive
   oracle all inherit grouping sets from one place. The finest grouping set
   comes first, which also gives the set-operation its column types. *)

(* Replace every occurrence of a rolled-away grouping expression with NULL.
   The AST is pure data, so structural equality identifies occurrences; a
   rolled-away expression nested inside a bigger item (e.g. [d_year + 1])
   becomes NULL there too, and SQL NULL propagation does the rest. *)
let rec null_out (rolled : Ast.expr list) (e : Ast.expr) : Ast.expr =
  if List.exists (fun r -> r = e) rolled then Ast.E_null
  else
    let n = null_out rolled in
    match e with
    | Ast.E_col _ | Ast.E_star | Ast.E_int _ | Ast.E_float _ | Ast.E_string _
    | Ast.E_bool _ | Ast.E_null | Ast.E_date _ ->
        e
    | Ast.E_cmp (op, a, b) -> Ast.E_cmp (op, n a, n b)
    | Ast.E_and (a, b) -> Ast.E_and (n a, n b)
    | Ast.E_or (a, b) -> Ast.E_or (n a, n b)
    | Ast.E_not a -> Ast.E_not (n a)
    | Ast.E_arith (op, a, b) -> Ast.E_arith (op, n a, n b)
    | Ast.E_neg a -> Ast.E_neg (n a)
    | Ast.E_is_null (a, neg) -> Ast.E_is_null (n a, neg)
    | Ast.E_between (a, lo, hi) -> Ast.E_between (n a, n lo, n hi)
    | Ast.E_in_list (a, vs) -> Ast.E_in_list (n a, List.map n vs)
    | Ast.E_in_query (a, q, neg) -> Ast.E_in_query (n a, q, neg)
    | Ast.E_exists (q, neg) -> Ast.E_exists (q, neg)
    | Ast.E_scalar_subquery q -> Ast.E_scalar_subquery q
    | Ast.E_like (a, pat) -> Ast.E_like (n a, pat)
    | Ast.E_case (whens, els) ->
        Ast.E_case
          (List.map (fun (c, v) -> (n c, n v)) whens, Option.map n els)
    | Ast.E_func (name, args) -> Ast.E_func (name, List.map n args)
    (* aggregate arguments keep the original expression: aggregates are
       computed over the arm's groups, not over the rolled-away columns *)
    | Ast.E_agg _ | Ast.E_window _ -> e
    | Ast.E_cast (a, ty) -> Ast.E_cast (n a, ty)

(* Resolve GROUPING(e) calls: 1 when [e] is rolled away in this arm, 0 when
   it is kept. Runs before [null_out] so the argument is still intact. *)
let rec resolve_grouping (rolled : Ast.expr list) (e : Ast.expr) : Ast.expr =
  let n = resolve_grouping rolled in
  match e with
  | Ast.E_func ("GROUPING", [ arg ]) ->
      Ast.E_int (if List.exists (fun r -> r = arg) rolled then 1 else 0)
  | Ast.E_cmp (op, a, b) -> Ast.E_cmp (op, n a, n b)
  | Ast.E_and (a, b) -> Ast.E_and (n a, n b)
  | Ast.E_or (a, b) -> Ast.E_or (n a, n b)
  | Ast.E_not a -> Ast.E_not (n a)
  | Ast.E_arith (op, a, b) -> Ast.E_arith (op, n a, n b)
  | Ast.E_neg a -> Ast.E_neg (n a)
  | Ast.E_is_null (a, neg) -> Ast.E_is_null (n a, neg)
  | Ast.E_between (a, lo, hi) -> Ast.E_between (n a, n lo, n hi)
  | Ast.E_in_list (a, vs) -> Ast.E_in_list (n a, List.map n vs)
  | Ast.E_like (a, pat) -> Ast.E_like (n a, pat)
  | Ast.E_case (whens, els) ->
      Ast.E_case (List.map (fun (c, v) -> (n c, n v)) whens, Option.map n els)
  | Ast.E_func (name, args) -> Ast.E_func (name, List.map n args)
  | Ast.E_cast (a, ty) -> Ast.E_cast (n a, ty)
  | _ -> e

(* One UNION ALL arm for the grouping set selected by [mask] (bit i set =
   grouping expression i kept): resolve GROUPING() calls, then NULL the
   rolled-away expressions out of the select list and HAVING. *)
let arm (core : Ast.select_core) (mask : int) : Ast.select_core =
  let kept = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) core.Ast.group_by in
  let rolled =
    (* an expression listed twice (ROLLUP (a, a)) stays live as long as any
       copy is kept -- never NULL out something the arm still groups by *)
    List.filteri (fun i _ -> mask land (1 lsl i) = 0) core.Ast.group_by
    |> List.filter (fun r -> not (List.mem r kept))
  in
  let fix e = null_out rolled (resolve_grouping rolled e) in
  {
    core with
    Ast.items =
      List.map
        (fun it -> { it with Ast.item_expr = fix it.Ast.item_expr })
        core.Ast.items;
    group_by = kept;
    group_mode = Ast.G_plain;
    having = Option.map fix core.Ast.having;
  }

(* The grouping-set masks, finest set first (it determines the set-op
   column names and types). ROLLUP: each prefix. CUBE: each subset, in
   decreasing popcount so coarser sets come later. *)
let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let masks (mode : Ast.group_mode) (n : int) : int list =
  let full = (1 lsl n) - 1 in
  match mode with
  | Ast.G_plain -> [ full ]
  | Ast.G_rollup -> List.init (n + 1) (fun i -> (1 lsl (n - i)) - 1)
  | Ast.G_cube ->
      List.init (full + 1) (fun m -> m)
      |> List.stable_sort (fun a b -> compare (popcount b) (popcount a))
  | Ast.G_sets ms ->
      (* widest set first so it fixes the union's column types; duplicate
         sets are legal SQL and kept (each contributes its rows) *)
      List.stable_sort (fun a b -> compare (popcount b) (popcount a)) ms

let expand_core (core : Ast.select_core) : Ast.body =
  let n = List.length core.Ast.group_by in
  match masks core.Ast.group_mode n with
  | [] -> Ast.Select (arm core ((1 lsl n) - 1))
  | [ m ] -> Ast.Select (arm core m)
  | first :: rest ->
      List.fold_left
        (fun acc m -> Ast.Setop (Ir.Expr.Union_all, acc, Ast.Select (arm core m)))
        (Ast.Select (arm core first))
        rest

let rec expand_body (b : Ast.body) : Ast.body =
  match b with
  | Ast.Select core ->
      let core = expand_in_core core in
      if core.Ast.group_mode <> Ast.G_plain && core.Ast.group_by <> [] then
        expand_core core
      else Ast.Select { core with Ast.group_mode = Ast.G_plain }
  | Ast.Setop (k, l, r) -> Ast.Setop (k, expand_body l, expand_body r)

(* Recurse into FROM subqueries and subquery expressions so nested ROLLUPs
   expand too. *)
and expand_in_core (core : Ast.select_core) : Ast.select_core =
  let rec in_expr (e : Ast.expr) : Ast.expr =
    match e with
    | Ast.E_in_query (a, q, neg) -> Ast.E_in_query (in_expr a, expand_query q, neg)
    | Ast.E_exists (q, neg) -> Ast.E_exists (expand_query q, neg)
    | Ast.E_scalar_subquery q -> Ast.E_scalar_subquery (expand_query q)
    | Ast.E_cmp (op, a, b) -> Ast.E_cmp (op, in_expr a, in_expr b)
    | Ast.E_and (a, b) -> Ast.E_and (in_expr a, in_expr b)
    | Ast.E_or (a, b) -> Ast.E_or (in_expr a, in_expr b)
    | Ast.E_not a -> Ast.E_not (in_expr a)
    | Ast.E_arith (op, a, b) -> Ast.E_arith (op, in_expr a, in_expr b)
    | Ast.E_neg a -> Ast.E_neg (in_expr a)
    | Ast.E_is_null (a, neg) -> Ast.E_is_null (in_expr a, neg)
    | Ast.E_between (a, lo, hi) ->
        Ast.E_between (in_expr a, in_expr lo, in_expr hi)
    | Ast.E_in_list (a, vs) -> Ast.E_in_list (in_expr a, List.map in_expr vs)
    | Ast.E_like (a, pat) -> Ast.E_like (in_expr a, pat)
    | Ast.E_case (whens, els) ->
        Ast.E_case
          ( List.map (fun (c, v) -> (in_expr c, in_expr v)) whens,
            Option.map in_expr els )
    | Ast.E_func (name, args) -> Ast.E_func (name, List.map in_expr args)
    | Ast.E_cast (a, ty) -> Ast.E_cast (in_expr a, ty)
    | Ast.E_col _ | Ast.E_star | Ast.E_int _ | Ast.E_float _ | Ast.E_string _
    | Ast.E_bool _ | Ast.E_null | Ast.E_date _ | Ast.E_agg _ | Ast.E_window _
      ->
        e
  in
  let rec in_from (f : Ast.from_item) : Ast.from_item =
    match f with
    | Ast.F_table _ -> f
    | Ast.F_subquery (q, alias) -> Ast.F_subquery (expand_query q, alias)
    | Ast.F_join (l, jt, r, cond) ->
        Ast.F_join (in_from l, jt, in_from r, Option.map in_expr cond)
  in
  {
    core with
    Ast.items =
      List.map
        (fun it -> { it with Ast.item_expr = in_expr it.Ast.item_expr })
        core.Ast.items;
    from = List.map in_from core.Ast.from;
    where = Option.map in_expr core.Ast.where;
    having = Option.map in_expr core.Ast.having;
  }

and expand_query (q : Ast.query) : Ast.query =
  {
    q with
    Ast.ctes = List.map (fun (name, cq) -> (name, expand_query cq)) q.Ast.ctes;
    body = expand_body q.Ast.body;
  }

(** SQL lexer: identifiers (case-folded to lowercase), keywords (uppercased),
    integer/float/string literals with [''] escaping, operators, and [--]
    line comments. *)

val tokenize : string -> Token.t list
(** The token stream, [EOF]-terminated. Raises
    [Gpos_error.Error Parse_error] with a line number on bad characters or
    unterminated strings. *)

lib/sql/rollup.ml: Ast Ir List Option

lib/sql/parser.ml: Ast Gpos Ir Lexer List Printf String Token

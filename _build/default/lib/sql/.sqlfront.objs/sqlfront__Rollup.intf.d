lib/sql/rollup.mli: Ast

lib/sql/binder.ml: Ast Catalog Colref Datum Dtype Dxl Expr Gpos Ir List Ltree Option Parser Printf Props Rollup Scalar_ops Sortspec Table_desc

lib/sql/lexer.ml: Buffer Gpos List Printf String Token

lib/sql/ast.ml: Ir

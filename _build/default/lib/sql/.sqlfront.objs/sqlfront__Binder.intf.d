lib/sql/binder.mli: Ast Catalog Dxl

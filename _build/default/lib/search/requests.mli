(** Request schedules (paper §4.1 step 4, Fig. 7).

    For an incoming optimization request, each physical operator proposes
    alternative vectors of child requests. A hash join, for instance, can
    co-locate both children on the join keys, broadcast its inner side,
    broadcast its outer side (inner joins only), or gather both children to
    the master — the cost model differentiates the alternatives, and the
    property-enforcement framework keeps them cleanly isolated. *)

open Ir

val join_dist_alternatives :
  Expr.join_kind ->
  hash_keys:(Colref.t list * Colref.t list) option ->
  (Props.dist_req * Props.dist_req) list
(** The distribution alternatives for a binary join, filtered by what is
    semantically valid for the join kind (e.g. no broadcast variants for
    full outer joins, broadcast-outer only for inner joins). *)

val alternatives :
  Expr.physical ->
  req:Props.req ->
  child_out_cols:Colref.t list list ->
  Props.req list list
(** Child request vectors for an operator under an incoming request. Each
    inner list has one request per child; leaves return [[[]]]. *)

open Ir

(* Request schedules (paper §4.1 step 4, Fig. 7): for an incoming optimization
   request, each physical operator proposes alternative vectors of child
   requests. E.g. a hash join can co-locate both children on the join keys,
   broadcast its inner side, broadcast its outer side (inner joins only), or
   gather both children to the master. Orca "allows extending each operator
   with any number of possible optimization alternatives and cleanly isolates
   these alternatives through the property enforcement framework". *)

let any = Props.any_req

let key_cols keys =
  let outer =
    List.filter_map
      (fun (k, _) -> match k with Expr.Col c -> Some c | _ -> None)
      keys
  in
  let inner =
    List.filter_map
      (fun (_, k) -> match k with Expr.Col c -> Some c | _ -> None)
      keys
  in
  if List.length outer = List.length keys && List.length inner = List.length keys
  then Some (outer, inner)
  else None

(* Distribution alternatives for a binary join. *)
let join_dist_alternatives (kind : Expr.join_kind) ~(hash_keys : (Colref.t list * Colref.t list) option) :
    (Props.dist_req * Props.dist_req) list =
  let colocated =
    match hash_keys with
    | Some (ocols, icols) when ocols <> [] ->
        [ (Props.Req_hashed ocols, Props.Req_hashed icols) ]
    | _ -> []
  in
  let broadcast_inner =
    match kind with
    | Expr.Inner | Expr.Left_outer | Expr.Semi | Expr.Anti_semi ->
        [ (Props.Req_non_singleton, Props.Req_replicated) ]
    | Expr.Full_outer -> []
  in
  let broadcast_outer =
    match kind with
    | Expr.Inner -> [ (Props.Req_replicated, Props.Req_non_singleton) ]
    | _ -> []
  in
  let singleton = [ (Props.Req_singleton, Props.Req_singleton) ] in
  colocated @ broadcast_inner @ broadcast_outer @ singleton

(* Child request vectors for [op] under incoming request [req].
   [child_out_cols] lists each child group's output columns. *)
let alternatives (op : Expr.physical) ~(req : Props.req)
    ~(child_out_cols : Colref.t list list) : Props.req list list =
  match op with
  | Expr.P_table_scan _ | Expr.P_index_scan _ | Expr.P_cte_consumer _
  | Expr.P_const_table _ ->
      [ [] ]
  | Expr.P_filter _ ->
      (* filters preserve order and distribution: pass the request through *)
      [ [ req ] ]
  | Expr.P_project projs ->
      (* pass through only what survives the projection *)
      let dist_ok =
        match req.Props.rdist with
        | Props.Req_hashed cols ->
            List.for_all (Physical_ops.passes_projection projs) cols
        | _ -> true
      in
      let order_ok =
        List.for_all
          (fun (i : Sortspec.item) ->
            Physical_ops.passes_projection projs i.Sortspec.col)
          req.Props.rorder
      in
      let passed =
        {
          Props.rdist = (if dist_ok then req.Props.rdist else Props.Any_dist);
          rorder = (if order_ok then req.Props.rorder else Sortspec.empty);
        }
      in
      (* also offer enforcing *above* the projection: when it narrows the
         rows, sorting/moving the projected stream is cheaper than moving the
         wide input *)
      if Props.req_equal passed any then [ [ any ] ]
      else [ [ passed ]; [ any ] ]
  | Expr.P_hash_join (kind, keys, _) ->
      join_dist_alternatives kind ~hash_keys:(key_cols keys)
      |> List.map (fun (o, i) -> [ Props.req_dist o; Props.req_dist i ])
  | Expr.P_merge_join (kind, keys, _) ->
      let order side =
        List.map (fun (o, i) -> Sortspec.asc (side (o, i))) keys
      in
      let outer_order = order fst and inner_order = order snd in
      let hash_keys = Some (List.map fst keys, List.map snd keys) in
      join_dist_alternatives kind ~hash_keys
      |> List.filter_map (fun (o, i) ->
             (* merge join needs both inputs sorted; broadcast variants break
                the pairing of sorted runs only for non-inner joins *)
             match (o, i) with
             | Props.Req_replicated, _ | _, Props.Req_replicated
               when kind <> Expr.Inner ->
                 None
             | _ ->
                 Some
                   [
                     { Props.rdist = o; rorder = outer_order };
                     { Props.rdist = i; rorder = inner_order };
                   ])
  | Expr.P_nl_join (kind, _) ->
      let broadcast_inner =
        match kind with
        | Expr.Inner | Expr.Left_outer | Expr.Semi | Expr.Anti_semi ->
            [ [ Props.req_dist Props.Req_non_singleton;
                Props.req_dist Props.Req_replicated ] ]
        | Expr.Full_outer -> []
      in
      let broadcast_outer =
        match kind with
        | Expr.Inner ->
            [ [ Props.req_dist Props.Req_replicated;
                Props.req_dist Props.Req_non_singleton ] ]
        | _ -> []
      in
      let singleton =
        [ [ Props.req_dist Props.Req_singleton;
            Props.req_dist Props.Req_singleton ] ]
      in
      broadcast_inner @ broadcast_outer @ singleton
  | Expr.P_hash_agg (phase, keys, _) | Expr.P_stream_agg (phase, keys, _) ->
      let order =
        match op with
        | Expr.P_stream_agg _ -> List.map Sortspec.asc keys
        | _ -> Sortspec.empty
      in
      let dists =
        match (phase, keys) with
        | Expr.Partial, _ -> [ Props.Any_dist ]
        | (Expr.One_phase | Expr.Final), [] -> [ Props.Req_singleton ]
        | (Expr.One_phase | Expr.Final), keys ->
            [ Props.Req_hashed keys; Props.Req_singleton ]
      in
      List.map (fun d -> [ { Props.rdist = d; rorder = order } ]) dists
  | Expr.P_window (partition, worder, _) ->
      (* each partition must be complete on one segment, sorted by the
         partition keys then the window order *)
      let order = List.map Sortspec.asc partition @ worder in
      let dists =
        match partition with
        | [] -> [ Props.Req_singleton ]
        | cols -> [ Props.Req_hashed cols; Props.Req_singleton ]
      in
      List.map (fun d -> [ { Props.rdist = d; rorder = order } ]) dists
  | Expr.P_sort _ -> [ [ any ] ]
  | Expr.P_limit (sort, _, _) ->
      (* a global limit runs on the master over ordered input *)
      [ [ { Props.rdist = Props.Req_singleton; rorder = sort } ] ]
  | Expr.P_motion _ -> [ [ any ] ]
  | Expr.P_cte_producer _ -> [ [ any ] ]
  | Expr.P_sequence _ ->
      (* producer first (any properties), then the body under the incoming
         request *)
      [ [ any; req ] ]
  | Expr.P_set (kind, _) -> (
      match kind with
      | Expr.Union_all -> [ List.map (fun _ -> any) child_out_cols ]
      | Expr.Union_distinct | Expr.Intersect | Expr.Except ->
          let aligned =
            List.map
              (fun cols -> Props.req_dist (Props.Req_hashed cols))
              child_out_cols
          in
          let singleton =
            List.map (fun _ -> Props.req_dist Props.Req_singleton) child_out_cols
          in
          [ aligned; singleton ])
  | Expr.P_partition_selector _ -> [ [ any ] ]

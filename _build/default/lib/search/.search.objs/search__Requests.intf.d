lib/search/requests.mli: Colref Expr Ir Props

lib/search/engine.mli: Colref Cost Expr Ir Memolib Props Stats Table_desc Xform

lib/search/engine.ml: Atomic Cost Expr Float Gpos Ir Lazy List Memolib Option Physical_ops Printf Props Requests Stats Table_desc Xform

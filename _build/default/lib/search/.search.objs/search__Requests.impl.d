lib/search/requests.ml: Colref Expr Ir List Physical_ops Props Sortspec

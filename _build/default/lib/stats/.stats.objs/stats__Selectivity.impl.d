lib/stats/selectivity.ml: Colref Datum Dtype Expr Float Histogram Ir List Relstats Scalar_ops String

lib/stats/histogram.mli: Datum Expr Ir

lib/stats/derive.ml: Colref Datum Expr Float Gpos Histogram Ir List Option Relstats Scalar_ops Selectivity Table_desc

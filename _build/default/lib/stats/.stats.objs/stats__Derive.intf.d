lib/stats/derive.mli: Colref Expr Ir Relstats Table_desc

lib/stats/selectivity.mli: Colref Expr Histogram Ir Relstats

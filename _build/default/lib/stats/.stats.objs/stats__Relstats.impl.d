lib/stats/relstats.ml: Colref Dtype Float Histogram Ir List Printf String

lib/stats/histogram.ml: Array Datum Expr Float Gpos Ir List Printf String

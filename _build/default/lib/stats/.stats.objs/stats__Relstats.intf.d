lib/stats/relstats.mli: Colref Histogram Ir

(** Predicate selectivity estimation over relation statistics.

    Filtering returns *updated* statistics: the constrained column's
    histogram is replaced by its filtered version and the other histograms
    are scaled, so estimates compose as predicates stack up (paper Fig. 5:
    combined statistics reflect the join condition's impact on histograms). *)

open Ir

val default_selectivity : float
val default_eq_selectivity : float
val like_prefix_selectivity : float
val like_contains_selectivity : float

val conjunct_selectivity :
  Relstats.t -> Expr.scalar -> float * (Colref.t * Histogram.t) option
(** Selectivity of one conjunct and, for column-vs-constant comparisons, the
    refined histogram of the constrained column. *)

val apply_pred : Relstats.t -> Expr.scalar -> Relstats.t
(** Apply a (possibly conjunctive) predicate, refining histograms. *)

val selectivity : Relstats.t -> Expr.scalar -> float
(** Overall fraction of rows the predicate keeps, in [0, 1]. *)

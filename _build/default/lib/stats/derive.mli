(** Statistics derivation for logical operators (paper §4.1 step 2).

    Bottom-up: given the statistics of child groups, compute the parent's.
    Base-table statistics come from the metadata accessor through [base];
    CTE-consumer statistics through [cte]. *)

open Ir

val inner_join_stats :
  Relstats.t ->
  Relstats.t ->
  Expr.scalar ->
  outer_cols:Colref.Set.t ->
  inner_cols:Colref.Set.t ->
  Relstats.t
(** Inner equi-join: histogram join on the first column key pair, 1/max(ndv)
    for the rest, residual predicates via selectivity; child histograms are
    scaled by their fan-outs and merged. *)

val join_stats :
  Expr.join_kind ->
  Expr.scalar ->
  Relstats.t ->
  Relstats.t ->
  outer_cols:Colref.Set.t ->
  inner_cols:Colref.Set.t ->
  Relstats.t
(** All join kinds, derived from the inner-join estimate (outer joins bound
    below by the preserved side; semi/anti partition the outer side). *)

val gb_agg_stats : Colref.t list -> Expr.agg list -> Relstats.t -> Relstats.t
(** Group count = min(rows, product of key NDVs); keys get one-row-per-value
    histograms; empty keys = one row. *)

val derive :
  ?segments:float ->
  base:(Table_desc.t -> Relstats.t) ->
  cte:(int -> Relstats.t option) ->
  Expr.logical ->
  children:Relstats.t list ->
  child_schemas:Colref.t list list ->
  Relstats.t
(** Statistics of any logical operator. [segments] bounds Partial
    (per-segment) aggregate outputs. *)

val promise : Expr.logical -> int
(** Statistics promise (paper §4.1): expressions with fewer join conditions
    propagate less estimation error; higher is better. *)

open Ir

(* Equi-height column histograms (paper §4.1: "a statistics object in Orca is
   mainly a collection of column histograms used to derive estimates for
   cardinality and data skew").

   Buckets carry absolute row counts so histograms can be scaled, filtered and
   joined while keeping cardinalities consistent. Bucket bounds are datums;
   interpolation inside a bucket uses the numeric embedding Datum.to_float. *)

type bucket = {
  lo : Datum.t;  (* inclusive *)
  hi : Datum.t;  (* inclusive *)
  rows : float;
  ndv : float;
}

type t = { buckets : bucket list; null_rows : float }

let empty = { buckets = []; null_rows = 0.0 }

let total_rows t =
  List.fold_left (fun acc b -> acc +. b.rows) t.null_rows t.buckets

let non_null_rows t = total_rows t -. t.null_rows

let ndv t = List.fold_left (fun acc b -> acc +. b.ndv) 0.0 t.buckets

let null_fraction t =
  let total = total_rows t in
  if total <= 0.0 then 0.0 else t.null_rows /. total

let is_empty t = t.buckets = [] && t.null_rows = 0.0

(* Data skew: ratio of the heaviest bucket to the mean bucket weight. Used by
   the cost model to penalize redistribution on skewed columns. *)
let skew t =
  match t.buckets with
  | [] -> 1.0
  | bs ->
      let n = float_of_int (List.length bs) in
      let total = List.fold_left (fun acc b -> acc +. b.rows) 0.0 bs in
      if total <= 0.0 then 1.0
      else
        let max_rows = List.fold_left (fun m b -> Float.max m b.rows) 0.0 bs in
        max_rows /. (total /. n)

(* Build an equi-height histogram from concrete values. *)
let build ?(nbuckets = 32) (values : Datum.t list) : t =
  let nulls, non_null = List.partition Datum.is_null values in
  let null_rows = float_of_int (List.length nulls) in
  let sorted = List.sort Datum.compare non_null in
  let n = List.length sorted in
  if n = 0 then { buckets = []; null_rows }
  else
    let arr = Array.of_list sorted in
    let per_bucket = max 1 (n / nbuckets) in
    let buckets = ref [] in
    let i = ref 0 in
    while !i < n do
      let start = !i in
      let stop0 = min (n - 1) (start + per_bucket - 1) in
      (* extend the bucket so equal values never straddle a boundary *)
      let stop = ref stop0 in
      while !stop < n - 1 && Datum.equal arr.(!stop) arr.(!stop + 1) do
        incr stop
      done;
      let slice_len = !stop - start + 1 in
      let distinct = ref 1 in
      for k = start + 1 to !stop do
        if not (Datum.equal arr.(k) arr.(k - 1)) then incr distinct
      done;
      buckets :=
        {
          lo = arr.(start);
          hi = arr.(!stop);
          rows = float_of_int slice_len;
          ndv = float_of_int !distinct;
        }
        :: !buckets;
      i := !stop + 1
    done;
    { buckets = List.rev !buckets; null_rows }

let scale t factor =
  if factor < 0.0 then Gpos.Gpos_error.internal "Histogram.scale: negative factor";
  {
    buckets =
      List.map
        (fun b ->
          { b with rows = b.rows *. factor; ndv = Float.min b.ndv (b.rows *. factor) })
        t.buckets;
    null_rows = t.null_rows *. factor;
  }

let bucket_width b =
  let w = Datum.to_float b.hi -. Datum.to_float b.lo in
  Float.max w 0.0

(* Fraction of bucket [b] with value < v (or <= v when [inclusive]). *)
let bucket_fraction_below b v ~inclusive =
  let lo = Datum.to_float b.lo and hi = Datum.to_float b.hi in
  let x = Datum.to_float v in
  if x < lo then 0.0
  else if x > hi then 1.0
  else if hi <= lo then if inclusive then 1.0 else 0.0
  else
    let frac = (x -. lo) /. (hi -. lo) in
    if inclusive then Float.min 1.0 (frac +. (1.0 /. Float.max 1.0 b.ndv))
    else frac

(* Rows in bucket equal to [v], assuming uniform spread over distinct values. *)
let bucket_eq_rows b v =
  if Datum.compare v b.lo < 0 || Datum.compare v b.hi > 0 then 0.0
  else b.rows /. Float.max 1.0 b.ndv

(* Filter the histogram with [col cmp const]; returns the filtered histogram
   (null rows never pass a comparison). *)
let select_cmp t (op : Expr.cmp) (v : Datum.t) : t =
  if Datum.is_null v then { buckets = []; null_rows = 0.0 }
  else
    let keep b =
      match op with
      | Expr.Eq ->
          let rows = bucket_eq_rows b v in
          if rows > 0.0 then Some { lo = v; hi = v; rows; ndv = 1.0 } else None
      | Expr.Neq ->
          let eq = bucket_eq_rows b v in
          let rows = Float.max 0.0 (b.rows -. eq) in
          if rows > 0.0 then
            Some { b with rows; ndv = Float.max 1.0 (b.ndv -. 1.0) }
          else None
      | Expr.Lt | Expr.Le ->
          let frac = bucket_fraction_below b v ~inclusive:(op = Expr.Le) in
          let rows = b.rows *. frac in
          if rows > 0.0 then
            Some
              {
                b with
                hi = (if Datum.compare b.hi v > 0 then v else b.hi);
                rows;
                ndv = Float.max 1.0 (b.ndv *. frac);
              }
          else None
      | Expr.Gt | Expr.Ge ->
          let frac =
            1.0 -. bucket_fraction_below b v ~inclusive:(op = Expr.Gt)
          in
          let rows = b.rows *. frac in
          if rows > 0.0 then
            Some
              {
                b with
                lo = (if Datum.compare b.lo v < 0 then v else b.lo);
                rows;
                ndv = Float.max 1.0 (b.ndv *. frac);
              }
          else None
    in
    { buckets = List.filter_map keep t.buckets; null_rows = 0.0 }

let selectivity_cmp t op v =
  let total = total_rows t in
  if total <= 0.0 then 1.0
  else
    let kept = total_rows (select_cmp t op v) in
    Float.min 1.0 (Float.max 0.0 (kept /. total))

(* Split buckets of both histograms on each other's boundaries so that the
   resulting bucket lists cover identical ranges where they overlap. *)
let split_on_boundaries (t : t) (boundaries : Datum.t list) : bucket list =
  let split_bucket b =
    let cuts =
      boundaries
      |> List.filter (fun v ->
             Datum.compare v b.lo > 0 && Datum.compare v b.hi < 0)
      |> List.sort_uniq Datum.compare
    in
    match cuts with
    | [] -> [ b ]
    | cuts ->
        let pieces = ref [] in
        let current_lo = ref b.lo in
        let width_total = Float.max (bucket_width b) 1e-9 in
        List.iter
          (fun cut ->
            let w =
              (Datum.to_float cut -. Datum.to_float !current_lo) /. width_total
            in
            let w = Float.max 0.0 (Float.min 1.0 w) in
            pieces :=
              {
                lo = !current_lo;
                hi = cut;
                rows = b.rows *. w;
                ndv = Float.max 1.0 (b.ndv *. w);
              }
              :: !pieces;
            current_lo := cut)
          cuts;
        let w =
          (Datum.to_float b.hi -. Datum.to_float !current_lo) /. width_total
        in
        let w = Float.max 0.0 (Float.min 1.0 w) in
        pieces :=
          {
            lo = !current_lo;
            hi = b.hi;
            rows = b.rows *. w;
            ndv = Float.max 1.0 (b.ndv *. w);
          }
          :: !pieces;
        List.rev !pieces
  in
  List.concat_map split_bucket t.buckets

let overlaps a b = Datum.compare a.lo b.hi <= 0 && Datum.compare b.lo a.hi <= 0

(* Equi-join of two column histograms. Returns (join row count, histogram of
   the join key in the result). Aligned-fragment containment estimate:
   rows = r1 * r2 / max(ndv1, ndv2) per overlapping fragment. *)
let join_eq (a : t) (b : t) : float * t =
  let bounds h =
    List.concat_map (fun bk -> [ bk.lo; bk.hi ]) h.buckets
  in
  let a_buckets = split_on_boundaries a (bounds b) in
  let b_buckets = split_on_boundaries b (bounds a) in
  let out = ref [] in
  let total = ref 0.0 in
  List.iter
    (fun ba ->
      List.iter
        (fun bb ->
          if overlaps ba bb then begin
            (* fragment intersection *)
            let lo = if Datum.compare ba.lo bb.lo >= 0 then ba.lo else bb.lo in
            let hi = if Datum.compare ba.hi bb.hi <= 0 then ba.hi else bb.hi in
            let frac bucket =
              let bw = bucket_width bucket in
              if bw <= 0.0 then 1.0
              else
                let w = Datum.to_float hi -. Datum.to_float lo in
                Float.max 0.0 (Float.min 1.0 (w /. bw))
            in
            let ra = ba.rows *. frac ba and rb = bb.rows *. frac bb in
            let na = Float.max 1.0 (ba.ndv *. frac ba)
            and nb = Float.max 1.0 (bb.ndv *. frac bb) in
            let rows = ra *. rb /. Float.max na nb in
            if rows > 0.0 then begin
              total := !total +. rows;
              out := { lo; hi; rows; ndv = Float.min na nb } :: !out
            end
          end)
        b_buckets)
    a_buckets;
  (!total, { buckets = List.rev !out; null_rows = 0.0 })

(* Merge two histograms of the same column domain (UNION ALL). *)
let union_all (a : t) (b : t) : t =
  {
    buckets = a.buckets @ b.buckets;
    null_rows = a.null_rows +. b.null_rows;
  }

let min_value t = match t.buckets with [] -> None | b :: _ -> Some b.lo

let max_value t =
  match List.rev t.buckets with [] -> None | b :: _ -> Some b.hi

let to_string t =
  let bs =
    List.map
      (fun b ->
        Printf.sprintf "[%s..%s r=%.1f d=%.1f]" (Datum.to_string b.lo)
          (Datum.to_string b.hi) b.rows b.ndv)
      t.buckets
  in
  Printf.sprintf "hist(nulls=%.1f, %s)" t.null_rows (String.concat " " bs)

(* Singleton histogram describing a column with [rows] rows uniformly spread
   over [ndv] values in [lo, hi]; used for defaults and synthetic metadata. *)
let uniform ~lo ~hi ~rows ~ndv =
  if rows <= 0.0 then empty
  else { buckets = [ { lo; hi; rows; ndv = Float.max 1.0 ndv } ]; null_rows = 0.0 }

open Ir

(* Statistics derivation for logical operators (paper §4.1 step 2).

   Derivation is bottom-up: given the statistics objects of child groups,
   compute the parent group's statistics. Base-table statistics come from the
   metadata accessor through the [base] callback; CTE consumer statistics come
   from the [cte] callback (the anchor records its producer's statistics). *)

let add_distinct_hist stats col =
  (* histogram of a column after duplicate elimination: one row per value *)
  match Relstats.col_hist stats col with
  | Some h ->
      let buckets =
        List.map
          (fun (b : Histogram.bucket) -> { b with Histogram.rows = b.Histogram.ndv })
          h.Histogram.buckets
      in
      Some { Histogram.buckets; null_rows = Float.min 1.0 h.Histogram.null_rows }
  | None -> None

let default_key_sel = 0.1

(* Cardinality and column statistics of an inner equi-join. *)
let inner_join_stats (outer : Relstats.t) (inner : Relstats.t)
    (cond : Expr.scalar) ~outer_cols ~inner_cols : Relstats.t =
  let keys, residual =
    Scalar_ops.extract_equi_keys ~outer_cols ~inner_cols cond
  in
  let r1 = Float.max 1.0 (Relstats.rows outer)
  and r2 = Float.max 1.0 (Relstats.rows inner) in
  let cross = r1 *. r2 in
  (* first column-to-column key uses histogram join; remaining keys apply
     1/max(ndv) under independence *)
  let col_keys =
    List.filter_map
      (fun (a, b) ->
        match (a, b) with Expr.Col x, Expr.Col y -> Some (x, y) | _ -> None)
      keys
  in
  let join_rows, key_hist =
    match col_keys with
    | (x, y) :: _ -> (
        match (Relstats.col_hist outer x, Relstats.col_hist inner y) with
        | Some hx, Some hy
          when (not (Histogram.is_empty hx)) && not (Histogram.is_empty hy) ->
            let jc, h = Histogram.join_eq hx hy in
            (jc, Some (x, y, h))
        | _ ->
            let sel =
              1.0
              /. Float.max 1.0
                   (Float.max (Relstats.col_ndv outer x)
                      (Relstats.col_ndv inner y))
            in
            (cross *. sel, None))
    | [] ->
        (* no column equi-keys: treat all keys as generic equalities *)
        if keys = [] then (cross, None)
        else (cross *. (default_key_sel *. float_of_int 1), None)
  in
  let join_rows =
    (* each extra key pair multiplies by 1/max(ndv) *)
    let extra = match col_keys with [] -> [] | _ :: rest -> rest in
    List.fold_left
      (fun rows (x, y) ->
        rows
        /. Float.max 1.0
             (Float.max (Relstats.col_ndv outer x) (Relstats.col_ndv inner y)))
      join_rows extra
  in
  let join_rows = Float.max 0.0 (Float.min cross join_rows) in
  (* scale child histograms by their fan-outs and merge *)
  let outer_scaled = Relstats.scale outer (join_rows /. r1) in
  let inner_scaled = Relstats.scale inner (join_rows /. r2) in
  let merged =
    Relstats.set_rows (Relstats.merge_cols outer_scaled inner_scaled) join_rows
  in
  let merged =
    match key_hist with
    | Some (x, y, h) ->
        let m = Relstats.set_col merged x h in
        Relstats.set_col m y h
    | None -> merged
  in
  (* residual (non-equi) predicates *)
  List.fold_left Selectivity.apply_pred merged residual

let join_stats (kind : Expr.join_kind) (cond : Expr.scalar)
    (outer : Relstats.t) (inner : Relstats.t) ~outer_cols ~inner_cols :
    Relstats.t =
  let ij = inner_join_stats outer inner cond ~outer_cols ~inner_cols in
  let r_out = Relstats.rows outer in
  match kind with
  | Expr.Inner -> ij
  | Expr.Left_outer ->
      Relstats.set_rows ij (Float.max (Relstats.rows ij) r_out)
  | Expr.Full_outer ->
      Relstats.set_rows ij
        (Float.max (Relstats.rows ij)
           (Float.max r_out (Relstats.rows inner)))
  | Expr.Semi ->
      let matched = Float.min r_out (Relstats.rows ij) in
      Relstats.set_rows
        (Relstats.scale outer (matched /. Float.max 1.0 r_out))
        matched
  | Expr.Anti_semi ->
      let matched = Float.min r_out (Relstats.rows ij) in
      let remaining = Float.max 1.0 (r_out -. matched) in
      Relstats.set_rows
        (Relstats.scale outer (remaining /. Float.max 1.0 r_out))
        remaining

let gb_agg_stats (keys : Colref.t list) (aggs : Expr.agg list)
    (child : Relstats.t) : Relstats.t =
  let rows = Float.max 1.0 (Relstats.rows child) in
  let groups =
    match keys with
    | [] -> 1.0
    | keys ->
        let prod =
          List.fold_left
            (fun acc k -> acc *. Relstats.col_ndv child k)
            1.0 keys
        in
        Float.min rows prod
  in
  let base = Relstats.set_rows Relstats.empty groups in
  let with_keys =
    List.fold_left
      (fun acc k ->
        match add_distinct_hist child k with
        | Some h -> Relstats.set_col acc k h
        | None -> acc)
      base keys
  in
  (* aggregate outputs: give numeric outputs a broad default histogram *)
  List.fold_left
    (fun acc (a : Expr.agg) ->
      let h =
        Histogram.uniform ~lo:(Datum.Int 0)
          ~hi:(Datum.Int 1_000_000) ~rows:groups ~ndv:groups
      in
      Relstats.set_col acc a.Expr.agg_out h)
    with_keys aggs

(* Map statistics of child columns onto set-operation output columns
   (positional correspondence). *)
let set_op_stats (kind : Expr.set_kind) (out_cols : Colref.t list)
    (children : Relstats.t list) (child_schemas : Colref.t list list) :
    Relstats.t =
  let remapped =
    List.map2
      (fun (st : Relstats.t) schema ->
        List.map2
          (fun out_c child_c ->
            (out_c, Relstats.col_hist st child_c))
          out_cols schema
        |> List.fold_left
             (fun acc (c, h) ->
               match h with Some h -> Relstats.set_col acc c h | None -> acc)
             (Relstats.set_rows Relstats.empty (Relstats.rows st)))
      children child_schemas
  in
  match (kind, remapped) with
  | Expr.Union_all, sts ->
      let rows = List.fold_left (fun a s -> a +. Relstats.rows s) 0.0 sts in
      let merged =
        List.fold_left
          (fun acc s -> Relstats.merge_cols acc s)
          (Relstats.set_rows Relstats.empty rows)
          sts
      in
      Relstats.set_rows merged rows
  | Expr.Union_distinct, sts ->
      let rows = List.fold_left (fun a s -> a +. Relstats.rows s) 0.0 sts in
      let ndv_cap =
        List.fold_left
          (fun acc c ->
            acc
            *. List.fold_left
                 (fun m s -> Float.max m (Relstats.col_ndv s c))
                 1.0 sts)
          1.0 out_cols
      in
      Relstats.set_rows (List.hd sts) (Float.min rows ndv_cap)
  | Expr.Intersect, s1 :: s2 :: _ ->
      Relstats.set_rows s1 (Float.min (Relstats.rows s1) (Relstats.rows s2) *. 0.5)
  | Expr.Except, s1 :: s2 :: _ ->
      Relstats.set_rows s1
        (Float.max 1.0 (Relstats.rows s1 -. (0.5 *. Relstats.rows s2)))
  | _, [] | _, [ _ ] -> Relstats.empty

(* Statistics of a logical operator given children statistics. [segments]
   bounds the output of Partial (per-segment) aggregates: each segment emits
   at most one row per group. *)
let derive ?(segments = 16.0) ~(base : Table_desc.t -> Relstats.t)
    ~(cte : int -> Relstats.t option) (op : Expr.logical)
    ~(children : Relstats.t list) ~(child_schemas : Colref.t list list) :
    Relstats.t =
  let child n =
    match List.nth_opt children n with
    | Some s -> s
    | None -> Gpos.Gpos_error.internal "stats derive: missing child %d" n
  in
  let schema n =
    match List.nth_opt child_schemas n with
    | Some s -> s
    | None -> Gpos.Gpos_error.internal "stats derive: missing child schema %d" n
  in
  match op with
  | Expr.L_get td -> base td
  | Expr.L_select pred -> Selectivity.apply_pred (child 0) pred
  | Expr.L_project projs ->
      let c = child 0 in
      let rows = Relstats.rows c in
      List.fold_left
        (fun acc (p : Expr.proj) ->
          match p.Expr.proj_expr with
          | Expr.Col src -> (
              match Relstats.col_hist c src with
              | Some h -> Relstats.set_col acc p.Expr.proj_out h
              | None -> acc)
          | _ -> acc)
        (Relstats.set_rows Relstats.empty rows)
        projs
  | Expr.L_join (kind, cond) ->
      join_stats kind cond (child 0) (child 1)
        ~outer_cols:(Colref.Set.of_list (schema 0))
        ~inner_cols:(Colref.Set.of_list (schema 1))
  | Expr.L_gb_agg (phase, keys, aggs) -> (
      let one_phase = gb_agg_stats keys aggs (child 0) in
      match phase with
      | Expr.One_phase | Expr.Final -> one_phase
      | Expr.Partial ->
          (* per-segment aggregation: up to [segments] rows per group *)
          let rows =
            Float.min (Relstats.rows (child 0))
              (Relstats.rows one_phase *. segments)
          in
          Relstats.set_rows one_phase rows)
  | Expr.L_window (_, _, wfuncs) ->
      (* rows pass through; function outputs get broad defaults *)
      let c = child 0 in
      List.fold_left
        (fun acc (w : Expr.wfunc) ->
          let rows = Relstats.rows c in
          Relstats.set_col acc w.Expr.wf_out
            (Histogram.uniform ~lo:(Datum.Int 0) ~hi:(Datum.Int 1_000_000)
               ~rows ~ndv:(Float.max 1.0 rows)))
        c wfuncs
  | Expr.L_limit (_, offset, count) -> (
      let c = child 0 in
      match count with
      | None -> c
      | Some cnt ->
          let rows =
            Float.max 0.0
              (Float.min (Relstats.rows c -. float_of_int offset)
                 (float_of_int cnt))
          in
          Relstats.set_rows c rows)
  | Expr.L_apply (kind, _) -> (
      let outer = child 0 in
      match kind with
      | Expr.Apply_scalar out_col ->
          (* one scalar value joined to every outer row *)
          let inner = child 1 in
          let with_col =
            match
              List.nth_opt (schema 1) 0
              |> Option.map (Relstats.col_hist inner)
            with
            | Some (Some h) -> Relstats.set_col outer out_col h
            | _ -> outer
          in
          with_col
      | Expr.Apply_exists | Expr.Apply_in _ -> Relstats.scale outer 0.5
      | Expr.Apply_not_exists | Expr.Apply_not_in _ -> Relstats.scale outer 0.5)
  | Expr.L_cte_producer _ -> child 0
  | Expr.L_cte_anchor _ -> child 1
  | Expr.L_cte_consumer (id, cols) -> (
      match cte id with
      | Some producer_stats ->
          (* remap is identity: consumers reuse producer column ids *)
          ignore cols;
          producer_stats
      | None ->
          Relstats.set_rows Relstats.empty 1000.0)
  | Expr.L_set (kind, cols) -> set_op_stats kind cols children child_schemas
  | Expr.L_const_table (cols, rows) ->
      let n = float_of_int (List.length rows) in
      let stats = Relstats.set_rows Relstats.empty n in
      List.fold_left
        (fun acc c ->
          let idx = Colref.position_exn cols c in
          let values = List.map (fun r -> List.nth r idx) rows in
          Relstats.set_col acc c (Histogram.build values))
        stats cols

(* "Promise" of a group expression for statistics derivation (paper §4.1):
   expressions with fewer join conditions propagate less estimation error.
   Higher promise = preferred. *)
let promise (op : Expr.logical) : int =
  match op with
  | Expr.L_join (_, cond) -> -List.length (Scalar_ops.conjuncts cond)
  | Expr.L_apply _ -> -10
  | _ -> 0

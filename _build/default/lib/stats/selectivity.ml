open Ir

(* Predicate selectivity estimation over relation statistics. Filtering
   returns *updated* statistics: the constrained column's histogram is
   replaced by its filtered version and all other histograms are scaled, so
   estimates compose as predicates stack up (paper Fig. 5: combined statistics
   reflect the impact of the join condition on column histograms). *)

let default_selectivity = 0.25
let default_eq_selectivity = 0.05
let like_prefix_selectivity = 0.08
let like_contains_selectivity = 0.15

(* Selectivity and optional per-column histogram refinement of one conjunct. *)
let rec conjunct_selectivity (stats : Relstats.t) (pred : Expr.scalar) :
    float * (Colref.t * Histogram.t) option =
  match pred with
  | Expr.Const (Datum.Bool true) -> (1.0, None)
  | Expr.Const (Datum.Bool false) -> (0.0, None)
  | Expr.Cmp (op, Expr.Col c, Expr.Const v)
  | Expr.Cmp (op, Expr.Const v, Expr.Col c) ->
      let op =
        match pred with
        | Expr.Cmp (_, Expr.Const _, Expr.Col _) -> Expr.flip_cmp op
        | _ -> op
      in
      (match Relstats.col_hist stats c with
      | Some h when not (Histogram.is_empty h) ->
          let filtered = Histogram.select_cmp h op v in
          let total = Histogram.total_rows h in
          let sel =
            if total <= 0.0 then 1.0
            else Histogram.total_rows filtered /. total
          in
          (Float.min 1.0 sel, Some (c, filtered))
      | _ ->
          let sel =
            match op with
            | Expr.Eq -> 1.0 /. Relstats.col_ndv stats c
            | Expr.Neq -> 1.0 -. (1.0 /. Relstats.col_ndv stats c)
            | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge -> 1.0 /. 3.0
          in
          (sel, None))
  | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
      let na = Relstats.col_ndv stats a and nb = Relstats.col_ndv stats b in
      (1.0 /. Float.max 1.0 (Float.max na nb), None)
  | Expr.Cmp (_, Expr.Col _, Expr.Col _) -> (1.0 /. 3.0, None)
  | Expr.Cmp (op, Expr.Cast (e, _), rhs) ->
      conjunct_selectivity stats (Expr.Cmp (op, e, rhs))
  | Expr.Cmp (op, lhs, Expr.Cast (e, _)) ->
      conjunct_selectivity stats (Expr.Cmp (op, lhs, e))
  | Expr.Cmp _ -> (default_selectivity, None)
  | Expr.In_list (Expr.Col c, ds) -> (
      match Relstats.col_hist stats c with
      | Some h when not (Histogram.is_empty h) ->
          let total = Histogram.total_rows h in
          let sel =
            List.fold_left
              (fun acc v ->
                acc +. Histogram.selectivity_cmp h Expr.Eq v)
              0.0 ds
          in
          ignore total;
          (Float.min 1.0 sel, None)
      | _ ->
          let per = 1.0 /. Relstats.col_ndv stats c in
          (Float.min 1.0 (per *. float_of_int (List.length ds)), None))
  | Expr.In_list (_, ds) ->
      ( Float.min 1.0
          (default_eq_selectivity *. float_of_int (List.length ds)),
        None )
  | Expr.Like (_, pat) ->
      if String.length pat > 0 && pat.[0] <> '%' then
        (like_prefix_selectivity, None)
      else (like_contains_selectivity, None)
  | Expr.Is_null (Expr.Col c) -> (Relstats.col_null_frac stats c, None)
  | Expr.Is_null _ -> (0.01, None)
  | Expr.Not (Expr.Is_null (Expr.Col c)) ->
      (1.0 -. Relstats.col_null_frac stats c, None)
  | Expr.Not p ->
      let sel, _ = conjunct_selectivity stats p in
      (Float.max 0.0 (1.0 -. sel), None)
  | Expr.Or ps ->
      (* inclusion-exclusion under independence *)
      let miss =
        List.fold_left
          (fun acc p ->
            let sel, _ = conjunct_selectivity stats p in
            acc *. (1.0 -. sel))
          1.0 ps
      in
      (1.0 -. miss, None)
  | Expr.And ps ->
      let sel =
        List.fold_left
          (fun acc p ->
            let s, _ = conjunct_selectivity stats p in
            acc *. s)
          1.0 ps
      in
      (sel, None)
  | Expr.Col c when Colref.ty c = Dtype.Bool -> (0.5, None)
  | Expr.Subplan sp -> (
      match sp.Expr.sp_kind with
      | Expr.Sp_exists | Expr.Sp_in _ -> (0.5, None)
      | Expr.Sp_not_exists | Expr.Sp_not_in _ -> (0.5, None)
      | Expr.Sp_scalar -> (default_selectivity, None))
  | _ -> (default_selectivity, None)

(* Apply a (possibly conjunctive) predicate: returns refined statistics. *)
let apply_pred (stats : Relstats.t) (pred : Expr.scalar) : Relstats.t =
  let conjuncts = Scalar_ops.conjuncts pred in
  List.fold_left
    (fun acc c ->
      let sel, refinement = conjunct_selectivity acc c in
      let sel = Float.min 1.0 (Float.max 0.0 sel) in
      match refinement with
      | Some (col, filtered) ->
          (* scale every other column by sel, then pin the filtered column *)
          let scaled = Relstats.scale acc sel in
          Relstats.set_col scaled col filtered
      | None -> Relstats.scale acc sel)
    stats conjuncts

let selectivity (stats : Relstats.t) (pred : Expr.scalar) : float =
  let before = Relstats.rows stats in
  if before <= 0.0 then 1.0
  else
    let after = Relstats.rows (apply_pred stats pred) in
    Float.min 1.0 (Float.max 0.0 (after /. before))

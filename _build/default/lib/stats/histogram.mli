(** Equi-height column histograms (paper §4.1: statistics objects are
    collections of column histograms used to derive cardinality and data-skew
    estimates).

    Buckets carry absolute row counts, so histograms can be scaled, filtered
    and joined while staying consistent with relation cardinalities. *)

open Ir

type bucket = {
  lo : Datum.t;  (** inclusive lower bound *)
  hi : Datum.t;  (** inclusive upper bound *)
  rows : float;  (** rows falling in the bucket *)
  ndv : float;   (** distinct values in the bucket *)
}

type t = { buckets : bucket list; null_rows : float }

val empty : t

val build : ?nbuckets:int -> Datum.t list -> t
(** Build an equi-height histogram from concrete values (default 32 buckets).
    Equal values never straddle a bucket boundary. *)

val uniform : lo:Datum.t -> hi:Datum.t -> rows:float -> ndv:float -> t
(** A single-bucket histogram describing [rows] rows uniformly spread over
    [ndv] distinct values in [lo, hi]; used for defaults and synthetic
    metadata. *)

val total_rows : t -> float
(** Total rows described, nulls included. *)

val non_null_rows : t -> float
val ndv : t -> float
val null_fraction : t -> float
val is_empty : t -> bool

val skew : t -> float
(** Ratio of the heaviest bucket to the mean bucket weight (>= 1.0). Used by
    the cost model to penalize redistribution on skewed columns. *)

val scale : t -> float -> t
(** Scale all row counts by a selectivity factor (NDVs are capped by the
    scaled rows). Raises on negative factors. *)

val select_cmp : t -> Expr.cmp -> Datum.t -> t
(** Histogram of the rows satisfying [col cmp const]. Null rows never pass a
    comparison; comparing against NULL yields an empty histogram. *)

val selectivity_cmp : t -> Expr.cmp -> Datum.t -> float
(** Fraction of rows satisfying [col cmp const], in [0, 1]. *)

val join_eq : t -> t -> float * t
(** Equi-join of two column histograms: buckets are split on each other's
    boundaries and joined fragment-by-fragment with the containment
    assumption (rows = r1*r2 / max(ndv1, ndv2)). Returns the estimated join
    cardinality and the join key's histogram in the result. *)

val union_all : t -> t -> t
(** Merge two histograms over the same column domain (UNION ALL). *)

val min_value : t -> Datum.t option
val max_value : t -> Datum.t option
val to_string : t -> string

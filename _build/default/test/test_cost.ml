open Ir

(* Tests for the MPP cost model: parallelism accounting, motion trade-offs,
   spill charges, enforcer costs. *)

let model = Cost.Cost_model.with_segments Cost.Cost_model.default 16

let a = Fixtures.col 21 "a"
let b = Fixtures.col 22 "b"

let test_rows_per_segment () =
  let check name dist expected =
    Alcotest.(check (float 0.001)) name expected
      (Cost.Cost_model.rows_per_segment model dist 1600.0)
  in
  check "hashed divides" (Props.D_hashed [ a ]) 100.0;
  check "random divides" Props.D_random 100.0;
  check "singleton is serial" Props.D_singleton 1600.0;
  check "replicated is a full copy" Props.D_replicated 1600.0

let input rows dist =
  Cost.Cost_model.input ~rows ~width:32.0 ~dist ()

let motion_cost m rows =
  Cost.Cost_model.op_cost model (Expr.P_motion m) ~rows_out:rows
    ~width_out:32.0
    ~inputs:[ input rows (Props.D_hashed [ a ]) ]
    ~scan_rows:0.0 ~out_dist:Props.D_random

let test_broadcast_vs_redistribute_crossover () =
  (* the join alternatives trade off broadcasting the inner side against
     redistributing both sides; the winner flips with the inner's size *)
  let redistribute rows = motion_cost (Expr.Redistribute [ Expr.Col a ]) rows in
  let broadcast rows = motion_cost Expr.Broadcast rows in
  let outer = 100_000.0 in
  let plan_broadcast inner = broadcast inner in
  let plan_colocate inner = redistribute outer +. redistribute inner in
  Alcotest.(check bool) "small inner: broadcast wins" true
    (plan_broadcast 100.0 < plan_colocate 100.0);
  Alcotest.(check bool) "large inner: co-location wins" true
    (plan_broadcast 100_000.0 > plan_colocate 100_000.0);
  Alcotest.(check bool) "broadcast is much worse than redistribute at scale"
    true
    (broadcast 100_000.0 > 5.0 *. redistribute 100_000.0)

let test_gather_is_serial () =
  (* gathering pays for every row at the master; redistribute parallelizes *)
  let gather rows = motion_cost Expr.Gather rows in
  let redist rows = motion_cost (Expr.Redistribute [ Expr.Col a ]) rows in
  Alcotest.(check bool) "gather > redistribute at scale" true
    (gather 100_000.0 > redist 100_000.0)

let test_hash_join_prefers_small_build () =
  let cost ~build ~probe =
    Cost.Cost_model.op_cost model
      (Expr.P_hash_join (Expr.Inner, [ (Expr.Col a, Expr.Col b) ], None))
      ~rows_out:1000.0 ~width_out:64.0
      ~inputs:
        [ input probe (Props.D_hashed [ a ]); input build (Props.D_hashed [ b ]) ]
      ~scan_rows:0.0
      ~out_dist:(Props.D_hashed [ a ])
  in
  Alcotest.(check bool) "building on the small side is cheaper" true
    (cost ~build:1000.0 ~probe:100_000.0 < cost ~build:100_000.0 ~probe:1000.0)

let test_spill_charge () =
  let tiny = { model with Cost.Cost_model.mem_per_segment = 1024.0 } in
  let agg_cost m rows =
    Cost.Cost_model.op_cost m
      (Expr.P_hash_agg (Expr.One_phase, [ a ], []))
      ~rows_out:rows ~width_out:64.0
      ~inputs:[ input (rows *. 4.0) (Props.D_hashed [ a ]) ]
      ~scan_rows:0.0
      ~out_dist:(Props.D_hashed [ a ])
  in
  Alcotest.(check bool) "over-budget state costs extra" true
    (agg_cost tiny 100_000.0 > 1.5 *. agg_cost model 100_000.0)

let test_nl_join_quadratic () =
  let cost n =
    Cost.Cost_model.op_cost model
      (Expr.P_nl_join (Expr.Inner, Expr.Cmp (Expr.Lt, Expr.Col a, Expr.Col b)))
      ~rows_out:10.0 ~width_out:64.0
      ~inputs:[ input n Props.D_random; input n Props.D_replicated ]
      ~scan_rows:0.0 ~out_dist:Props.D_random
  in
  Alcotest.(check bool) "10x input ~ 100x cost" true
    (cost 10_000.0 > 50.0 *. cost 1_000.0)

let test_partition_pruned_scan_cheaper () =
  let td =
    Table_desc.make ~part_col:a
      ~parts:
        (List.init 10 (fun p ->
             { Table_desc.part_id = p; lo = Datum.Int (p * 10); hi = Datum.Int ((p + 1) * 10) }))
      ~mdid:"0.5.1.1" ~name:"f" [ a ]
  in
  let cost parts =
    Cost.Cost_model.op_cost model
      (Expr.P_table_scan (td, parts, None))
      ~rows_out:10_000.0 ~width_out:8.0 ~inputs:[] ~scan_rows:100_000.0
      ~out_dist:Props.D_random
  in
  Alcotest.(check bool) "one partition is ~10x cheaper" true
    (cost None > 8.0 *. cost (Some [ 3 ]))

let test_enforcer_cost_consistency () =
  (* the enforcer-cost entry point agrees with the operator costs it wraps *)
  let via_enforcer =
    Cost.Cost_model.enforcer_cost model (Props.E_motion Expr.Gather)
      ~rows:5_000.0 ~width:32.0
      ~dist:(Props.D_hashed [ a ])
      ~skew:1.0
  in
  let direct = motion_cost Expr.Gather 5_000.0 in
  Alcotest.(check (float 0.001)) "gather enforcer = gather motion" direct
    via_enforcer;
  let sort_cost =
    Cost.Cost_model.enforcer_cost model
      (Props.E_sort [ Sortspec.asc a ])
      ~rows:5_000.0 ~width:32.0 ~dist:Props.D_random ~skew:1.0
  in
  Alcotest.(check bool) "sort enforcer positive" true (sort_cost > 0.0)

let test_skew_penalizes_redistribute () =
  let cost skew =
    Cost.Cost_model.enforcer_cost model
      (Props.E_motion (Expr.Redistribute [ Expr.Col a ]))
      ~rows:10_000.0 ~width:32.0 ~dist:Props.D_random ~skew
  in
  Alcotest.(check bool) "skewed destination costs more" true
    (cost 3.0 > 2.0 *. cost 1.0)

let suite =
  [
    Alcotest.test_case "rows per segment" `Quick test_rows_per_segment;
    Alcotest.test_case "broadcast/redistribute crossover" `Quick
      test_broadcast_vs_redistribute_crossover;
    Alcotest.test_case "gather is serial" `Quick test_gather_is_serial;
    Alcotest.test_case "small build side" `Quick test_hash_join_prefers_small_build;
    Alcotest.test_case "spill charge" `Quick test_spill_charge;
    Alcotest.test_case "nl join quadratic" `Quick test_nl_join_quadratic;
    Alcotest.test_case "pruned scan cheaper" `Quick test_partition_pruned_scan_cheaper;
    Alcotest.test_case "enforcer consistency" `Quick test_enforcer_cost_consistency;
    Alcotest.test_case "skew penalty" `Quick test_skew_penalizes_redistribute;
  ]

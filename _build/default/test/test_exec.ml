open Ir

(* Tests for the MPP execution simulator: data placement, motion semantics,
   operator implementations, memory modes, metrics. *)

let mk_cluster ?(nsegs = 4) ?mem_per_seg () = Exec.Cluster.create ~nsegs ?mem_per_seg ()

let rows_of n = List.init n (fun i -> [| Datum.Int i; Datum.Int (i mod 7) |])

let total_rows (segs : Datum.t array list array) =
  Array.fold_left (fun a rows -> a + List.length rows) 0 segs

let test_hash_placement () =
  let c = mk_cluster () in
  Exec.Cluster.load_table c ~name:"t" ~dist:(Exec.Cluster.By_hash [ 0 ]) (rows_of 1000);
  let data = Exec.Cluster.table c "t" in
  Alcotest.(check int) "all rows placed" 1000 (total_rows data.Exec.Cluster.segments);
  (* same key always lands on the same segment *)
  let seg_of v =
    Exec.Cluster.hash_datums [ Datum.Int v ] mod 4
  in
  Array.iteri
    (fun seg rows ->
      List.iter
        (fun r ->
          match r.(0) with
          | Datum.Int v -> Alcotest.(check int) "key home" (seg_of v) seg
          | _ -> ())
        rows)
    data.Exec.Cluster.segments

let test_replicated_placement () =
  let c = mk_cluster () in
  Exec.Cluster.load_table c ~name:"r" ~dist:Exec.Cluster.By_replication (rows_of 10);
  let data = Exec.Cluster.table c "r" in
  Array.iter
    (fun rows -> Alcotest.(check int) "full copy per segment" 10 (List.length rows))
    data.Exec.Cluster.segments

let scan td = Plan_ops.node (Expr.P_table_scan (td, None, None)) [] ~est_rows:0.0 ~cost:0.0

let mk_td c name dist rows =
  let f = Colref.Factory.create ~start:(Hashtbl.hash name mod 1000 * 10) () in
  let a = Colref.Factory.fresh f ~name:"a" ~ty:Dtype.Int in
  let b = Colref.Factory.fresh f ~name:"b" ~ty:Dtype.Int in
  let td_dist, cl_dist =
    match dist with
    | `Hash -> (Table_desc.Dist_hash [ a ], Exec.Cluster.By_hash [ 0 ])
    | `Random -> (Table_desc.Dist_random, Exec.Cluster.By_random)
    | `Replicated -> (Table_desc.Dist_replicated, Exec.Cluster.By_replication)
  in
  Exec.Cluster.load_table c ~name ~dist:cl_dist rows;
  Table_desc.make ~dist:td_dist ~mdid:"0.1.1.1" ~name [ a; b ]

let run_plan c plan = Exec.Executor.run c plan

let test_motion_conservation () =
  let c = mk_cluster () in
  let td = mk_td c "t" `Hash (rows_of 500) in
  let a = List.hd td.Table_desc.cols in
  let base = scan td in
  (* redistribute: same rows, relocated *)
  let redist =
    Plan_ops.node (Expr.P_motion (Expr.Redistribute [ Expr.Col a ])) [ base ]
      ~est_rows:0.0 ~cost:0.0
  in
  let rows, metrics = run_plan c redist in
  Alcotest.(check int) "conserved" 500 (List.length rows);
  Alcotest.(check bool) "rows moved counted" true
    (metrics.Exec.Metrics.rows_moved > 0.0);
  (* gather: everything on the master *)
  let gathered =
    Plan_ops.node (Expr.P_motion Expr.Gather) [ base ] ~est_rows:0.0 ~cost:0.0
  in
  let ctx = Exec.Executor.create_ctx c in
  let segs = Exec.Executor.eval ctx ~params:Colref.Map.empty gathered in
  Alcotest.(check int) "master holds all" 500 (List.length segs.(0));
  Array.iteri
    (fun i rows -> if i > 0 then Alcotest.(check int) "others empty" 0 (List.length rows))
    segs

let test_broadcast_fanout () =
  let c = mk_cluster () in
  let td = mk_td c "t" `Hash (rows_of 100) in
  let plan =
    Plan_ops.node (Expr.P_motion Expr.Broadcast) [ scan td ] ~est_rows:0.0 ~cost:0.0
  in
  let ctx = Exec.Executor.create_ctx c in
  let segs = Exec.Executor.eval ctx ~params:Colref.Map.empty plan in
  Array.iter
    (fun rows -> Alcotest.(check int) "full copy" 100 (List.length rows))
    segs

let test_broadcast_of_replicated_no_duplication () =
  let c = mk_cluster () in
  let td = mk_td c "r" `Replicated (rows_of 50) in
  let plan =
    Plan_ops.node (Expr.P_motion Expr.Gather) [ scan td ] ~est_rows:0.0 ~cost:0.0
  in
  let rows, _ = run_plan c plan in
  (* gathering a replicated table must not multiply rows by nsegs *)
  Alcotest.(check int) "one copy" 50 (List.length rows)

let test_hash_join_kinds () =
  let c = mk_cluster () in
  (* outer: 0..9 twice; inner: evens 0..8 *)
  let outer_rows =
    List.concat_map (fun i -> [ [| Datum.Int i; Datum.Int 0 |] ]) (List.init 10 Fun.id)
  in
  let inner_rows = List.init 5 (fun i -> [| Datum.Int (2 * i); Datum.Int 1 |]) in
  let tdo = mk_td c "o" `Replicated outer_rows in
  let tdi = mk_td c "i" `Replicated inner_rows in
  let oa = List.hd tdo.Table_desc.cols and ia = List.hd tdi.Table_desc.cols in
  let join kind =
    let jp =
      Plan_ops.node
        (Expr.P_hash_join (kind, [ (Expr.Col oa, Expr.Col ia) ], None))
        [ scan tdo; scan tdi ] ~est_rows:0.0 ~cost:0.0
    in
    let ctx = Exec.Executor.create_ctx c in
    let segs = Exec.Executor.eval ctx ~params:Colref.Map.empty jp in
    (* replicated inputs: every segment computes the same result *)
    List.length segs.(0)
  in
  Alcotest.(check int) "inner" 5 (join Expr.Inner);
  Alcotest.(check int) "left outer" 10 (join Expr.Left_outer);
  Alcotest.(check int) "semi" 5 (join Expr.Semi);
  Alcotest.(check int) "anti" 5 (join Expr.Anti_semi);
  Alcotest.(check int) "full outer" 10 (join Expr.Full_outer)

let test_join_null_keys_never_match () =
  let c = mk_cluster ~nsegs:1 () in
  let outer_rows = [ [| Datum.Null; Datum.Int 1 |]; [| Datum.Int 1; Datum.Int 2 |] ] in
  let inner_rows = [ [| Datum.Null; Datum.Int 3 |]; [| Datum.Int 1; Datum.Int 4 |] ] in
  let tdo = mk_td c "o" `Replicated outer_rows in
  let tdi = mk_td c "i" `Replicated inner_rows in
  let oa = List.hd tdo.Table_desc.cols and ia = List.hd tdi.Table_desc.cols in
  let jp =
    Plan_ops.node
      (Expr.P_hash_join (Expr.Inner, [ (Expr.Col oa, Expr.Col ia) ], None))
      [ scan tdo; scan tdi ] ~est_rows:0.0 ~cost:0.0
  in
  let rows, _ = run_plan c jp in
  Alcotest.(check int) "null keys skipped" 1 (List.length rows)

let test_merge_join_matches_hash_join () =
  let c = mk_cluster ~nsegs:1 () in
  let rng = Gpos.Prng.create 99 in
  let rows1 =
    List.init 200 (fun _ -> [| Datum.Int (Gpos.Prng.int rng 30); Datum.Int 0 |])
  in
  let rows2 =
    List.init 150 (fun _ -> [| Datum.Int (Gpos.Prng.int rng 30); Datum.Int 1 |])
  in
  let tdo = mk_td c "mo" `Replicated rows1 in
  let tdi = mk_td c "mi" `Replicated rows2 in
  let oa = List.hd tdo.Table_desc.cols and ia = List.hd tdi.Table_desc.cols in
  let sorted td col =
    Plan_ops.node (Expr.P_sort [ Sortspec.asc col ]) [ scan td ] ~est_rows:0.0 ~cost:0.0
  in
  let mj =
    Plan_ops.node
      (Expr.P_merge_join (Expr.Inner, [ (oa, ia) ], None))
      [ sorted tdo oa; sorted tdi ia ] ~est_rows:0.0 ~cost:0.0
  in
  let hj =
    Plan_ops.node
      (Expr.P_hash_join (Expr.Inner, [ (Expr.Col oa, Expr.Col ia) ], None))
      [ scan tdo; scan tdi ] ~est_rows:0.0 ~cost:0.0
  in
  let mrows, _ = run_plan c mj and hrows, _ = run_plan c hj in
  Alcotest.(check bool) "same bag" true (Fixtures.rows_equal mrows hrows)

let test_stream_agg_matches_hash_agg () =
  let c = mk_cluster ~nsegs:1 () in
  let rng = Gpos.Prng.create 5 in
  let rows =
    List.init 300 (fun _ ->
        [| Datum.Int (Gpos.Prng.int rng 12); Datum.Int (Gpos.Prng.int rng 100) |])
  in
  let td = mk_td c "ag" `Replicated rows in
  let a = List.hd td.Table_desc.cols and b = List.nth td.Table_desc.cols 1 in
  let f = Colref.Factory.create ~start:500 () in
  let mk_aggs () =
    [
      { Expr.agg_kind = Expr.Count_star; agg_arg = None; agg_distinct = false;
        agg_out = Colref.Factory.fresh f ~name:"cnt" ~ty:Dtype.Int };
      { Expr.agg_kind = Expr.Sum; agg_arg = Some (Expr.Col b); agg_distinct = false;
        agg_out = Colref.Factory.fresh f ~name:"s" ~ty:Dtype.Int };
      { Expr.agg_kind = Expr.Min; agg_arg = Some (Expr.Col b); agg_distinct = false;
        agg_out = Colref.Factory.fresh f ~name:"mn" ~ty:Dtype.Int };
    ]
  in
  let ha =
    Plan_ops.node (Expr.P_hash_agg (Expr.One_phase, [ a ], mk_aggs ()))
      [ scan td ] ~est_rows:0.0 ~cost:0.0
  in
  let sa =
    Plan_ops.node (Expr.P_stream_agg (Expr.One_phase, [ a ], mk_aggs ()))
      [ Plan_ops.node (Expr.P_sort [ Sortspec.asc a ]) [ scan td ] ~est_rows:0.0 ~cost:0.0 ]
      ~est_rows:0.0 ~cost:0.0
  in
  let hrows, _ = run_plan c ha and srows, _ = run_plan c sa in
  (* same groups/aggregates modulo output colref ids: compare value strings *)
  let strip rows = List.map (fun r -> Array.to_list r |> List.map Datum.to_string) rows in
  Alcotest.(check bool) "hash = stream" true
    (List.sort compare (strip hrows) = List.sort compare (strip srows))

let test_oom_mode () =
  let tiny = mk_cluster ~mem_per_seg:100.0 () in
  let td = mk_td tiny "big" `Hash (rows_of 2000) in
  let a = List.hd td.Table_desc.cols in
  let join =
    Plan_ops.node
      (Expr.P_hash_join (Expr.Inner, [ (Expr.Col a, Expr.Col a) ], None))
      [ scan td; scan td ] ~est_rows:0.0 ~cost:0.0
  in
  (* no-spill mode dies *)
  Alcotest.(check bool) "OOM raised" true
    (try
       ignore (Exec.Executor.run ~mode:Exec.Executor.Fail_on_oom tiny join);
       false
     with Gpos.Gpos_error.Error (Gpos.Gpos_error.Out_of_memory, _) -> true);
  (* spill mode completes and records spill bytes *)
  let _, metrics = Exec.Executor.run ~mode:Exec.Executor.Spill_to_disk tiny join in
  Alcotest.(check bool) "spilled" true (metrics.Exec.Metrics.spill_bytes > 0.0)

let test_partition_pruning_scan () =
  let c = mk_cluster () in
  let f = Colref.Factory.create ~start:900 () in
  let d = Colref.Factory.fresh f ~name:"d" ~ty:Dtype.Int in
  let parts =
    List.init 4 (fun p ->
        { Table_desc.part_id = p; lo = Datum.Int (p * 25); hi = Datum.Int ((p + 1) * 25) })
  in
  let rows = List.init 100 (fun i -> [| Datum.Int i |]) in
  Exec.Cluster.load_table c ~name:"pt" ~dist:Exec.Cluster.By_random rows;
  let td = Table_desc.make ~part_col:d ~parts ~mdid:"0.7.1.1" ~name:"pt" [ d ] in
  let pruned =
    Plan_ops.node (Expr.P_table_scan (td, Some [ 1 ], None)) [] ~est_rows:0.0 ~cost:0.0
  in
  let rows', metrics = run_plan c pruned in
  Alcotest.(check int) "one partition's rows" 25 (List.length rows');
  Alcotest.(check bool) "scan metric reflects pruning" true
    (metrics.Exec.Metrics.rows_scanned <= 26.0)

let test_dynamic_partition_elimination () =
  let c = mk_cluster () in
  let f = Colref.Factory.create ~start:700 () in
  let d = Colref.Factory.fresh f ~name:"d" ~ty:Dtype.Int in
  let v = Colref.Factory.fresh f ~name:"v" ~ty:Dtype.Int in
  let k = Colref.Factory.fresh f ~name:"k" ~ty:Dtype.Int in
  let parts =
    List.init 5 (fun p ->
        { Table_desc.part_id = p; lo = Datum.Int (p * 20); hi = Datum.Int ((p + 1) * 20) })
  in
  let fact_rows = List.init 100 (fun i -> [| Datum.Int i; Datum.Int (i * 3) |]) in
  Exec.Cluster.load_table c ~name:"fact_dpe" ~dist:(Exec.Cluster.By_hash [ 0 ]) fact_rows;
  (* dim holds keys only from partition 2's range *)
  let dim_rows = List.init 10 (fun i -> [| Datum.Int (40 + i) |]) in
  Exec.Cluster.load_table c ~name:"dim_dpe" ~dist:Exec.Cluster.By_replication dim_rows;
  let fact_td =
    Table_desc.make ~part_col:d ~parts ~mdid:"0.71.1.1" ~name:"fact_dpe" [ d; v ]
  in
  let dim_td =
    Table_desc.make ~dist:Table_desc.Dist_replicated ~mdid:"0.72.1.1"
      ~name:"dim_dpe" [ k ]
  in
  let join =
    Plan_ops.node
      (Expr.P_hash_join (Expr.Inner, [ (Expr.Col d, Expr.Col k) ], None))
      [ scan fact_td; scan dim_td ] ~est_rows:0.0 ~cost:0.0
  in
  (* with DPE: only partition 2 is scanned *)
  let rows, metrics = Exec.Executor.run ~dpe:true c join in
  Alcotest.(check int) "ten matches" 10 (List.length rows);
  Alcotest.(check int) "four partitions pruned at run time" 4
    metrics.Exec.Metrics.partitions_pruned_dynamically;
  Alcotest.(check bool)
    (Printf.sprintf "scan restricted (%.0f rows)" metrics.Exec.Metrics.rows_scanned)
    true
    (metrics.Exec.Metrics.rows_scanned <= 65.0);
  (* without DPE: same results, full scan *)
  let rows2, metrics2 = Exec.Executor.run ~dpe:false c join in
  Alcotest.(check bool) "same results" true (Fixtures.rows_equal rows rows2);
  Alcotest.(check bool) "full scan without DPE" true
    (metrics2.Exec.Metrics.rows_scanned >= 135.0);
  (* left outer joins must not prune (unmatched probe rows survive) *)
  let left =
    Plan_ops.node
      (Expr.P_hash_join (Expr.Left_outer, [ (Expr.Col d, Expr.Col k) ], None))
      [ scan fact_td; scan dim_td ] ~est_rows:0.0 ~cost:0.0
  in
  let lrows, lmetrics = Exec.Executor.run ~dpe:true c left in
  Alcotest.(check int) "outer preserves all fact rows" 100 (List.length lrows);
  Alcotest.(check int) "no pruning on outer join" 0
    lmetrics.Exec.Metrics.partitions_pruned_dynamically

let test_limit_and_sort () =
  let c = mk_cluster () in
  let td = mk_td c "ls" `Hash (rows_of 100) in
  let a = List.hd td.Table_desc.cols in
  let plan =
    Plan_ops.node
      (Expr.P_limit ([ Sortspec.desc a ], 2, Some 3))
      [
        Plan_ops.node
          (Expr.P_motion (Expr.Gather_merge [ Sortspec.desc a ]))
          [
            Plan_ops.node (Expr.P_sort [ Sortspec.desc a ]) [ scan td ]
              ~est_rows:0.0 ~cost:0.0;
          ]
          ~est_rows:0.0 ~cost:0.0;
      ]
      ~est_rows:0.0 ~cost:0.0
  in
  let rows, _ = run_plan c plan in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  match List.map (fun r -> r.(0)) rows with
  | [ Datum.Int x; Datum.Int y; Datum.Int z ] ->
      Alcotest.(check (list int)) "offset applied desc" [ 97; 96; 95 ] [ x; y; z ]
  | _ -> Alcotest.fail "unexpected rows"

(* property: redistribute preserves the multiset of rows for random data *)
let prop_redistribute_conserves =
  QCheck.Test.make ~count:40 ~name:"redistribute conserves rows"
    (QCheck.make
       (QCheck.Gen.list_size (QCheck.Gen.int_range 0 200)
          (QCheck.Gen.pair (QCheck.Gen.int_bound 50) (QCheck.Gen.int_bound 50))))
    (fun pairs ->
      let rows = List.map (fun (x, y) -> [| Datum.Int x; Datum.Int y |]) pairs in
      let c = mk_cluster () in
      Exec.Cluster.load_table c ~name:"q" ~dist:Exec.Cluster.By_random rows;
      let f = Colref.Factory.create ~start:333 () in
      let a = Colref.Factory.fresh f ~name:"a" ~ty:Dtype.Int in
      let b = Colref.Factory.fresh f ~name:"b" ~ty:Dtype.Int in
      let td = Table_desc.make ~mdid:"0.3.1.1" ~name:"q" [ a; b ] in
      let plan =
        Plan_ops.node
          (Expr.P_motion (Expr.Redistribute [ Expr.Col b ]))
          [ scan td ] ~est_rows:0.0 ~cost:0.0
      in
      let out, _ = run_plan c plan in
      Fixtures.rows_equal out rows)

let suite =
  [
    Alcotest.test_case "hash placement" `Quick test_hash_placement;
    Alcotest.test_case "replicated placement" `Quick test_replicated_placement;
    Alcotest.test_case "motion conservation" `Quick test_motion_conservation;
    Alcotest.test_case "broadcast fanout" `Quick test_broadcast_fanout;
    Alcotest.test_case "replicated gather" `Quick test_broadcast_of_replicated_no_duplication;
    Alcotest.test_case "hash join kinds" `Quick test_hash_join_kinds;
    Alcotest.test_case "null join keys" `Quick test_join_null_keys_never_match;
    Alcotest.test_case "merge = hash join" `Quick test_merge_join_matches_hash_join;
    Alcotest.test_case "stream = hash agg" `Quick test_stream_agg_matches_hash_agg;
    Alcotest.test_case "oom vs spill" `Quick test_oom_mode;
    Alcotest.test_case "partition pruning" `Quick test_partition_pruning_scan;
    Alcotest.test_case "dynamic partition elimination" `Quick
      test_dynamic_partition_elimination;
    Alcotest.test_case "limit and sort" `Quick test_limit_and_sort;
    QCheck_alcotest.to_alcotest prop_redistribute_conserves;
  ]

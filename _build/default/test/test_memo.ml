open Ir
module Memo = Memolib.Memo
module Mexpr = Memolib.Mexpr

(* Tests for the Memo: copy-in, duplicate detection, group merging, logical
   properties, statistics derivation, contexts. *)

let mk_tables () =
  let f = Colref.Factory.create () in
  let tbl name oid =
    let a = Colref.Factory.fresh f ~name:(name ^ "a") ~ty:Dtype.Int in
    let b = Colref.Factory.fresh f ~name:(name ^ "b") ~ty:Dtype.Int in
    Table_desc.make
      ~dist:(Table_desc.Dist_hash [ a ])
      ~mdid:(Printf.sprintf "0.%d.1.1" oid)
      ~name [ a; b ]
  in
  (f, tbl "t" 1, tbl "s" 2)

let join_cond t1 t2 =
  Expr.Cmp
    ( Expr.Eq,
      Expr.Col (List.hd t1.Table_desc.cols),
      Expr.Col (List.nth t2.Table_desc.cols 1) )

let initial_memo () =
  let _, t1, t2 = mk_tables () in
  let memo = Memo.create () in
  let tree =
    Mexpr.logical
      (Expr.L_join (Expr.Inner, join_cond t1 t2))
      [ Mexpr.logical (Expr.L_get t1) []; Mexpr.logical (Expr.L_get t2) [] ]
  in
  let root = Memo.insert memo tree in
  Memo.set_root memo (Memo.find memo root.Memo.ge_group);
  (memo, t1, t2)

let test_copy_in () =
  let memo, _, _ = initial_memo () in
  (* Figure 4: three groups — two Gets and the join *)
  Alcotest.(check int) "three groups" 3 (Memo.ngroups memo);
  Alcotest.(check int) "three gexprs" 3 (Memo.ngexprs memo);
  let root = Memo.group memo (Memo.root memo) in
  Alcotest.(check int) "root has one expr" 1 (List.length root.Memo.g_exprs);
  Alcotest.(check int) "root outputs 4 cols" 4
    (List.length root.Memo.g_output_cols)

let test_duplicate_detection () =
  let memo, t1, t2 = initial_memo () in
  let before = Memo.ngexprs memo in
  (* inserting the identical tree again must not create anything *)
  let tree =
    Mexpr.logical
      (Expr.L_join (Expr.Inner, join_cond t1 t2))
      [ Mexpr.logical (Expr.L_get t1) []; Mexpr.logical (Expr.L_get t2) [] ]
  in
  ignore (Memo.insert memo tree);
  Alcotest.(check int) "no new gexprs" before (Memo.ngexprs memo);
  Alcotest.(check int) "no new groups" 3 (Memo.ngroups memo)

let test_commuted_insert () =
  let memo, _, _ = initial_memo () in
  let root_group = Memo.group memo (Memo.root memo) in
  let ge = List.hd root_group.Memo.g_exprs in
  (match (ge.Memo.ge_op, ge.Memo.ge_children) with
  | Expr.Logical (Expr.L_join (k, cond)), [ g1; g2 ] ->
      let commuted =
        Mexpr.logical_of_groups (Expr.L_join (k, cond)) [ g2; g1 ]
      in
      let ge2 = Memo.insert memo ~target:(Memo.root memo) commuted in
      Alcotest.(check bool) "new expression" true (ge2.Memo.ge_id <> ge.Memo.ge_id);
      Alcotest.(check int) "same group" (Memo.root memo)
        (Memo.find memo ge2.Memo.ge_group);
      (* inserting the commuted expression again dedups *)
      let ge3 = Memo.insert memo ~target:(Memo.root memo) commuted in
      Alcotest.(check int) "dedup" ge2.Memo.ge_id ge3.Memo.ge_id
  | _ -> Alcotest.fail "unexpected root")

let test_group_merge () =
  let memo, t1, _ = initial_memo () in
  (* create a separate group containing Get(t1) duplicated via a fresh
     single-node insert targeted at a new group; inserting the same Get into
     the root triggers a merge *)
  let select_tree =
    Mexpr.logical
      (Expr.L_select (Expr.Const (Datum.Bool true)))
      [ Mexpr.logical (Expr.L_get t1) [] ]
  in
  let sel = Memo.insert memo select_tree in
  let sel_group = Memo.find memo sel.Memo.ge_group in
  (* now force-insert Get(t1) into the select's group: Get(t1) already lives
     in its own group => the two groups merge *)
  let get_tree = Mexpr.logical (Expr.L_get t1) [] in
  let ge = Memo.insert memo ~target:sel_group get_tree in
  let merged = Memo.find memo ge.Memo.ge_group in
  Alcotest.(check int) "group ids unified" (Memo.find memo sel_group) merged

let test_stats_derivation () =
  let memo, _, _ = initial_memo () in
  let base (td : Table_desc.t) =
    let rows = if td.Table_desc.name = "t" then 100.0 else 1000.0 in
    let a = List.hd td.Table_desc.cols and b = List.nth td.Table_desc.cols 1 in
    Stats.Relstats.make ~rows
      [
        (a, Stats.Histogram.uniform ~lo:(Datum.Int 0) ~hi:(Datum.Int 99) ~rows ~ndv:100.0);
        (b, Stats.Histogram.uniform ~lo:(Datum.Int 0) ~hi:(Datum.Int 99) ~rows ~ndv:100.0);
      ]
  in
  Memolib.Memo_stats.derive_all memo ~base;
  let s = Option.get (Memo.stats memo (Memo.root memo)) in
  let rows = Stats.Relstats.rows s in
  Alcotest.(check bool)
    (Printf.sprintf "join estimate ~1000 (%.0f)" rows)
    true
    (rows > 300.0 && rows < 3000.0);
  (* derivation is memoized *)
  let s2 = Option.get (Memo.stats memo (Memo.root memo)) in
  Alcotest.(check bool) "same object" true (s == s2)

let test_contexts () =
  let memo, _, _ = initial_memo () in
  let a =
    List.hd (Memo.output_cols memo (Memo.root memo))
  in
  let req = { Props.rdist = Props.Req_singleton; rorder = [ Sortspec.asc a ] } in
  let ctx, created = Memo.obtain_context memo (Memo.root memo) req in
  Alcotest.(check bool) "created" true created;
  let ctx2, created2 = Memo.obtain_context memo (Memo.root memo) req in
  Alcotest.(check bool) "found" false created2;
  Alcotest.(check bool) "same context" true (ctx == ctx2);
  (* a different request gets its own context *)
  let _, created3 = Memo.obtain_context memo (Memo.root memo) Props.any_req in
  Alcotest.(check bool) "distinct request" true created3

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_to_string_smoke () =
  let memo, _, _ = initial_memo () in
  let s = Memo.to_string memo in
  Alcotest.(check bool) "shows groups" true (contains ~needle:"GROUP 0" s)

let test_to_dot () =
  let _, report, _, _ =
    Fixtures.run_orca_sql
      "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b LIMIT 3"
  in
  let dot = Memolib.Memo.to_dot report.Orca.Optimizer.memo in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 20 && String.sub dot 0 12 = "digraph memo");
  (* one node per group *)
  let count_sub sub =
    let n = ref 0 in
    let l = String.length sub in
    for i = 0 to String.length dot - l do
      if String.sub dot i l = sub then incr n
    done;
    !n
  in
  Alcotest.(check int) "one record node per group"
    report.Orca.Optimizer.groups
    (count_sub "[label=\"{GROUP ");
  Alcotest.(check bool) "has edges" true (count_sub " -> " > 0)

let suite =
  [
    Alcotest.test_case "copy-in (Fig 4)" `Quick test_copy_in;
    Alcotest.test_case "graphviz export" `Quick test_to_dot;
    Alcotest.test_case "duplicate detection" `Quick test_duplicate_detection;
    Alcotest.test_case "commuted insert" `Quick test_commuted_insert;
    Alcotest.test_case "group merge" `Quick test_group_merge;
    Alcotest.test_case "stats derivation" `Quick test_stats_derivation;
    Alcotest.test_case "contexts" `Quick test_contexts;
    Alcotest.test_case "to_string" `Quick test_to_string_smoke;
  ]

test/test_integration.ml: Alcotest Dxl Engines Exec Expr Fixtures Ir Lazy List Ltree Orca Plan_ops Printf Sqlfront Tpcds

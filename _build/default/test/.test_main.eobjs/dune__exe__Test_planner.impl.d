test/test_planner.ml: Alcotest Engines Exec Expr Fixtures Ir Lazy List Orca Plan_ops Planner Printf Scalar_ops Sqlfront Tpcds

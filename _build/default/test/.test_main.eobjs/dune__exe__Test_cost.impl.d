test/test_cost.ml: Alcotest Cost Datum Expr Fixtures Ir List Props Sortspec Table_desc

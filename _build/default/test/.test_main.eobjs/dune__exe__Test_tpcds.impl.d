test/test_tpcds.ml: Alcotest Array Catalog Datum Dxl Engines Fixtures Float Hashtbl Ir Lazy List Ltree Option Printf Sqlfront Stats Table_desc Tpcds

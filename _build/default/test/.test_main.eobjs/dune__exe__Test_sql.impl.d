test/test_sql.ml: Alcotest Array Colref Dxl Expr Fixtures Gpos Ir List Ltree Sortspec Sqlfront Tpcds

test/test_window.ml: Alcotest Array Datum Dxl Exec Expr Fixtures Gpos Hashtbl Ir Lazy List Option Orca Plan_ops Printf Sqlfront Tpcds

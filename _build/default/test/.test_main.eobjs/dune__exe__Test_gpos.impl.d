test/test_gpos.ml: Alcotest Array Atomic Fun Gpos List Sys

test/test_catalog.ml: Alcotest Catalog Colref Dtype Fixtures Ir Lazy List Option Stats Table_desc

test/test_properties.ml: Array Colref Datum Dtype Dxl Exec Expr Fixtures Float Gpos Ir Lazy List Orca Printf Props QCheck QCheck_alcotest Scalar_eval Scalar_ops Sortspec Sqlfront Stats String

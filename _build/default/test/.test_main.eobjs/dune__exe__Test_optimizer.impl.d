test/test_optimizer.ml: Alcotest Catalog Dxl Engines Exec Expr Fixtures Float Ir Lazy List Memolib Orca Physical_ops Plan_ops Printf Props Sqlfront Xform

test/test_memo.ml: Alcotest Colref Datum Dtype Expr Fixtures Ir List Memolib Option Orca Printf Props Sortspec Stats String Table_desc

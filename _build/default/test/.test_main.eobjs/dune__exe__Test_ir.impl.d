test/test_ir.ml: Alcotest Colref Datum Dtype Expr Fixtures Fmt Gpos Ir List Ltree Plan_ops Props Scalar_eval Scalar_ops Sortspec String Table_desc

test/test_engines.ml: Alcotest Engines Fixtures Lazy List Printf Tpcds

test/test_xform.ml: Alcotest Catalog Colref Cost Datum Dtype Dxl Expr Fixtures Ir List Ltree Memolib Printf Scalar_ops Search Sqlfront Stats Table_desc Xform

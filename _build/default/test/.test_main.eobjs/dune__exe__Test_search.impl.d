test/test_search.ml: Alcotest Catalog Datum Exec Expr Fixtures Ir Lazy List Memolib Orca Printf Props Search Sortspec Sqlfront Xform

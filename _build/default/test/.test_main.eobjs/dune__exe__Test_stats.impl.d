test/test_stats.ml: Alcotest Colref Datum Dtype Expr Fixtures Float Fun Ir List Printf QCheck QCheck_alcotest Stats

test/test_ampere_taqo.ml: Alcotest Catalog Cost Dxl Exec Expr Filename Fixtures Ir Lazy List Option Orca Plan_ops Sqlfront String Sys

test/fixtures.ml: Array Catalog Colref Datum Dtype Engines Exec Gpos Ir Lazy List Orca Planner Printf Sqlfront Stats String Tpcds

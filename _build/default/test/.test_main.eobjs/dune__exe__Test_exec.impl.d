test/test_exec.ml: Alcotest Array Colref Datum Dtype Exec Expr Fixtures Fun Gpos Hashtbl Ir List Plan_ops Printf QCheck QCheck_alcotest Sortspec Table_desc

open Ir

(* Tests for window functions: ROW_NUMBER/RANK/aggregates OVER with the SQL
   default running frame, through the whole pipeline. *)

let check sql =
  let _, report, rows, _ = Fixtures.run_orca_sql sql in
  ignore (Plan_ops.validate report.Orca.Optimizer.plan);
  Alcotest.(check bool)
    (Printf.sprintf "matches naive: %s" sql)
    true
    (Fixtures.rows_equal rows (Fixtures.run_naive_sql sql));
  (report, rows)

let test_row_number () =
  let _, rows =
    check
      "SELECT a, b, row_number() OVER (PARTITION BY a ORDER BY b) AS rn FROM \
       t1 WHERE a < 3 ORDER BY a, rn"
  in
  (* row numbers are 1..n within each partition *)
  let by_a = Hashtbl.create 8 in
  List.iter
    (fun row ->
      match (row.(0), row.(2)) with
      | Datum.Int a, Datum.Int rn ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt by_a a) in
          Alcotest.(check int) "consecutive" (prev + 1) rn;
          Hashtbl.replace by_a a rn
      | _ -> Alcotest.fail "unexpected types")
    rows;
  Alcotest.(check bool) "has partitions" true (Hashtbl.length by_a >= 2)

let test_rank_with_ties () =
  (* rank over a column with duplicates: ties share a rank, next rank jumps *)
  let _, rows =
    check
      "SELECT b, rank() OVER (ORDER BY a) AS r FROM t1 WHERE a < 2 ORDER BY \
       r, b"
  in
  let ranks =
    List.filter_map (fun r -> match r.(1) with Datum.Int v -> Some v | _ -> None) rows
  in
  Alcotest.(check bool) "first rank is 1" true (List.hd ranks = 1);
  (* with duplicated [a] values, some rank must repeat *)
  Alcotest.(check bool) "ties share ranks" true
    (List.length ranks > List.length (List.sort_uniq compare ranks))

let test_dense_rank () =
  (* dense_rank: ties share a rank and the next distinct value gets the
     next consecutive rank -- no gaps, unlike rank() *)
  let _, rows =
    check
      "SELECT b, rank() OVER (ORDER BY a) AS r, dense_rank() OVER (ORDER BY \
       a) AS dr FROM t1 WHERE a < 3 ORDER BY r, dr, b"
  in
  let pairs =
    List.filter_map
      (fun row ->
        match (row.(1), row.(2)) with
        | Datum.Int r, Datum.Int dr -> Some (r, dr)
        | _ -> None)
      rows
  in
  Alcotest.(check bool) "got rows" true (pairs <> []);
  (* dense ranks are exactly 1..k with no gaps *)
  let dense = List.sort_uniq compare (List.map snd pairs) in
  List.iteri
    (fun i dr -> Alcotest.(check int) "dense ranks consecutive" (i + 1) dr)
    dense;
  (* dense_rank never exceeds rank, and both start at 1 *)
  List.iter
    (fun (r, dr) ->
      Alcotest.(check bool) "dense <= rank" true (dr <= r))
    pairs;
  Alcotest.(check (pair int int)) "first row" (1, 1) (List.hd pairs);
  (* with duplicates present, rank must have a gap dense_rank doesn't *)
  let max_r = List.fold_left (fun m (r, _) -> max m r) 0 pairs in
  let max_dr = List.fold_left (fun m (_, dr) -> max m dr) 0 pairs in
  Alcotest.(check bool) "rank gaps vs dense" true (max_dr <= max_r)

let test_running_sum_monotone () =
  let _, rows =
    check
      "SELECT a, b, sum(b) OVER (PARTITION BY a ORDER BY b) AS running FROM \
       t1 WHERE a < 4 ORDER BY a, b, running"
  in
  (* within a partition, the running sum never decreases *)
  let last = Hashtbl.create 8 in
  List.iter
    (fun row ->
      match (row.(0), row.(2)) with
      | Datum.Int a, running ->
          (match Hashtbl.find_opt last a with
          | Some prev ->
              Alcotest.(check bool) "monotone" true (Datum.compare running prev >= 0)
          | None -> ());
          Hashtbl.replace last a running
      | _ -> ())
    rows

let test_whole_partition_agg () =
  (* no ORDER BY in the window: every row of a partition sees the same value,
     equal to the group aggregate *)
  let _, rows =
    check
      "SELECT a, sum(b) OVER (PARTITION BY a) AS total FROM t1 WHERE a < 5 \
       ORDER BY a, total"
  in
  let totals = Hashtbl.create 8 in
  List.iter
    (fun row ->
      match (row.(0), row.(1)) with
      | Datum.Int a, total -> (
          match Hashtbl.find_opt totals a with
          | Some prev ->
              Alcotest.(check bool) "same value across partition" true
                (Datum.equal prev total)
          | None -> Hashtbl.replace totals a total)
      | _ -> ())
    rows;
  (* cross-check against GROUP BY *)
  let grouped =
    Fixtures.run_naive_sql
      "SELECT a, sum(b) AS total FROM t1 WHERE a < 5 GROUP BY a ORDER BY a"
  in
  List.iter
    (fun row ->
      match (row.(0), row.(1)) with
      | Datum.Int a, expected ->
          Alcotest.(check bool) "matches GROUP BY" true
            (Datum.equal (Hashtbl.find totals a) expected)
      | _ -> ())
    grouped

let test_avg_over_decomposition () =
  ignore
    (check
       "SELECT a, avg(b) OVER (PARTITION BY a) AS ab FROM t1 WHERE a < 4 \
        ORDER BY a, ab")

let test_topk_per_group () =
  (* the rank-filter idiom through a FROM subquery *)
  ignore
    (check
       "SELECT t.a, t.b, t.r FROM (SELECT a, b, rank() OVER (PARTITION BY a \
        ORDER BY b DESC) AS r FROM t1 WHERE a < 6) AS t WHERE t.r <= 2 ORDER \
        BY t.a, t.r, t.b")

let test_window_plan_properties () =
  (* the physical window requires co-location on the partition keys *)
  let report, _ =
    check
      "SELECT a, count(*) OVER (PARTITION BY a ORDER BY b) AS c FROM t1 \
       WHERE a < 8 ORDER BY a, c"
  in
  let has_window =
    Plan_ops.contains
      (fun n -> match n.Expr.pop with Expr.P_window _ -> true | _ -> false)
      report.Orca.Optimizer.plan
  in
  Alcotest.(check bool) "window operator in plan" true has_window

let test_window_dxl_roundtrip () =
  let report, _ =
    check
      "SELECT a, rank() OVER (PARTITION BY a ORDER BY b) AS r FROM t1 WHERE \
       a < 3 ORDER BY a, r"
  in
  let plan = report.Orca.Optimizer.plan in
  let plan' = Dxl.Dxl_plan.of_string (Dxl.Dxl_plan.to_string plan) in
  let s = Lazy.force Fixtures.small in
  let rows, _ = Exec.Executor.run s.Fixtures.cluster plan in
  let rows', _ = Exec.Executor.run s.Fixtures.cluster plan' in
  Alcotest.(check bool) "round-tripped window plan" true
    (Fixtures.rows_equal rows rows')

let test_window_feature_detection () =
  let fs =
    Tpcds.Features.of_sql
      "SELECT rank() OVER (PARTITION BY a ORDER BY b) AS r FROM t1 ORDER BY r LIMIT 1"
  in
  Alcotest.(check bool) "detected" true (List.mem Tpcds.Features.F_window fs)

let test_window_rejected_in_where () =
  Alcotest.(check bool) "window in WHERE rejected" true
    (try
       ignore
         (Sqlfront.Binder.bind_sql (Fixtures.small_accessor ())
            "SELECT a FROM t1 WHERE rank() OVER (ORDER BY a) < 3");
       false
     with Gpos.Gpos_error.Error (Gpos.Gpos_error.Bind_error, _) -> true)

let test_explicit_default_frame () =
  (* real TPC-DS q51-style explicit frame: identical to the implicit
     default; non-default frames are rejected, not reinterpreted *)
  let implicit =
    "SELECT a, b, sum(b) OVER (PARTITION BY a ORDER BY b) AS r FROM t1 \
     WHERE a < 4 ORDER BY a, b, r"
  in
  let explicit =
    "SELECT a, b, sum(b) OVER (PARTITION BY a ORDER BY b ROWS BETWEEN \
     UNBOUNDED PRECEDING AND CURRENT ROW) AS r FROM t1 WHERE a < 4 ORDER \
     BY a, b, r"
  in
  let _, _, rows_i, _ = Fixtures.run_orca_sql implicit in
  let _, _, rows_e, _ = Fixtures.run_orca_sql explicit in
  Alcotest.(check bool) "explicit default frame = implicit" true
    (Fixtures.rows_equal rows_i rows_e);
  (* RANGE spelling too *)
  let range_sql =
    "SELECT a, sum(b) OVER (ORDER BY a RANGE BETWEEN UNBOUNDED PRECEDING \
     AND CURRENT ROW) AS r FROM t1 WHERE a < 3 ORDER BY a, r"
  in
  let _, _, rows_r, _ = Fixtures.run_orca_sql range_sql in
  Alcotest.(check bool) "range frame matches naive" true
    (Fixtures.rows_equal rows_r (Fixtures.run_naive_sql range_sql));
  (* a non-default frame is rejected with a clear error *)
  Alcotest.(check bool) "non-default frame rejected" true
    (try
       ignore
         (Fixtures.run_orca_sql
            "SELECT a, sum(b) OVER (ORDER BY a ROWS BETWEEN 1 PRECEDING AND \
             CURRENT ROW) AS r FROM t1");
       false
     with Gpos.Gpos_error.Error _ -> true)

let suite =
  [
    Alcotest.test_case "row_number" `Quick test_row_number;
    Alcotest.test_case "rank with ties" `Quick test_rank_with_ties;
    Alcotest.test_case "dense_rank" `Quick test_dense_rank;
    Alcotest.test_case "running sum" `Quick test_running_sum_monotone;
    Alcotest.test_case "whole-partition agg" `Quick test_whole_partition_agg;
    Alcotest.test_case "avg decomposition" `Quick test_avg_over_decomposition;
    Alcotest.test_case "top-k per group" `Quick test_topk_per_group;
    Alcotest.test_case "plan properties" `Quick test_window_plan_properties;
    Alcotest.test_case "dxl roundtrip" `Quick test_window_dxl_roundtrip;
    Alcotest.test_case "feature detection" `Quick test_window_feature_detection;
    Alcotest.test_case "rejected in WHERE" `Quick test_window_rejected_in_where;
    Alcotest.test_case "explicit default frame" `Quick test_explicit_default_frame;
  ]

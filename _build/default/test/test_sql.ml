open Ir

(* Tests for the SQL front-end: lexer, parser, binder, feature detection. *)

let test_lexer_basic () =
  let toks = Sqlfront.Lexer.tokenize "SELECT a, 'it''s' FROM t1 WHERE x >= 1.5 -- c" in
  let open Sqlfront.Token in
  Alcotest.(check bool) "shape" true
    (toks
    = [
        KEYWORD "SELECT"; IDENT "a"; SYMBOL ","; STRING "it's"; KEYWORD "FROM";
        IDENT "t1"; KEYWORD "WHERE"; IDENT "x"; SYMBOL ">="; FLOAT 1.5; EOF;
      ])

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Sqlfront.Lexer.tokenize "SELECT @");
       false
     with Gpos.Gpos_error.Error (Gpos.Gpos_error.Parse_error, _) -> true);
  Alcotest.(check bool) "unterminated string" true
    (try
       ignore (Sqlfront.Lexer.tokenize "SELECT 'oops");
       false
     with Gpos.Gpos_error.Error (Gpos.Gpos_error.Parse_error, _) -> true)

let parse = Sqlfront.Parser.parse

let test_parser_precedence () =
  let q = parse "SELECT a + b * 2 FROM t1 WHERE a = 1 OR b = 2 AND a < 3" in
  match q.Sqlfront.Ast.body with
  | Sqlfront.Ast.Select core -> (
      (match (List.hd core.Sqlfront.Ast.items).Sqlfront.Ast.item_expr with
      | Sqlfront.Ast.E_arith (Expr.Add, _, Sqlfront.Ast.E_arith (Expr.Mul, _, _)) -> ()
      | _ -> Alcotest.fail "mul binds tighter than add");
      match core.Sqlfront.Ast.where with
      | Some (Sqlfront.Ast.E_or (_, Sqlfront.Ast.E_and (_, _))) -> ()
      | _ -> Alcotest.fail "AND binds tighter than OR")
  | _ -> Alcotest.fail "expected select"

let test_parser_joins () =
  let q =
    parse
      "SELECT * FROM t1 JOIN t2 ON t1.a = t2.b LEFT OUTER JOIN t2 x ON x.a = t1.a"
  in
  match q.Sqlfront.Ast.body with
  | Sqlfront.Ast.Select { from = [ Sqlfront.Ast.F_join (inner, Sqlfront.Ast.J_left, _, _) ]; _ } -> (
      match inner with
      | Sqlfront.Ast.F_join (_, Sqlfront.Ast.J_inner, _, Some _) -> ()
      | _ -> Alcotest.fail "inner join first")
  | _ -> Alcotest.fail "expected left join of inner join"

let test_parser_setops_ctes () =
  let q =
    parse
      "WITH w AS (SELECT a FROM t1) SELECT a FROM w UNION ALL SELECT b FROM t2 \
       ORDER BY 1 LIMIT 3 OFFSET 1"
  in
  Alcotest.(check int) "one cte" 1 (List.length q.Sqlfront.Ast.ctes);
  (match q.Sqlfront.Ast.body with
  | Sqlfront.Ast.Setop (Expr.Union_all, _, _) -> ()
  | _ -> Alcotest.fail "expected union all");
  Alcotest.(check (option int)) "limit" (Some 3) q.Sqlfront.Ast.limit;
  Alcotest.(check (option int)) "offset" (Some 1) q.Sqlfront.Ast.offset

let test_parser_subqueries () =
  let q =
    parse
      "SELECT a FROM t1 WHERE EXISTS (SELECT 1 FROM t2) AND a IN (SELECT b \
       FROM t2) AND b > (SELECT max(a) FROM t2) AND a NOT IN (1, 2)"
  in
  match q.Sqlfront.Ast.body with
  | Sqlfront.Ast.Select { where = Some w; _ } ->
      let rec count e =
        match e with
        | Sqlfront.Ast.E_and (a, b) -> count a + count b
        | Sqlfront.Ast.E_exists _ -> 1
        | Sqlfront.Ast.E_in_query _ -> 1
        | Sqlfront.Ast.E_cmp (_, _, Sqlfront.Ast.E_scalar_subquery _) -> 1
        | _ -> 0
      in
      Alcotest.(check int) "three subqueries" 3 (count w)
  | _ -> Alcotest.fail "expected select"

let test_parser_case_between () =
  let q =
    parse
      "SELECT CASE WHEN a BETWEEN 1 AND 2 THEN 'x' ELSE 'y' END AS c FROM t1"
  in
  match q.Sqlfront.Ast.body with
  | Sqlfront.Ast.Select { items = [ { item_expr = Sqlfront.Ast.E_case ([ (Sqlfront.Ast.E_between _, _) ], Some _); item_alias = Some "c" } ]; _ } ->
      ()
  | _ -> Alcotest.fail "expected case/between"

let test_parser_trailing_garbage () =
  Alcotest.(check bool) "rejects" true
    (try
       ignore (parse "SELECT a FROM t1 banana splat");
       false
     with Gpos.Gpos_error.Error (Gpos.Gpos_error.Parse_error, _) -> true)

(* --- binder --- *)

let bind sql =
  let accessor = Fixtures.small_accessor () in
  Sqlfront.Binder.bind_sql accessor sql

let test_bind_star_expansion () =
  let q = bind "SELECT * FROM t1" in
  Alcotest.(check int) "two columns" 2 (List.length q.Dxl.Dxl_query.output);
  Alcotest.(check (list string)) "names" [ "a"; "b" ]
    (List.map Colref.name q.Dxl.Dxl_query.output)

let test_bind_self_join_aliases () =
  let q = bind "SELECT x.a, y.a FROM t1 x, t1 y WHERE x.a = y.b" in
  match q.Dxl.Dxl_query.output with
  | [ c1; c2 ] ->
      Alcotest.(check bool) "distinct colrefs" true (Colref.id c1 <> Colref.id c2)
  | _ -> Alcotest.fail "two outputs expected"

let test_bind_ambiguous_alias () =
  Alcotest.(check bool) "unknown column" true
    (try
       ignore (bind "SELECT zzz FROM t1");
       false
     with Gpos.Gpos_error.Error (Gpos.Gpos_error.Bind_error, _) -> true);
  Alcotest.(check bool) "unknown table" true
    (try
       ignore (bind "SELECT a FROM not_a_table");
       false
     with Gpos.Gpos_error.Error (Gpos.Gpos_error.Bind_error, _) -> true)

let test_bind_avg_rewrite () =
  let q = bind "SELECT avg(a) AS m FROM t1" in
  (* AVG decomposes into SUM/COUNT at bind time *)
  let has_div = ref false and agg_kinds = ref [] in
  let rec walk (t : Ltree.t) =
    (match t.Ltree.op with
    | Expr.L_project projs ->
        List.iter
          (fun p ->
            match p.Expr.proj_expr with
            | Expr.Arith (Expr.Div, _, _) -> has_div := true
            | _ -> ())
          projs
    | Expr.L_gb_agg (_, _, aggs) ->
        agg_kinds := List.map (fun a -> a.Expr.agg_kind) aggs @ !agg_kinds
    | _ -> ());
    List.iter walk t.Ltree.children
  in
  walk q.Dxl.Dxl_query.tree;
  Alcotest.(check bool) "division in projection" true !has_div;
  Alcotest.(check bool) "sum and count" true
    (List.mem Expr.Sum !agg_kinds && List.mem Expr.Count !agg_kinds)

let test_bind_group_by_validation () =
  Alcotest.(check bool) "aggregate in WHERE rejected" true
    (try
       ignore (bind "SELECT a FROM t1 WHERE sum(b) > 3");
       false
     with Gpos.Gpos_error.Error (Gpos.Gpos_error.Bind_error, _) -> true)

let test_bind_exists_under_or_rejected () =
  Alcotest.(check bool) "EXISTS under OR rejected" true
    (try
       ignore
         (bind
            "SELECT a FROM t1 WHERE a = 1 OR EXISTS (SELECT 1 FROM t2 WHERE t2.b = t1.a)");
       false
     with Gpos.Gpos_error.Error (Gpos.Gpos_error.Bind_error, _) -> true)

let test_bind_order_by_alias_and_position () =
  let q = bind "SELECT a AS alpha, b FROM t1 ORDER BY alpha DESC, 2" in
  match q.Dxl.Dxl_query.order with
  | [ o1; o2 ] ->
      Alcotest.(check bool) "desc on alias" true (o1.Sortspec.dir = Sortspec.Desc);
      Alcotest.(check string) "position 2 is b" "b" (Colref.name o2.Sortspec.col)
  | _ -> Alcotest.fail "two sort keys"

let test_bind_correlation_tracking () =
  let q =
    bind "SELECT a FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE t2.b = t1.a)"
  in
  let corr = ref [] in
  let rec walk (t : Ltree.t) =
    (match t.Ltree.op with
    | Expr.L_apply (_, cols) -> corr := cols @ !corr
    | _ -> ());
    List.iter walk t.Ltree.children
  in
  walk q.Dxl.Dxl_query.tree;
  Alcotest.(check int) "one correlation column" 1 (List.length !corr);
  Alcotest.(check string) "is t1.a" "a" (Colref.name (List.hd !corr))

let test_bind_validates () =
  (* every bound tree passes column-visibility validation *)
  List.iter
    (fun sql -> Ltree.validate (bind sql).Dxl.Dxl_query.tree)
    [
      "SELECT * FROM t1";
      "SELECT t1.a, count(*) AS c FROM t1, t2 WHERE t1.a = t2.b GROUP BY t1.a";
      "WITH w AS (SELECT a, count(*) AS c FROM t1 GROUP BY a) SELECT w1.a FROM w w1, w w2 WHERE w1.a = w2.a";
      "SELECT a FROM t1 WHERE b IN (SELECT b FROM t2 WHERE t2.a = t1.a)";
      "SELECT a FROM t1 UNION SELECT b FROM t2";
      "SELECT DISTINCT a FROM t1 LEFT JOIN t2 ON t1.a = t2.b WHERE t2.a IS NULL";
    ]

(* --- feature detection --- *)

let test_features () =
  let fs sql = Tpcds.Features.of_sql sql in
  Alcotest.(check bool) "with" true
    (List.mem Tpcds.Features.F_with
       (fs "WITH w AS (SELECT a FROM t1) SELECT a FROM w"));
  Alcotest.(check bool) "intersect" true
    (List.mem Tpcds.Features.F_intersect
       (fs "SELECT a FROM t1 INTERSECT SELECT b FROM t2"));
  Alcotest.(check bool) "order-no-limit" true
    (List.mem Tpcds.Features.F_order_no_limit (fs "SELECT a FROM t1 ORDER BY a"));
  Alcotest.(check bool) "limit clears it" false
    (List.mem Tpcds.Features.F_order_no_limit
       (fs "SELECT a FROM t1 ORDER BY a LIMIT 1"));
  Alcotest.(check bool) "non-equi join" true
    (List.mem Tpcds.Features.F_non_equi_join
       (fs "SELECT * FROM t1 JOIN t2 ON t1.a < t2.b"));
  Alcotest.(check bool) "equi join is not flagged" false
    (List.mem Tpcds.Features.F_non_equi_join
       (fs "SELECT * FROM t1 JOIN t2 ON t1.a = t2.b AND t1.b < t2.a"))

(* --- GROUP BY ROLLUP --- *)

let test_rollup_parse_and_expand () =
  let ast =
    Sqlfront.Parser.parse
      "SELECT a, b, count(*) AS c FROM t1 GROUP BY ROLLUP (a, b)"
  in
  (match ast.Sqlfront.Ast.body with
  | Sqlfront.Ast.Select core ->
      Alcotest.(check bool) "rollup flag" true
        (core.Sqlfront.Ast.group_mode = Sqlfront.Ast.G_rollup);
      Alcotest.(check int) "two rollup exprs" 2
        (List.length core.Sqlfront.Ast.group_by)
  | _ -> Alcotest.fail "expected select body");
  (* expansion: three UNION ALL arms, finest grouping set leftmost *)
  let expanded = Sqlfront.Rollup.expand_query ast in
  let rec arms = function
    | Sqlfront.Ast.Select core -> [ core ]
    | Sqlfront.Ast.Setop (Ir.Expr.Union_all, l, r) -> arms l @ arms r
    | Sqlfront.Ast.Setop _ -> Alcotest.fail "expected UNION ALL"
  in
  let cores = arms expanded.Sqlfront.Ast.body in
  Alcotest.(check int) "three grouping sets" 3 (List.length cores);
  Alcotest.(check (list int)) "prefix group lists" [ 2; 1; 0 ]
    (List.map
       (fun (c : Sqlfront.Ast.select_core) -> List.length c.Sqlfront.Ast.group_by)
       cores);
  List.iter
    (fun (c : Sqlfront.Ast.select_core) ->
      Alcotest.(check bool) "flag cleared" true
        (c.Sqlfront.Ast.group_mode = Sqlfront.Ast.G_plain))
    cores;
  (* the grand-total arm's select list NULLs out both grouping columns *)
  let total = List.nth cores 2 in
  (match (List.nth total.Sqlfront.Ast.items 0).Sqlfront.Ast.item_expr with
  | Sqlfront.Ast.E_null -> ()
  | _ -> Alcotest.fail "rolled-up column should be NULL");
  (* a plain GROUP BY is untouched *)
  let plain =
    Sqlfront.Rollup.expand_query
      (Sqlfront.Parser.parse "SELECT a, count(*) AS c FROM t1 GROUP BY a")
  in
  match plain.Sqlfront.Ast.body with
  | Sqlfront.Ast.Select _ -> ()
  | _ -> Alcotest.fail "plain GROUP BY must not expand"

let test_rollup_semantics () =
  (* rollup rows = the union of the plain aggregate, per-prefix subtotals and
     the grand total; checked against a hand-written union and against the
     naive oracle *)
  let rollup_sql =
    "SELECT a, b, count(*) AS c, sum(b) AS s FROM t1 WHERE a < 6 GROUP BY \
     ROLLUP (a, b) ORDER BY a, b, c LIMIT 500"
  in
  let manual_sql =
    "SELECT a, b, count(*) AS c, sum(b) AS s FROM t1 WHERE a < 6 GROUP BY a, \
     b UNION ALL SELECT a, NULL, count(*) AS c, sum(b) AS s FROM t1 WHERE a \
     < 6 GROUP BY a UNION ALL SELECT NULL, NULL, count(*) AS c, sum(b) AS s \
     FROM t1 WHERE a < 6 ORDER BY a, b, c LIMIT 500"
  in
  let _, _, rollup_rows, _ = Fixtures.run_orca_sql rollup_sql in
  let _, _, manual_rows, _ = Fixtures.run_orca_sql manual_sql in
  Alcotest.(check bool) "rollup = hand-written union" true
    (Fixtures.rows_equal rollup_rows manual_rows);
  Alcotest.(check bool) "rollup matches naive" true
    (Fixtures.rows_equal rollup_rows (Fixtures.run_naive_sql rollup_sql));
  let _, planner_rows, _ = Fixtures.run_planner_sql rollup_sql in
  Alcotest.(check bool) "rollup matches planner" true
    (Fixtures.rows_equal rollup_rows planner_rows);
  (* feature detection is mechanical *)
  Alcotest.(check bool) "F_rollup detected" true
    (List.mem Tpcds.Features.F_rollup (Tpcds.Features.of_sql rollup_sql));
  Alcotest.(check bool) "no F_rollup on the manual union" false
    (List.mem Tpcds.Features.F_rollup (Tpcds.Features.of_sql manual_sql))

let test_rollup_grouping () =
  (* GROUPING(e) = 1 exactly on the rows where [e] was rolled away; the
     lochierarchy idiom of real TPC-DS q36/q70/q86 *)
  let sql =
    "SELECT a, b, grouping(a) + grouping(b) AS lochierarchy, count(*) AS c \
     FROM t1 WHERE a < 4 GROUP BY ROLLUP (a, b) ORDER BY lochierarchy DESC, \
     a, b LIMIT 400"
  in
  let _, _, rows, _ = Fixtures.run_orca_sql sql in
  Alcotest.(check bool) "matches naive" true
    (Fixtures.rows_equal rows (Fixtures.run_naive_sql sql));
  (* grand total: lochierarchy=2, both keys NULL; exactly one such row *)
  let totals =
    List.filter (fun r -> r.(2) = Ir.Datum.Int 2) rows
  in
  Alcotest.(check int) "one grand-total row" 1 (List.length totals);
  let t = List.hd totals in
  Alcotest.(check bool) "grand total keys are NULL" true
    (Ir.Datum.is_null t.(0) && Ir.Datum.is_null t.(1));
  (* level-1 rows: a kept, b rolled away *)
  List.iter
    (fun r ->
      if r.(2) = Ir.Datum.Int 1 then
        Alcotest.(check bool) "subtotal: a real, b NULL" true
          ((not (Ir.Datum.is_null r.(0))) && Ir.Datum.is_null r.(1));
      if r.(2) = Ir.Datum.Int 0 then
        Alcotest.(check bool) "detail: both real" true
          ((not (Ir.Datum.is_null r.(0))) && not (Ir.Datum.is_null r.(1))))
    rows;
  (* the detail counts sum to the grand total *)
  let sum_detail =
    List.fold_left
      (fun acc r ->
        match (r.(2), r.(3)) with
        | Ir.Datum.Int 0, Ir.Datum.Int c -> acc + c
        | _ -> acc)
      0 rows
  in
  Alcotest.(check bool) "details sum to total" true
    (t.(3) = Ir.Datum.Int sum_detail)

let test_rollup_duplicate_expr () =
  (* ROLLUP (a, a): the duplicated expression stays live while any copy is
     kept; grouping sets degenerate to (a), (a), () *)
  let dup_sql =
    "SELECT a, count(*) AS c FROM t1 WHERE a < 5 GROUP BY ROLLUP (a, a) \
     ORDER BY a, c LIMIT 300"
  in
  let manual_sql =
    "SELECT a, count(*) AS c FROM t1 WHERE a < 5 GROUP BY a UNION ALL \
     SELECT a, count(*) AS c FROM t1 WHERE a < 5 GROUP BY a UNION ALL \
     SELECT NULL, count(*) AS c FROM t1 WHERE a < 5 ORDER BY a, c LIMIT 300"
  in
  let _, _, dup_rows, _ = Fixtures.run_orca_sql dup_sql in
  let _, _, manual_rows, _ = Fixtures.run_orca_sql manual_sql in
  Alcotest.(check bool) "duplicate rollup expr handled" true
    (Fixtures.rows_equal dup_rows manual_rows);
  Alcotest.(check bool) "matches naive" true
    (Fixtures.rows_equal dup_rows (Fixtures.run_naive_sql dup_sql))

let test_cube_semantics () =
  (* CUBE (a, b) = rollup's grouping sets plus the (b)-only subtotal *)
  let cube_sql =
    "SELECT a, b, count(*) AS c FROM t1 WHERE a < 5 GROUP BY CUBE (a, b) \
     ORDER BY a, b, c LIMIT 600"
  in
  let manual_sql =
    "SELECT a, b, count(*) AS c FROM t1 WHERE a < 5 GROUP BY a, b UNION ALL \
     SELECT a, NULL, count(*) AS c FROM t1 WHERE a < 5 GROUP BY a UNION ALL \
     SELECT NULL, b, count(*) AS c FROM t1 WHERE a < 5 GROUP BY b UNION ALL \
     SELECT NULL, NULL, count(*) AS c FROM t1 WHERE a < 5 ORDER BY a, b, c \
     LIMIT 600"
  in
  let _, _, cube_rows, _ = Fixtures.run_orca_sql cube_sql in
  let _, _, manual_rows, _ = Fixtures.run_orca_sql manual_sql in
  Alcotest.(check bool) "cube = hand-written union of 4 sets" true
    (Fixtures.rows_equal cube_rows manual_rows);
  Alcotest.(check bool) "cube matches naive" true
    (Fixtures.rows_equal cube_rows (Fixtures.run_naive_sql cube_sql));
  let _, planner_rows, _ = Fixtures.run_planner_sql cube_sql in
  Alcotest.(check bool) "cube matches planner" true
    (Fixtures.rows_equal cube_rows planner_rows);
  Alcotest.(check bool) "detected as grouping-sets feature" true
    (List.mem Tpcds.Features.F_rollup (Tpcds.Features.of_sql cube_sql))

let test_grouping_sets_semantics () =
  (* explicit GROUPING SETS: exactly the named sets, no more *)
  let gs_sql =
    "SELECT a, b, count(*) AS c FROM t1 WHERE a < 5 GROUP BY GROUPING SETS \
     ((a, b), (b), ()) ORDER BY a, b, c LIMIT 600"
  in
  let manual_sql =
    "SELECT a, b, count(*) AS c FROM t1 WHERE a < 5 GROUP BY a, b UNION ALL \
     SELECT NULL, b, count(*) AS c FROM t1 WHERE a < 5 GROUP BY b UNION ALL \
     SELECT NULL, NULL, count(*) AS c FROM t1 WHERE a < 5 ORDER BY a, b, c \
     LIMIT 600"
  in
  let _, _, gs_rows, _ = Fixtures.run_orca_sql gs_sql in
  let _, _, manual_rows, _ = Fixtures.run_orca_sql manual_sql in
  Alcotest.(check bool) "grouping sets = hand-written union" true
    (Fixtures.rows_equal gs_rows manual_rows);
  Alcotest.(check bool) "matches naive" true
    (Fixtures.rows_equal gs_rows (Fixtures.run_naive_sql gs_sql));
  (* a bare expression is a one-element set *)
  let bare_sql =
    "SELECT a, count(*) AS c FROM t1 WHERE a < 5 GROUP BY GROUPING SETS (a) \
     ORDER BY a, c"
  in
  let plain_sql =
    "SELECT a, count(*) AS c FROM t1 WHERE a < 5 GROUP BY a ORDER BY a, c"
  in
  let _, _, bare_rows, _ = Fixtures.run_orca_sql bare_sql in
  let _, _, plain_rows, _ = Fixtures.run_orca_sql plain_sql in
  Alcotest.(check bool) "bare set = plain group by" true
    (Fixtures.rows_equal bare_rows plain_rows)

let suite =
  [
    Alcotest.test_case "lexer basic" `Quick test_lexer_basic;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser joins" `Quick test_parser_joins;
    Alcotest.test_case "parser setops/ctes" `Quick test_parser_setops_ctes;
    Alcotest.test_case "parser subqueries" `Quick test_parser_subqueries;
    Alcotest.test_case "parser case/between" `Quick test_parser_case_between;
    Alcotest.test_case "parser trailing garbage" `Quick test_parser_trailing_garbage;
    Alcotest.test_case "bind star" `Quick test_bind_star_expansion;
    Alcotest.test_case "bind self join" `Quick test_bind_self_join_aliases;
    Alcotest.test_case "bind errors" `Quick test_bind_ambiguous_alias;
    Alcotest.test_case "bind avg rewrite" `Quick test_bind_avg_rewrite;
    Alcotest.test_case "bind agg in where" `Quick test_bind_group_by_validation;
    Alcotest.test_case "bind exists under or" `Quick test_bind_exists_under_or_rejected;
    Alcotest.test_case "bind order by alias" `Quick test_bind_order_by_alias_and_position;
    Alcotest.test_case "bind correlation" `Quick test_bind_correlation_tracking;
    Alcotest.test_case "bind validates" `Quick test_bind_validates;
    Alcotest.test_case "feature detection" `Quick test_features;
    Alcotest.test_case "rollup parse+expand" `Quick test_rollup_parse_and_expand;
    Alcotest.test_case "rollup semantics" `Quick test_rollup_semantics;
    Alcotest.test_case "rollup grouping()" `Quick test_rollup_grouping;
    Alcotest.test_case "rollup duplicate expr" `Quick test_rollup_duplicate_expr;
    Alcotest.test_case "cube semantics" `Quick test_cube_semantics;
    Alcotest.test_case "grouping sets" `Quick test_grouping_sets_semantics;
  ]

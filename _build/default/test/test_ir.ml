open Ir

(* Tests for the IR: datums, column references, sort specs, scalar operations
   and evaluation, physical properties and enforcement. *)

let datum = Alcotest.testable (Fmt.of_to_string Datum.to_string) Datum.equal

let test_datum_compare () =
  Alcotest.(check bool) "null smallest" true (Datum.compare Datum.Null (Datum.Int 0) < 0);
  Alcotest.(check bool) "int/float mix" true
    (Datum.compare (Datum.Int 2) (Datum.Float 2.5) < 0);
  Alcotest.(check int) "equal across types" 0
    (Datum.compare (Datum.Int 3) (Datum.Float 3.0));
  Alcotest.(check bool) "strings" true
    (Datum.compare (Datum.String "abc") (Datum.String "abd") < 0)

let test_datum_sql_compare () =
  Alcotest.(check (option int)) "null incomparable" None
    (Datum.sql_compare Datum.Null (Datum.Int 1));
  Alcotest.(check (option int)) "ordinary" (Some 0)
    (Datum.sql_compare (Datum.Int 1) (Datum.Int 1))

let test_datum_arith () =
  Alcotest.check datum "add" (Datum.Int 7)
    (Datum.arith `Add (Datum.Int 3) (Datum.Int 4));
  Alcotest.check datum "div ints is float"
    (Datum.Float 1.5)
    (Datum.arith `Div (Datum.Int 3) (Datum.Int 2));
  Alcotest.check datum "div by zero" Datum.Null
    (Datum.arith `Div (Datum.Int 3) (Datum.Int 0));
  Alcotest.check datum "null propagates" Datum.Null
    (Datum.arith `Add Datum.Null (Datum.Int 1))

let test_datum_serialize_roundtrip () =
  let values =
    [
      Datum.Null; Datum.Int (-42); Datum.Float 3.25; Datum.Bool true;
      Datum.String "he:llo|wo,rld"; Datum.Date 12345; Datum.String "";
    ]
  in
  List.iter
    (fun d ->
      Alcotest.check datum "roundtrip" d (Datum.deserialize (Datum.serialize d)))
    values

let test_date_roundtrip () =
  let d = Datum.date_of_string "2001-07-15" in
  match d with
  | Datum.Date _ ->
      Alcotest.(check string) "prints back" "2001-07-15"
        (String.sub (Datum.to_string d) 0 10)
  | _ -> Alcotest.fail "expected a date"

let test_cast () =
  Alcotest.check datum "int->float" (Datum.Float 5.0)
    (Datum.cast (Datum.Int 5) Dtype.Float);
  Alcotest.check datum "string->int" (Datum.Int 12)
    (Datum.cast (Datum.String "12") Dtype.Int);
  Alcotest.check datum "bad string->int" Datum.Null
    (Datum.cast (Datum.String "xyz") Dtype.Int)

let test_colref_sets () =
  let a = Fixtures.col 1 "a" and b = Fixtures.col 2 "b" in
  let s = Colref.Set.of_list [ a; b; a ] in
  Alcotest.(check int) "set dedup" 2 (Colref.Set.cardinal s);
  Alcotest.(check (option int)) "position" (Some 1)
    (Colref.position_in [ a; b ] b)

let test_factory () =
  let f = Colref.Factory.create () in
  let c1 = Colref.Factory.fresh f ~name:"x" ~ty:Dtype.Int in
  let c2 = Colref.Factory.fresh f ~name:"x" ~ty:Dtype.Int in
  Alcotest.(check bool) "distinct ids" true (Colref.id c1 <> Colref.id c2);
  Colref.Factory.bump f 100;
  let c3 = Colref.Factory.fresh f ~name:"y" ~ty:Dtype.Int in
  Alcotest.(check bool) "bumped" true (Colref.id c3 > 100)

let test_sortspec_satisfies () =
  let a = Fixtures.col 1 "a" and b = Fixtures.col 2 "b" in
  let ab = [ Sortspec.asc a; Sortspec.asc b ] in
  let a_only = [ Sortspec.asc a ] in
  Alcotest.(check bool) "prefix ok" true
    (Sortspec.satisfies ~delivered:ab ~required:a_only);
  Alcotest.(check bool) "longer required fails" false
    (Sortspec.satisfies ~delivered:a_only ~required:ab);
  Alcotest.(check bool) "dir matters" false
    (Sortspec.satisfies ~delivered:[ Sortspec.desc a ] ~required:a_only);
  Alcotest.(check bool) "empty required" true
    (Sortspec.satisfies ~delivered:[] ~required:[])

let test_conjuncts () =
  let a = Fixtures.col 1 "a" in
  let p1 = Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Const (Datum.Int 1)) in
  let p2 = Expr.Cmp (Expr.Gt, Expr.Col a, Expr.Const (Datum.Int 0)) in
  let nested = Expr.And [ p1; Expr.And [ p2; Expr.Const (Datum.Bool true) ] ] in
  Alcotest.(check int) "flattened" 2 (List.length (Scalar_ops.conjuncts nested));
  Alcotest.(check int) "conjoin singleton" 1
    (List.length (Scalar_ops.conjuncts (Scalar_ops.conjoin [ p1 ])))

let test_free_cols () =
  let a = Fixtures.col 1 "a" and b = Fixtures.col 2 "b" in
  let e =
    Expr.Case
      ( [ (Expr.Cmp (Expr.Lt, Expr.Col a, Expr.Const (Datum.Int 3)), Expr.Col b) ],
        Some (Expr.Const Datum.Null) )
  in
  let free = Scalar_ops.free_cols e in
  Alcotest.(check int) "two free" 2 (Colref.Set.cardinal free)

let test_substitute () =
  let a = Fixtures.col 1 "a" and b = Fixtures.col 2 "b" in
  let e = Expr.Arith (Expr.Add, Expr.Col a, Expr.Col a) in
  let m = Colref.Map.singleton a b in
  let e' = Scalar_ops.substitute m e in
  Alcotest.(check bool) "substituted" true
    (Colref.Set.mem b (Scalar_ops.free_cols e')
    && not (Colref.Set.mem a (Scalar_ops.free_cols e')))

let test_extract_equi_keys () =
  let a = Fixtures.col 1 "a" and b = Fixtures.col 2 "b" in
  let outer = Colref.Set.singleton a and inner = Colref.Set.singleton b in
  let cond =
    Expr.And
      [
        Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b);
        (* constant equality must not become a key (regression) *)
        Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Const (Datum.Int 5));
        Expr.Cmp (Expr.Lt, Expr.Col a, Expr.Col b);
      ]
  in
  let keys, residual =
    Scalar_ops.extract_equi_keys ~outer_cols:outer ~inner_cols:inner cond
  in
  Alcotest.(check int) "one key" 1 (List.length keys);
  Alcotest.(check int) "two residual" 2 (List.length residual);
  (* flipped sides get normalized *)
  let keys2, _ =
    Scalar_ops.extract_equi_keys ~outer_cols:outer ~inner_cols:inner
      (Expr.Cmp (Expr.Eq, Expr.Col b, Expr.Col a))
  in
  (match keys2 with
  | [ (Expr.Col o, Expr.Col i) ] ->
      Alcotest.(check bool) "outer first" true
        (Colref.equal o a && Colref.equal i b)
  | _ -> Alcotest.fail "expected one column pair")

let test_like_match () =
  Alcotest.(check bool) "prefix" true (Scalar_ops.like_match ~pattern:"ab%" "abcdef");
  Alcotest.(check bool) "contains" true (Scalar_ops.like_match ~pattern:"%cd%" "abcdef");
  Alcotest.(check bool) "underscore" true (Scalar_ops.like_match ~pattern:"a_c" "abc");
  Alcotest.(check bool) "no match" false (Scalar_ops.like_match ~pattern:"a_c" "abbc");
  Alcotest.(check bool) "exact" true (Scalar_ops.like_match ~pattern:"abc" "abc");
  Alcotest.(check bool) "empty pattern" false (Scalar_ops.like_match ~pattern:"" "x")

let eval_const e = Scalar_eval.eval (fun _ -> Datum.Null) e

let test_eval_three_valued () =
  let null = Expr.Const Datum.Null in
  let tru = Expr.Const (Datum.Bool true) and fls = Expr.Const (Datum.Bool false) in
  Alcotest.check datum "null AND false" (Datum.Bool false)
    (eval_const (Expr.And [ null; fls ]));
  Alcotest.check datum "null AND true" Datum.Null
    (eval_const (Expr.And [ null; tru ]));
  Alcotest.check datum "null OR true" (Datum.Bool true)
    (eval_const (Expr.Or [ null; tru ]));
  Alcotest.check datum "null OR false" Datum.Null
    (eval_const (Expr.Or [ null; fls ]));
  Alcotest.check datum "NOT null" Datum.Null (eval_const (Expr.Not null));
  Alcotest.check datum "null = null" Datum.Null
    (eval_const (Expr.Cmp (Expr.Eq, null, null)));
  Alcotest.check datum "is null" (Datum.Bool true) (eval_const (Expr.Is_null null))

let test_eval_in_list () =
  let e v ds = Expr.In_list (Expr.Const v, ds) in
  Alcotest.check datum "found" (Datum.Bool true)
    (eval_const (e (Datum.Int 2) [ Datum.Int 1; Datum.Int 2 ]));
  Alcotest.check datum "not found w/ null" Datum.Null
    (eval_const (e (Datum.Int 3) [ Datum.Int 1; Datum.Null ]));
  Alcotest.check datum "not found" (Datum.Bool false)
    (eval_const (e (Datum.Int 3) [ Datum.Int 1; Datum.Int 2 ]))

let test_eval_case_coalesce () =
  let c =
    Expr.Case
      ( [
          (Expr.Const (Datum.Bool false), Expr.Const (Datum.Int 1));
          (Expr.Const (Datum.Bool true), Expr.Const (Datum.Int 2));
        ],
        Some (Expr.Const (Datum.Int 3)) )
  in
  Alcotest.check datum "case picks" (Datum.Int 2) (eval_const c);
  Alcotest.check datum "coalesce" (Datum.Int 9)
    (eval_const (Expr.Coalesce [ Expr.Const Datum.Null; Expr.Const (Datum.Int 9) ]))

let test_fold_constants () =
  let a = Fixtures.col 1 "a" in
  let e =
    Expr.Arith
      ( Expr.Add,
        Expr.Col a,
        Expr.Arith (Expr.Mul, Expr.Const (Datum.Int 2), Expr.Const (Datum.Int 3)) )
  in
  match Scalar_eval.fold_constants e with
  | Expr.Arith (Expr.Add, Expr.Col _, Expr.Const (Datum.Int 6)) -> ()
  | other -> Alcotest.failf "unexpected fold: %s" (Scalar_ops.to_string other)

(* --- physical properties --- *)

let test_dist_satisfies () =
  let a = Fixtures.col 1 "a" and b = Fixtures.col 2 "b" in
  let check name expected delivered required =
    Alcotest.(check bool) name expected (Props.dist_satisfies ~delivered ~required)
  in
  check "any" true (Props.D_random) Props.Any_dist;
  check "singleton" true Props.D_singleton Props.Req_singleton;
  check "hashed exact" true (Props.D_hashed [ a ]) (Props.Req_hashed [ a ]);
  check "hashed mismatch" false (Props.D_hashed [ a ]) (Props.Req_hashed [ b ]);
  check "hashed subset is not enough" false (Props.D_hashed [ a ])
    (Props.Req_hashed [ a; b ]);
  check "replicated not hashed" false Props.D_replicated (Props.Req_hashed [ a ]);
  check "singleton not non-singleton" false Props.D_singleton Props.Req_non_singleton;
  check "hashed is non-singleton" true (Props.D_hashed [ a ]) Props.Req_non_singleton

let test_enforcement_alternatives () =
  let a = Fixtures.col 1 "a" in
  let delivered = { Props.ddist = Props.D_hashed [ a ]; dorder = [] } in
  let required =
    { Props.rdist = Props.Req_singleton; rorder = [ Sortspec.asc a ] }
  in
  let chains = Props.enforcement_alternatives ~delivered ~required in
  (* the two plans of paper Fig. 7: sort+gather-merge, gather+sort *)
  Alcotest.(check int) "two alternatives" 2 (List.length chains);
  List.iter
    (fun chain ->
      let final = Props.apply_enforcers delivered chain in
      Alcotest.(check bool) "chain reaches requirement" true
        (Props.satisfies final required))
    chains;
  (* already satisfied: empty chain *)
  let ok = Props.enforcement_alternatives ~delivered ~required:Props.any_req in
  Alcotest.(check (list (list string))) "no-op" [ [] ]
    (List.map (List.map Props.enforcer_to_string) ok)

let test_enforcement_hashed () =
  let a = Fixtures.col 1 "a" in
  let delivered = { Props.ddist = Props.D_random; dorder = [] } in
  let required = Props.req_dist (Props.Req_hashed [ a ]) in
  match Props.enforcement_alternatives ~delivered ~required with
  | [ [ Props.E_motion (Expr.Redistribute [ Expr.Col c ]) ] ] ->
      Alcotest.(check bool) "redistribute col" true (Colref.equal c a)
  | _ -> Alcotest.fail "expected a single redistribute chain"

let test_ltree_validate () =
  let f = Colref.Factory.create () in
  let a = Colref.Factory.fresh f ~name:"a" ~ty:Dtype.Int in
  let other = Colref.Factory.fresh f ~name:"ghost" ~ty:Dtype.Int in
  let td = Table_desc.make ~mdid:"0.1.1.1" ~name:"t" [ a ] in
  let good =
    Ltree.make
      (Expr.L_select (Expr.Cmp (Expr.Gt, Expr.Col a, Expr.Const (Datum.Int 0))))
      [ Ltree.leaf (Expr.L_get td) ]
  in
  Ltree.validate good;
  let bad =
    Ltree.make
      (Expr.L_select (Expr.Cmp (Expr.Gt, Expr.Col other, Expr.Const (Datum.Int 0))))
      [ Ltree.leaf (Expr.L_get td) ]
  in
  Alcotest.(check bool) "bad tree rejected" true
    (try
       Ltree.validate bad;
       false
     with Gpos.Gpos_error.Error _ -> true)

let test_plan_validate () =
  let f = Colref.Factory.create () in
  let a = Colref.Factory.fresh f ~name:"a" ~ty:Dtype.Int in
  let td = Table_desc.make ~mdid:"0.1.1.1" ~name:"t" [ a ] in
  let scan =
    Plan_ops.node (Expr.P_table_scan (td, None, None)) [] ~est_rows:1.0 ~cost:1.0
  in
  let sorted =
    Plan_ops.node (Expr.P_sort [ Sortspec.asc a ]) [ scan ] ~est_rows:1.0 ~cost:2.0
  in
  Alcotest.(check int) "validated nodes" 2 (Plan_ops.validate sorted)

let suite =
  [
    Alcotest.test_case "datum compare" `Quick test_datum_compare;
    Alcotest.test_case "datum sql compare" `Quick test_datum_sql_compare;
    Alcotest.test_case "datum arith" `Quick test_datum_arith;
    Alcotest.test_case "datum serialize" `Quick test_datum_serialize_roundtrip;
    Alcotest.test_case "date roundtrip" `Quick test_date_roundtrip;
    Alcotest.test_case "cast" `Quick test_cast;
    Alcotest.test_case "colref sets" `Quick test_colref_sets;
    Alcotest.test_case "colref factory" `Quick test_factory;
    Alcotest.test_case "sortspec satisfies" `Quick test_sortspec_satisfies;
    Alcotest.test_case "conjuncts" `Quick test_conjuncts;
    Alcotest.test_case "free cols" `Quick test_free_cols;
    Alcotest.test_case "substitute" `Quick test_substitute;
    Alcotest.test_case "extract equi keys" `Quick test_extract_equi_keys;
    Alcotest.test_case "like match" `Quick test_like_match;
    Alcotest.test_case "3-valued logic" `Quick test_eval_three_valued;
    Alcotest.test_case "IN list eval" `Quick test_eval_in_list;
    Alcotest.test_case "case/coalesce eval" `Quick test_eval_case_coalesce;
    Alcotest.test_case "constant folding" `Quick test_fold_constants;
    Alcotest.test_case "dist satisfaction" `Quick test_dist_satisfies;
    Alcotest.test_case "enforcement (Fig 7)" `Quick test_enforcement_alternatives;
    Alcotest.test_case "enforce hashed" `Quick test_enforcement_hashed;
    Alcotest.test_case "ltree validate" `Quick test_ltree_validate;
    Alcotest.test_case "plan validate" `Quick test_plan_validate;
  ]

(* Tests for the engine simulations: support matrices, OOM behaviour,
   MapReduce-style overhead, and the Figure 15 counts' structure. *)

let specs () =
  let big = 64.0 *. 1024.0 *. 1024.0 in
  ( Engines.Engine.hawq ~mem_per_seg:big,
    Engines.Engine.impala ~mem_per_seg:5_000.0,
    Engines.Engine.presto ~mem_per_seg:100.0,
    Engines.Engine.stinger ~mem_per_seg:big )

let test_feature_rejection () =
  let _, impala, presto, stinger = specs () in
  let cte = Tpcds.Queries.get 31 (* cte_reuse *) in
  Alcotest.(check bool) "impala rejects WITH" true
    (Engines.Engine.supported impala cte <> []);
  Alcotest.(check bool) "stinger rejects WITH" true
    (Engines.Engine.supported stinger cte <> []);
  let corr = Tpcds.Queries.get 13 (* correlated_avg *) in
  List.iter
    (fun spec ->
      Alcotest.(check bool) "rejects correlation" true
        (Engines.Engine.supported spec corr <> []))
    [ impala; presto; stinger ]

let test_hawq_supports_everything () =
  let hawq, _, _, _ = specs () in
  List.iter
    (fun q ->
      Alcotest.(check (list string)) "no missing features" []
        (List.map Tpcds.Features.to_string (Engines.Engine.supported hawq q));
      Alcotest.(check (list string)) "no dialect gap" []
        (Engines.Engine.dialect_missing hawq q))
    (Lazy.force Tpcds.Queries.all)

let test_run_statuses () =
  let env = Lazy.force Fixtures.tpcds_env in
  let hawq, impala, presto, _ = specs () in
  let simple = Tpcds.Queries.get 1 in
  (* HAWQ executes *)
  let r = Engines.Engine.run hawq env simple in
  Alcotest.(check bool) "hawq ok" true (r.Engines.Engine.status = Engines.Engine.S_ok);
  Alcotest.(check bool) "hawq timed" true (r.Engines.Engine.sim_seconds <> None);
  (* Presto with a tiny budget dies with OOM on a fact join *)
  let r2 = Engines.Engine.run presto env simple in
  Alcotest.(check bool) "presto OOM" true
    (r2.Engines.Engine.status = Engines.Engine.S_oom);
  (* Impala rejects a correlated query before execution *)
  let r3 = Engines.Engine.run impala env (Tpcds.Queries.get 13) in
  (match r3.Engines.Engine.status with
  | Engines.Engine.S_unsupported _ -> ()
  | s -> Alcotest.failf "expected unsupported, got %s" (Engines.Engine.status_to_string s))

let test_stinger_overhead () =
  let env = Lazy.force Fixtures.tpcds_env in
  let hawq, _, _, stinger = specs () in
  let q = Tpcds.Queries.get 1 in
  let rh = Engines.Engine.run hawq env q in
  let rs = Engines.Engine.run stinger env q in
  match (rh.Engines.Engine.sim_seconds, rs.Engines.Engine.sim_seconds) with
  | Some th, Some ts ->
      Alcotest.(check bool)
        (Printf.sprintf "stinger much slower (%.4f vs %.4f)" th ts)
        true (ts > 4.0 *. th)
  | _ -> Alcotest.fail "both should execute"

let test_fig15_structure () =
  let env = Lazy.force Fixtures.tpcds_env in
  let hawq, impala, presto, stinger = specs () in
  let optimized spec =
    List.length
      (List.filter
         (fun q ->
           match Engines.Engine.optimize spec env q with
           | Ok _ -> true
           | Error _ -> false)
         (Lazy.force Tpcds.Queries.all))
  in
  let h = optimized hawq
  and i = optimized impala
  and p = optimized presto
  and s = optimized stinger in
  Alcotest.(check int) "HAWQ optimizes all 111" 111 h;
  (* the paper's ordering: HAWQ >> Stinger/Impala > Presto *)
  Alcotest.(check bool)
    (Printf.sprintf "ordering holds (%d/%d/%d/%d)" h i p s)
    true
    (h > i && h > s && i > p && s > p);
  Alcotest.(check bool) "hadoop engines support a small fraction" true
    (i < 45 && s < 45 && p < 25)

let test_same_results_across_engines () =
  (* every engine that executes a query must produce the same row count *)
  let env = Lazy.force Fixtures.tpcds_env in
  let hawq, impala, _, stinger = specs () in
  let q = Tpcds.Queries.get 1 in
  let rows spec =
    let r = Engines.Engine.run spec env q in
    r.Engines.Engine.rows
  in
  let h = rows hawq in
  Alcotest.(check bool) "hawq rows" true (h <> None);
  List.iter
    (fun spec ->
      match rows spec with
      | Some n -> Alcotest.(check (option int)) "same count" h (Some n)
      | None -> ())
    [ impala; stinger ]

let suite =
  [
    Alcotest.test_case "feature rejection" `Quick test_feature_rejection;
    Alcotest.test_case "hawq supports all" `Quick test_hawq_supports_everything;
    Alcotest.test_case "run statuses" `Quick test_run_statuses;
    Alcotest.test_case "stinger overhead" `Quick test_stinger_overhead;
    Alcotest.test_case "fig15 structure" `Slow test_fig15_structure;
    Alcotest.test_case "cross-engine agreement" `Quick test_same_results_across_engines;
  ]

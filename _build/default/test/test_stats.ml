open Ir

(* Tests for histograms, selectivity estimation and statistics derivation. *)

let ints lo hi = List.init (hi - lo + 1) (fun i -> Datum.Int (lo + i))

let close ?(eps = 1e-6) name a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s (%.4f vs %.4f)" name a b)
    true
    (Float.abs (a -. b) <= eps)

let test_build_totals () =
  let h = Stats.Histogram.build (ints 0 999) in
  close "total" 1000.0 (Stats.Histogram.total_rows h);
  close "ndv" 1000.0 (Stats.Histogram.ndv h);
  close "no nulls" 0.0 (Stats.Histogram.null_fraction h)

let test_build_with_nulls () =
  let vals = Datum.Null :: Datum.Null :: ints 1 8 in
  let h = Stats.Histogram.build vals in
  close "total includes nulls" 10.0 (Stats.Histogram.total_rows h);
  close "null fraction" 0.2 (Stats.Histogram.null_fraction h)

let test_select_eq () =
  let h = Stats.Histogram.build (ints 0 99) in
  let sel = Stats.Histogram.selectivity_cmp h Expr.Eq (Datum.Int 50) in
  close ~eps:0.005 "eq uniform" 0.01 sel;
  let out = Stats.Histogram.selectivity_cmp h Expr.Eq (Datum.Int 1000) in
  close "out of range" 0.0 out

let test_select_range () =
  let h = Stats.Histogram.build (ints 0 99) in
  let sel = Stats.Histogram.selectivity_cmp h Expr.Lt (Datum.Int 25) in
  Alcotest.(check bool) "quarterish" true (sel > 0.15 && sel < 0.35);
  let all = Stats.Histogram.selectivity_cmp h Expr.Ge (Datum.Int 0) in
  Alcotest.(check bool) "everything" true (all > 0.9)

let test_join_eq_cardinality () =
  (* R: 0..99 x10 each, S: 0..99 x5 each => |join| = 100 * 10 * 5 = 5000 *)
  let r =
    Stats.Histogram.build
      (List.concat_map (fun _ -> ints 0 99) (List.init 10 Fun.id))
  in
  let s =
    Stats.Histogram.build
      (List.concat_map (fun _ -> ints 0 99) (List.init 5 Fun.id))
  in
  let card, h = Stats.Histogram.join_eq r s in
  Alcotest.(check bool)
    (Printf.sprintf "join card ~5000 (got %.0f)" card)
    true
    (card > 3000.0 && card < 6500.0);
  Alcotest.(check bool) "result hist populated" true
    (Stats.Histogram.total_rows h > 0.0)

let test_join_eq_disjoint () =
  let r = Stats.Histogram.build (ints 0 49) in
  let s = Stats.Histogram.build (ints 100 149) in
  let card, _ = Stats.Histogram.join_eq r s in
  close "disjoint domains" 0.0 card

let test_skew () =
  let skewed =
    Stats.Histogram.build
      (List.concat
         [ List.init 900 (fun _ -> Datum.Int 1); ints 2 101 ])
  in
  Alcotest.(check bool) "skew detected" true (Stats.Histogram.skew skewed > 2.0);
  let uniform = Stats.Histogram.build (ints 0 999) in
  Alcotest.(check bool) "uniform low skew" true (Stats.Histogram.skew uniform < 1.5)

let test_scale () =
  let h = Stats.Histogram.build (ints 0 99) in
  let h2 = Stats.Histogram.scale h 0.5 in
  close "scaled" 50.0 (Stats.Histogram.total_rows h2)

(* --- relstats + selectivity --- *)

let mk_stats () =
  let a = Fixtures.col 1 "a" and b = Fixtures.col 2 "b" in
  let ha = Stats.Histogram.build (ints 0 99) in
  let hb =
    Stats.Histogram.build (List.concat_map (fun _ -> ints 0 9) (List.init 10 Fun.id))
  in
  (a, b, Stats.Relstats.make ~rows:100.0 [ (a, ha); (b, hb) ])

let test_apply_pred () =
  let a, _, stats = mk_stats () in
  let filtered =
    Stats.Selectivity.apply_pred stats
      (Expr.Cmp (Expr.Lt, Expr.Col a, Expr.Const (Datum.Int 50)))
  in
  let rows = Stats.Relstats.rows filtered in
  Alcotest.(check bool)
    (Printf.sprintf "about half (%.1f)" rows)
    true
    (rows > 35.0 && rows < 65.0);
  (* the filtered column's histogram tightened *)
  (match Stats.Relstats.col_hist filtered a with
  | Some h ->
      Alcotest.(check bool) "max below cut" true
        (match Stats.Histogram.max_value h with
        | Some v -> Datum.compare v (Datum.Int 50) <= 0
        | None -> false)
  | None -> Alcotest.fail "histogram dropped")

let test_conjunction_composes () =
  let a, b, stats = mk_stats () in
  let pred =
    Expr.And
      [
        Expr.Cmp (Expr.Lt, Expr.Col a, Expr.Const (Datum.Int 50));
        Expr.Cmp (Expr.Eq, Expr.Col b, Expr.Const (Datum.Int 3));
      ]
  in
  let filtered = Stats.Selectivity.apply_pred stats pred in
  let rows = Stats.Relstats.rows filtered in
  Alcotest.(check bool)
    (Printf.sprintf "conjunction ~5 (%.1f)" rows)
    true
    (rows > 1.0 && rows < 12.0)

let test_or_selectivity () =
  let a, _, stats = mk_stats () in
  let pred =
    Expr.Or
      [
        Expr.Cmp (Expr.Lt, Expr.Col a, Expr.Const (Datum.Int 10));
        Expr.Cmp (Expr.Ge, Expr.Col a, Expr.Const (Datum.Int 90));
      ]
  in
  let sel = Stats.Selectivity.selectivity stats pred in
  Alcotest.(check bool)
    (Printf.sprintf "or ~0.2 (%.3f)" sel)
    true
    (sel > 0.1 && sel < 0.35)

let test_derive_join () =
  let f = Colref.Factory.create () in
  let a = Colref.Factory.fresh f ~name:"a" ~ty:Dtype.Int in
  let b = Colref.Factory.fresh f ~name:"b" ~ty:Dtype.Int in
  let sa = Stats.Relstats.make ~rows:100.0 [ (a, Stats.Histogram.build (ints 0 99)) ] in
  let sb =
    Stats.Relstats.make ~rows:1000.0
      [ (b, Stats.Histogram.build (List.concat_map (fun _ -> ints 0 99) (List.init 10 Fun.id))) ]
  in
  let joined =
    Stats.Derive.join_stats Expr.Inner
      (Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b))
      sa sb
      ~outer_cols:(Colref.Set.singleton a)
      ~inner_cols:(Colref.Set.singleton b)
  in
  let rows = Stats.Relstats.rows joined in
  Alcotest.(check bool)
    (Printf.sprintf "fk join ~1000 (%.0f)" rows)
    true
    (rows > 500.0 && rows < 2000.0)

let test_derive_semi_anti () =
  let f = Colref.Factory.create () in
  let a = Colref.Factory.fresh f ~name:"a" ~ty:Dtype.Int in
  let b = Colref.Factory.fresh f ~name:"b" ~ty:Dtype.Int in
  let sa = Stats.Relstats.make ~rows:100.0 [ (a, Stats.Histogram.build (ints 0 99)) ] in
  let sb = Stats.Relstats.make ~rows:50.0 [ (b, Stats.Histogram.build (ints 0 49)) ] in
  let cond = Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) in
  let semi =
    Stats.Derive.join_stats Expr.Semi cond sa sb
      ~outer_cols:(Colref.Set.singleton a) ~inner_cols:(Colref.Set.singleton b)
  in
  let anti =
    Stats.Derive.join_stats Expr.Anti_semi cond sa sb
      ~outer_cols:(Colref.Set.singleton a) ~inner_cols:(Colref.Set.singleton b)
  in
  Alcotest.(check bool) "semi bounded by outer" true
    (Stats.Relstats.rows semi <= 100.0);
  close ~eps:0.5 "semi + anti = outer" 100.0
    (Stats.Relstats.rows semi +. Stats.Relstats.rows anti)

let test_derive_gb_agg () =
  let f = Colref.Factory.create () in
  let a = Colref.Factory.fresh f ~name:"a" ~ty:Dtype.Int in
  let out = Colref.Factory.fresh f ~name:"cnt" ~ty:Dtype.Int in
  let sa =
    Stats.Relstats.make ~rows:1000.0
      [ (a, Stats.Histogram.build (List.concat_map (fun _ -> ints 0 9) (List.init 100 Fun.id))) ]
  in
  let agg =
    { Expr.agg_kind = Expr.Count_star; agg_arg = None; agg_distinct = false; agg_out = out }
  in
  let grouped = Stats.Derive.gb_agg_stats [ a ] [ agg ] sa in
  let rows = Stats.Relstats.rows grouped in
  Alcotest.(check bool)
    (Printf.sprintf "ndv groups (%.1f)" rows)
    true
    (rows >= 9.0 && rows <= 12.0);
  let scalar = Stats.Derive.gb_agg_stats [] [ agg ] sa in
  close "scalar agg one row" 1.0 (Stats.Relstats.rows scalar)

(* --- property-based tests --- *)

let datum_int_gen = QCheck.Gen.map (fun n -> Datum.Int n) (QCheck.Gen.int_bound 500)

let values_gen = QCheck.Gen.list_size (QCheck.Gen.int_range 1 300) datum_int_gen

let prop_build_conserves_rows =
  QCheck.Test.make ~count:100 ~name:"histogram build conserves row count"
    (QCheck.make values_gen)
    (fun values ->
      let h = Stats.Histogram.build values in
      Float.abs (Stats.Histogram.total_rows h -. float_of_int (List.length values))
      < 0.5)

let prop_filter_bounded =
  QCheck.Test.make ~count:100 ~name:"filtered histogram never grows"
    (QCheck.make (QCheck.Gen.pair values_gen (QCheck.Gen.int_bound 500)))
    (fun (values, cut) ->
      values <> []
      &&
      let h = Stats.Histogram.build values in
      List.for_all
        (fun op ->
          let f = Stats.Histogram.select_cmp h op (Datum.Int cut) in
          Stats.Histogram.total_rows f
          <= Stats.Histogram.total_rows h +. 1e-6)
        [ Expr.Eq; Expr.Neq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ])

let prop_lt_ge_partition =
  QCheck.Test.make ~count:100 ~name:"P(<v) + P(>=v) ~ 1 - nulls"
    (QCheck.make (QCheck.Gen.pair values_gen (QCheck.Gen.int_bound 500)))
    (fun (values, cut) ->
      values <> []
      &&
      let h = Stats.Histogram.build values in
      let lt = Stats.Histogram.selectivity_cmp h Expr.Lt (Datum.Int cut) in
      let ge = Stats.Histogram.selectivity_cmp h Expr.Ge (Datum.Int cut) in
      lt +. ge <= 1.15 && lt +. ge >= 0.75)

let prop_join_bounded_by_cross =
  QCheck.Test.make ~count:60 ~name:"join cardinality bounded by cross product"
    (QCheck.make (QCheck.Gen.pair values_gen values_gen))
    (fun (va, vb) ->
      va <> [] && vb <> []
      &&
      let a = Stats.Histogram.build va and b = Stats.Histogram.build vb in
      let card, _ = Stats.Histogram.join_eq a b in
      card
      <= (Stats.Histogram.total_rows a *. Stats.Histogram.total_rows b) +. 1.0)

let prop_union_all_adds =
  QCheck.Test.make ~count:60 ~name:"union_all adds row counts"
    (QCheck.make (QCheck.Gen.pair values_gen values_gen))
    (fun (va, vb) ->
      let a = Stats.Histogram.build va and b = Stats.Histogram.build vb in
      let u = Stats.Histogram.union_all a b in
      Float.abs
        (Stats.Histogram.total_rows u
        -. (Stats.Histogram.total_rows a +. Stats.Histogram.total_rows b))
      < 0.5)

let suite =
  [
    Alcotest.test_case "build totals" `Quick test_build_totals;
    Alcotest.test_case "build with nulls" `Quick test_build_with_nulls;
    Alcotest.test_case "select eq" `Quick test_select_eq;
    Alcotest.test_case "select range" `Quick test_select_range;
    Alcotest.test_case "join cardinality" `Quick test_join_eq_cardinality;
    Alcotest.test_case "join disjoint" `Quick test_join_eq_disjoint;
    Alcotest.test_case "skew" `Quick test_skew;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "apply pred" `Quick test_apply_pred;
    Alcotest.test_case "conjunction composes" `Quick test_conjunction_composes;
    Alcotest.test_case "or selectivity" `Quick test_or_selectivity;
    Alcotest.test_case "derive join" `Quick test_derive_join;
    Alcotest.test_case "derive semi/anti" `Quick test_derive_semi_anti;
    Alcotest.test_case "derive group-by" `Quick test_derive_gb_agg;
    QCheck_alcotest.to_alcotest prop_build_conserves_rows;
    QCheck_alcotest.to_alcotest prop_filter_bounded;
    QCheck_alcotest.to_alcotest prop_lt_ge_partition;
    QCheck_alcotest.to_alcotest prop_join_bounded_by_cross;
    QCheck_alcotest.to_alcotest prop_union_all_adds;
  ]

open Ir
module Memo = Memolib.Memo

(* Tests for the search engine: request schedules and deep invariants over
   the optimization contexts of a fully optimized Memo. *)

let a = Fixtures.col 11 "a"
let b = Fixtures.col 12 "b"

let test_join_request_schedules () =
  let op =
    Expr.P_hash_join (Expr.Inner, [ (Expr.Col a, Expr.Col b) ], None)
  in
  let alts =
    Search.Requests.alternatives op ~req:Props.any_req
      ~child_out_cols:[ [ a ]; [ b ] ]
  in
  (* inner join: co-located + broadcast-inner + broadcast-outer + singleton *)
  Alcotest.(check int) "four alternatives" 4 (List.length alts);
  List.iter
    (fun reqs -> Alcotest.(check int) "binary" 2 (List.length reqs))
    alts;
  (* full outer: no broadcast variants *)
  let fo =
    Search.Requests.alternatives
      (Expr.P_hash_join (Expr.Full_outer, [ (Expr.Col a, Expr.Col b) ], None))
      ~req:Props.any_req ~child_out_cols:[ [ a ]; [ b ] ]
  in
  Alcotest.(check int) "full outer restricted" 2 (List.length fo);
  List.iter
    (fun reqs ->
      List.iter
        (fun (r : Props.req) ->
          Alcotest.(check bool) "no replicated requests" true
            (r.Props.rdist <> Props.Req_replicated))
        reqs)
    fo;
  (* left outer: broadcast-inner ok, broadcast-outer not *)
  let lo =
    Search.Requests.alternatives
      (Expr.P_hash_join (Expr.Left_outer, [ (Expr.Col a, Expr.Col b) ], None))
      ~req:Props.any_req ~child_out_cols:[ [ a ]; [ b ] ]
  in
  Alcotest.(check bool) "left outer keeps broadcast-inner" true
    (List.exists
       (fun reqs ->
         match reqs with
         | [ _; (r : Props.req) ] -> r.Props.rdist = Props.Req_replicated
         | _ -> false)
       lo);
  Alcotest.(check bool) "left outer drops broadcast-outer" true
    (not
       (List.exists
          (fun reqs ->
            match reqs with
            | [ (r : Props.req); _ ] -> r.Props.rdist = Props.Req_replicated
            | _ -> false)
          lo))

let test_agg_request_schedules () =
  let agg =
    { Expr.agg_kind = Expr.Count_star; agg_arg = None; agg_distinct = false;
      agg_out = Fixtures.col 13 "c" }
  in
  (* a global (no-keys) one-phase aggregate must run on the master *)
  let global =
    Search.Requests.alternatives
      (Expr.P_hash_agg (Expr.One_phase, [], [ agg ]))
      ~req:Props.any_req ~child_out_cols:[ [ a ] ]
  in
  Alcotest.(check bool) "global agg needs singleton" true
    (List.for_all
       (fun reqs ->
         match reqs with
         | [ (r : Props.req) ] -> r.Props.rdist = Props.Req_singleton
         | _ -> false)
       global);
  (* a partial aggregate takes anything *)
  let partial =
    Search.Requests.alternatives
      (Expr.P_hash_agg (Expr.Partial, [ a ], [ agg ]))
      ~req:Props.any_req ~child_out_cols:[ [ a ] ]
  in
  Alcotest.(check bool) "partial agg requests Any" true
    (List.for_all
       (fun reqs ->
         match reqs with
         | [ (r : Props.req) ] -> r.Props.rdist = Props.Any_dist
         | _ -> false)
       partial);
  (* a stream aggregate asks its child for group-key order *)
  let stream =
    Search.Requests.alternatives
      (Expr.P_stream_agg (Expr.One_phase, [ a ], [ agg ]))
      ~req:Props.any_req ~child_out_cols:[ [ a ] ]
  in
  Alcotest.(check bool) "stream agg requests order" true
    (List.for_all
       (fun reqs ->
         match reqs with
         | [ (r : Props.req) ] -> not (Sortspec.is_empty r.Props.rorder)
         | _ -> false)
       stream)

let test_filter_passes_request_through () =
  let req = { Props.rdist = Props.Req_singleton; rorder = [ Sortspec.asc a ] } in
  match
    Search.Requests.alternatives
      (Expr.P_filter (Expr.Const (Datum.Bool true)))
      ~req ~child_out_cols:[ [ a ] ]
  with
  | [ [ child ] ] ->
      Alcotest.(check bool) "same request" true (Props.req_equal child req)
  | _ -> Alcotest.fail "expected one pass-through alternative"

let test_project_blocks_lost_columns () =
  (* projecting away the ordering column must not pass the order through *)
  let projs = [ { Expr.proj_expr = Expr.Col b; proj_out = b } ] in
  let req = { Props.rdist = Props.Any_dist; rorder = [ Sortspec.asc a ] } in
  match
    Search.Requests.alternatives (Expr.P_project projs) ~req
      ~child_out_cols:[ [ a; b ] ]
  with
  | [ [ (child : Props.req) ] ] ->
      Alcotest.(check bool) "order dropped" true
        (Sortspec.is_empty child.Props.rorder)
  | _ -> Alcotest.fail "expected one alternative"

(* Deep invariant: after optimizing a real query, every recorded alternative
   delivers properties satisfying its context's request, every child context
   it references exists with a best plan, and the context best is minimal. *)
let test_context_invariants () =
  let _, report, _, _ =
    Fixtures.run_orca_sql
      "SELECT t1.a, count(*) AS c FROM t1, t2 WHERE t1.a = t2.b AND t2.a < \
       150 GROUP BY t1.a ORDER BY c DESC, t1.a LIMIT 7"
  in
  let memo = report.Orca.Optimizer.memo in
  let checked = ref 0 in
  List.iter
    (fun gid ->
      List.iter
        (fun (ctx : Memo.context) ->
          (match ctx.Memo.cx_best with
          | Some best ->
              List.iter
                (fun (alt : Memo.alternative) ->
                  incr checked;
                  Alcotest.(check bool) "alternative satisfies request" true
                    (Props.satisfies alt.Memo.a_derived ctx.Memo.cx_req);
                  Alcotest.(check bool) "best is minimal" true
                    (best.Memo.a_cost <= alt.Memo.a_cost +. 1e-9);
                  List.iter2
                    (fun cg cr ->
                      match Memo.find_context memo cg cr with
                      | Some cctx ->
                          Alcotest.(check bool) "child context has a plan" true
                            (cctx.Memo.cx_best <> None)
                      | None -> Alcotest.fail "dangling child context")
                    alt.Memo.a_gexpr.Memo.ge_children alt.Memo.a_child_reqs)
                ctx.Memo.cx_alts
          | None -> ()))
        (Memo.contexts_of_group memo gid))
    (Memo.group_ids memo);
  Alcotest.(check bool)
    (Printf.sprintf "checked %d alternatives" !checked)
    true (!checked > 20)

let test_goal_queue_effectiveness () =
  (* optimizing shares work through goal queues: hits must be substantial *)
  let _, report, _, _ =
    Fixtures.run_orca_sql
      "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY t1.a LIMIT 3"
  in
  Alcotest.(check bool)
    (Printf.sprintf "goal hits (%d)" report.Orca.Optimizer.goal_hits)
    true
    (report.Orca.Optimizer.goal_hits > 0)

let test_timeout_still_produces_plan () =
  let s = Lazy.force Fixtures.small in
  let accessor =
    Catalog.Accessor.create ~provider:s.Fixtures.provider ~cache:s.Fixtures.cache ()
  in
  let sql = "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY t1.a LIMIT 3" in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  (* a zero-millisecond exploration budget: the plan must still come out *)
  let config =
    Orca.Orca_config.with_stages
      (Lazy.force Fixtures.orca_config)
      [ Xform.Ruleset.stage ~timeout_ms:(Some 0.0) ~name:"rushed"
          Xform.Ruleset.default ]
  in
  let report = Orca.Optimizer.optimize ~config accessor query in
  let rows, _ = Exec.Executor.run s.Fixtures.cluster report.Orca.Optimizer.plan in
  Alcotest.(check bool) "correct under timeout" true
    (Fixtures.rows_equal rows (Fixtures.run_naive_sql sql))

let test_index_scan_end_to_end () =
  (* the date_dim d_date_sk index: an equality predicate should admit an
     IndexScan alternative, and whatever wins must execute correctly *)
  let cluster = Fixtures.tpcds_cluster () in
  let accessor = Fixtures.tpcds_accessor () in
  let sql = "SELECT d_year, d_moy FROM date_dim WHERE d_date_sk = 725" in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let config = Orca.Orca_config.with_segments Orca.Orca_config.default 4 in
  let report = Orca.Optimizer.optimize ~config accessor query in
  let memo = report.Orca.Optimizer.memo in
  let has_index_alternative =
    List.exists
      (fun gid ->
        List.exists
          (fun (_, op) ->
            match op with Expr.P_index_scan _ -> true | _ -> false)
          (Memo.physical_exprs (Memo.group memo gid)))
      (Memo.group_ids memo)
  in
  Alcotest.(check bool) "index scan in the plan space" true
    has_index_alternative;
  let rows, _ = Exec.Executor.run cluster report.Orca.Optimizer.plan in
  Alcotest.(check bool) "correct result" true
    (Fixtures.rows_equal rows (Exec.Naive.run cluster query))

let suite =
  [
    Alcotest.test_case "join request schedules" `Quick test_join_request_schedules;
    Alcotest.test_case "agg request schedules" `Quick test_agg_request_schedules;
    Alcotest.test_case "filter pass-through" `Quick test_filter_passes_request_through;
    Alcotest.test_case "project blocks lost cols" `Quick test_project_blocks_lost_columns;
    Alcotest.test_case "context invariants" `Quick test_context_invariants;
    Alcotest.test_case "goal queue effectiveness" `Quick test_goal_queue_effectiveness;
    Alcotest.test_case "timeout still plans" `Quick test_timeout_still_produces_plan;
    Alcotest.test_case "index scan end to end" `Quick test_index_scan_end_to_end;
  ]

open Ir

(* Tests for the mini-TPC-DS workload: schema coverage, data generation
   (determinism, FK integrity, skew), query generation and feature tags. *)

let db = lazy (Tpcds.Datagen.generate ~sf:0.05 ())

let test_schema_inventory () =
  Alcotest.(check int) "25 tables (paper: \"TPC-DS with its 25 tables\")" 25
    (List.length Tpcds.Schema.tables);
  let facts =
    List.filter (fun s -> s.Tpcds.Schema.is_fact) Tpcds.Schema.tables
  in
  Alcotest.(check int) "seven fact tables" 7 (List.length facts);
  List.iter
    (fun (spec : Tpcds.Schema.table_spec) ->
      Alcotest.(check bool)
        (spec.Tpcds.Schema.tname ^ " facts are partitioned")
        true
        (spec.Tpcds.Schema.part_col <> None))
    facts

let test_datagen_deterministic () =
  let a = Tpcds.Datagen.generate ~sf:0.02 () in
  let b = Tpcds.Datagen.generate ~sf:0.02 () in
  List.iter
    (fun (spec : Tpcds.Schema.table_spec) ->
      let name = spec.Tpcds.Schema.tname in
      Alcotest.(check bool) (name ^ " identical") true
        (Tpcds.Datagen.table_rows a name = Tpcds.Datagen.table_rows b name))
    Tpcds.Schema.tables

let test_datagen_row_counts_scale () =
  let small = Tpcds.Datagen.generate ~sf:0.05 () in
  let larger = Tpcds.Datagen.generate ~sf:0.2 () in
  let n db t = List.length (Tpcds.Datagen.table_rows db t) in
  Alcotest.(check bool) "facts scale" true
    (n larger "store_sales" > 3 * n small "store_sales");
  Alcotest.(check int) "date_dim fixed" (n small "date_dim") (n larger "date_dim")

let test_fk_integrity () =
  let db = Lazy.force db in
  let keys name pos =
    List.fold_left
      (fun acc r ->
        match r.(pos) with Datum.Int v -> max acc v | _ -> acc)
      0
      (Tpcds.Datagen.table_rows db name)
  in
  let items = List.length (Tpcds.Datagen.table_rows db "item") in
  let custs = List.length (Tpcds.Datagen.table_rows db "customer") in
  let spec = Tpcds.Schema.find "store_sales" in
  let item_pos = Tpcds.Schema.col_position spec "ss_item_sk" in
  let cust_pos = Tpcds.Schema.col_position spec "ss_customer_sk" in
  Alcotest.(check bool) "item fks in range" true (keys "store_sales" item_pos < items);
  Alcotest.(check bool) "customer fks in range" true
    (keys "store_sales" cust_pos < custs);
  let date_pos = Tpcds.Schema.col_position spec "ss_sold_date_sk" in
  Alcotest.(check bool) "date fks in range" true
    (keys "store_sales" date_pos < Tpcds.Schema.ndates)

let test_item_skew () =
  let db = Lazy.force db in
  let spec = Tpcds.Schema.find "store_sales" in
  let pos = Tpcds.Schema.col_position spec "ss_item_sk" in
  let counts = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match r.(pos) with
      | Datum.Int v ->
          Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
      | _ -> ())
    (Tpcds.Datagen.table_rows db "store_sales");
  let total = Hashtbl.fold (fun _ c a -> a + c) counts 0 in
  let max_c = Hashtbl.fold (fun _ c a -> max a c) counts 0 in
  let n_items = Hashtbl.length counts in
  Alcotest.(check bool) "popular item well above uniform" true
    (float_of_int max_c > 3.0 *. (float_of_int total /. float_of_int n_items))

let test_metadata_and_stats () =
  let db = Lazy.force db in
  let provider = Tpcds.Datagen.provider db in
  let cache = Catalog.Md_cache.create () in
  let accessor = Catalog.Accessor.create ~provider ~cache () in
  let ss = Option.get (Catalog.Accessor.bind_table accessor "store_sales") in
  Alcotest.(check bool) "partitioned" true (Table_desc.is_partitioned ss);
  Alcotest.(check int) "yearly partitions" Tpcds.Schema.nyears
    (Table_desc.npartitions ss);
  let stats = Catalog.Accessor.base_stats accessor ss in
  let actual = List.length (Tpcds.Datagen.table_rows db "store_sales") in
  Alcotest.(check bool) "stats row count truthful" true
    (Float.abs (Stats.Relstats.rows stats -. float_of_int actual) < 1.0);
  let dd = Option.get (Catalog.Accessor.bind_table accessor "date_dim") in
  Alcotest.(check bool) "dimension replicated" true
    (dd.Table_desc.dist = Table_desc.Dist_replicated)

let test_queries_inventory () =
  let defs = Lazy.force Tpcds.Queries.all in
  Alcotest.(check int) "111 queries" 111 (List.length defs);
  (* qids are 1..111 and unique *)
  let ids = List.map (fun d -> d.Tpcds.Queries.qid) defs in
  Alcotest.(check (list int)) "sequential ids" (List.init 111 (fun i -> i + 1)) ids

let test_queries_parse_and_bind () =
  let env = Lazy.force Fixtures.tpcds_env in
  List.iter
    (fun (q : Tpcds.Queries.def) ->
      let accessor =
        Catalog.Accessor.create ~provider:env.Engines.Engine.provider
          ~cache:env.Engines.Engine.cache ()
      in
      let query = Sqlfront.Binder.bind_sql accessor q.Tpcds.Queries.sql in
      Ltree.validate query.Dxl.Dxl_query.tree)
    (Lazy.force Tpcds.Queries.all)

let test_feature_tags_consistent () =
  let defs = Lazy.force Tpcds.Queries.all in
  (* correlated templates are tagged, and the tag matches binding reality *)
  List.iter
    (fun (q : Tpcds.Queries.def) ->
      if q.Tpcds.Queries.correlated then
        Alcotest.(check bool)
          (Printf.sprintf "q%d tagged correlated" q.Tpcds.Queries.qid)
          true
          (List.mem Tpcds.Features.F_correlated_subquery q.Tpcds.Queries.features))
    defs;
  (* feature mix sanity: the workload exercises the interesting features *)
  let count f =
    List.length (List.filter (fun q -> Tpcds.Queries.has_feature q f) defs)
  in
  Alcotest.(check bool) "correlated present" true
    (count Tpcds.Features.F_correlated_subquery >= 10);
  Alcotest.(check bool) "with present" true (count Tpcds.Features.F_with >= 10);
  Alcotest.(check bool) "setops present" true
    (count Tpcds.Features.F_intersect + count Tpcds.Features.F_except >= 6);
  Alcotest.(check bool) "outer joins present" true
    (count Tpcds.Features.F_outer_join >= 5)

let suite =
  [
    Alcotest.test_case "schema inventory" `Quick test_schema_inventory;
    Alcotest.test_case "datagen deterministic" `Quick test_datagen_deterministic;
    Alcotest.test_case "datagen scaling" `Quick test_datagen_row_counts_scale;
    Alcotest.test_case "fk integrity" `Quick test_fk_integrity;
    Alcotest.test_case "item skew" `Quick test_item_skew;
    Alcotest.test_case "metadata and stats" `Quick test_metadata_and_stats;
    Alcotest.test_case "111 queries" `Quick test_queries_inventory;
    Alcotest.test_case "all queries bind" `Slow test_queries_parse_and_bind;
    Alcotest.test_case "feature tags" `Quick test_feature_tags_consistent;
  ]

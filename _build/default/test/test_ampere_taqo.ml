open Ir

(* Tests for the verifiability tools: AMPERe capture/replay (§6.1) and TAQO
   (§6.2). *)

let capture_dump () =
  let s = Lazy.force Fixtures.small in
  let recording, _ = Catalog.Provider.recording s.Fixtures.provider in
  let accessor =
    Catalog.Accessor.create ~provider:recording
      ~cache:(Catalog.Md_cache.create ()) ()
  in
  let sql =
    "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b AND t2.a < 100 ORDER BY t1.a LIMIT 4"
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let report =
    Orca.Optimizer.optimize ~config:(Lazy.force Fixtures.orca_config) accessor query
  in
  ( Orca.Ampere.capture ~expected_plan:report.Orca.Optimizer.plan accessor
      query,
    report )

let test_dump_roundtrip () =
  let dump, _ = capture_dump () in
  let text = Orca.Ampere.to_string dump in
  let dump' = Orca.Ampere.of_string text in
  Alcotest.(check int) "metadata objects survive"
    (List.length dump.Orca.Ampere.metadata)
    (List.length dump'.Orca.Ampere.metadata);
  Alcotest.(check bool) "expected plan survives" true
    (Option.is_some dump'.Orca.Ampere.expected_plan);
  Alcotest.(check string) "serialization stable" text (Orca.Ampere.to_string dump')

let test_dump_captures_minimal_metadata () =
  let dump, _ = capture_dump () in
  (* exactly the two touched relations + their stats, nothing else *)
  Alcotest.(check int) "4 objects" 4 (List.length dump.Orca.Ampere.metadata)

let test_replay_reproduces_plan () =
  let dump, report = capture_dump () in
  let text = Orca.Ampere.to_string dump in
  let dump' = Orca.Ampere.of_string text in
  (* replay with no backend: the file-based provider serves the metadata *)
  let replayed = Orca.Ampere.replay ~config:(Lazy.force Fixtures.orca_config) dump' in
  Alcotest.(check string) "identical plan"
    (Dxl.Dxl_plan.to_string report.Orca.Optimizer.plan)
    (Dxl.Dxl_plan.to_string replayed.Orca.Optimizer.plan);
  (* verify() agrees *)
  (match Orca.Ampere.verify ~config:(Lazy.force Fixtures.orca_config) dump' with
  | Orca.Ampere.Replay_match -> ()
  | Orca.Ampere.Replay_plan_diff d -> Alcotest.failf "plan diff: %s" d
  | Orca.Ampere.Replay_failed m -> Alcotest.failf "replay failed: %s" m)

let test_replay_detects_plan_change () =
  let dump, _ = capture_dump () in
  (* simulate a cost-model change by replaying with a different model *)
  let model =
    { Cost.Cost_model.default with Cost.Cost_model.net_tuple_cost = 500.0 }
  in
  let config = { (Lazy.force Fixtures.orca_config) with Orca.Orca_config.model } in
  match Orca.Ampere.verify ~config dump with
  | Orca.Ampere.Replay_match | Orca.Ampere.Replay_plan_diff _ -> ()
  | Orca.Ampere.Replay_failed m -> Alcotest.failf "replay failed: %s" m

let test_dump_with_stacktrace () =
  let accessor = Fixtures.small_accessor () in
  let query = Sqlfront.Binder.bind_sql accessor "SELECT a FROM t1" in
  let dump =
    Orca.Ampere.capture_exn accessor query (Failure "synthetic crash")
      "frame1\nframe2"
  in
  let dump' = Orca.Ampere.of_string (Orca.Ampere.to_string dump) in
  match dump'.Orca.Ampere.stacktrace with
  | Some st ->
      Alcotest.(check bool) "stack preserved" true
        (String.length st > 0)
  | None -> Alcotest.fail "stacktrace lost"

let test_auto_capture_on_failure () =
  (* a correlated query under a decorrelation-free config is unsupported;
     optimize_with_capture must return a replayable dump, not crash *)
  let accessor = Fixtures.small_accessor () in
  let sql =
    "SELECT a FROM t1 WHERE b > (SELECT avg(t2.b) FROM t2 WHERE t2.a = t1.a)"
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let config =
    Orca.Orca_config.without_decorrelation (Lazy.force Fixtures.orca_config)
  in
  (match Orca.Ampere.optimize_with_capture ~config accessor query with
  | Ok _ -> Alcotest.fail "expected the optimization to fail"
  | Error dump ->
      (match dump.Orca.Ampere.stacktrace with
      | Some st ->
          Alcotest.(check bool) "error message embedded" true
            (String.length st > 0)
      | None -> Alcotest.fail "no stacktrace in auto-captured dump");
      Alcotest.(check bool) "metadata working set embedded" true
        (dump.Orca.Ampere.metadata <> []);
      (* the dump round-trips through DXL *)
      let dump' = Orca.Ampere.of_string (Orca.Ampere.to_string dump) in
      Alcotest.(check int) "metadata survives" 
        (List.length dump.Orca.Ampere.metadata)
        (List.length dump'.Orca.Ampere.metadata));
  (* and a healthy optimization passes through untouched *)
  let accessor2 = Fixtures.small_accessor () in
  let q2 = Sqlfront.Binder.bind_sql accessor2 "SELECT a FROM t1 LIMIT 1" in
  match
    Orca.Ampere.optimize_with_capture
      ~config:(Lazy.force Fixtures.orca_config) accessor2 q2
  with
  | Ok report ->
      Alcotest.(check bool) "plan produced" true
        (Ir.Plan_ops.validate report.Orca.Optimizer.plan > 0)
  | Error _ -> Alcotest.fail "healthy optimization must not dump"

let test_dump_file_io () =
  let dump, _ = capture_dump () in
  let path = Filename.temp_file "ampere" ".xml" in
  Orca.Ampere.save dump path;
  let dump' = Orca.Ampere.load path in
  Sys.remove path;
  Alcotest.(check string) "file roundtrip" (Orca.Ampere.to_string dump)
    (Orca.Ampere.to_string dump')

(* --- TAQO --- *)

let taqo_report () =
  let _, report, _, _ =
    Fixtures.run_orca_sql
      "SELECT t1.a, count(*) AS c FROM t1, t2 WHERE t1.a = t2.b GROUP BY t1.a \
       ORDER BY t1.a LIMIT 10"
  in
  report

let test_sampled_plans_valid_and_equivalent () =
  let report = taqo_report () in
  let s = Lazy.force Fixtures.small in
  let plans = Orca.Taqo.sample_plans ~n:10 report in
  Alcotest.(check bool) "several distinct plans" true (List.length plans >= 3);
  let reference, _ = Exec.Executor.run s.Fixtures.cluster (List.hd plans) in
  List.iter
    (fun plan ->
      ignore (Plan_ops.validate plan);
      let rows, _ = Exec.Executor.run s.Fixtures.cluster plan in
      (* every plan in the space must compute the same result *)
      Alcotest.(check bool) "equivalent result" true
        (Fixtures.rows_equal rows reference))
    plans

let test_sampled_costs_vary () =
  let report = taqo_report () in
  let plans = Orca.Taqo.sample_plans ~n:10 report in
  let costs = List.map (fun (p : Expr.plan) -> p.Expr.pcost) plans in
  let distinct = List.sort_uniq compare costs in
  Alcotest.(check bool) "estimated costs differ across plans" true
    (List.length distinct >= 2)

let test_taqo_outcome () =
  let report = taqo_report () in
  let s = Lazy.force Fixtures.small in
  let outcome =
    Orca.Taqo.run ~n:10 report ~execute:(fun p ->
        let _, m = Exec.Executor.run s.Fixtures.cluster p in
        m.Exec.Metrics.sim_seconds)
  in
  Alcotest.(check bool) "score in range" true
    (outcome.Orca.Taqo.score >= -1.0 && outcome.Orca.Taqo.score <= 1.0);
  Alcotest.(check bool) "space counted" true (outcome.Orca.Taqo.plans_in_space >= 1.0);
  Alcotest.(check bool) "chosen plan rank computed" true
    (outcome.Orca.Taqo.best_rank >= 1)

let test_correlation_score_perfect_and_inverted () =
  let mk est actual =
    {
      Orca.Taqo.plan =
        Plan_ops.node (Expr.P_const_table ([], [])) [] ~est_rows:0.0 ~cost:est;
      estimated = est;
      actual;
    }
  in
  let perfect = List.init 6 (fun i -> mk (float_of_int i) (float_of_int i *. 2.0)) in
  Alcotest.(check bool) "perfect ordering -> 1" true
    (Orca.Taqo.correlation_score perfect > 0.99);
  let inverted =
    List.init 6 (fun i -> mk (float_of_int i) (float_of_int (10 - i)))
  in
  Alcotest.(check bool) "inverted ordering -> -1" true
    (Orca.Taqo.correlation_score inverted < -0.99)

let suite =
  [
    Alcotest.test_case "dump roundtrip" `Quick test_dump_roundtrip;
    Alcotest.test_case "minimal metadata" `Quick test_dump_captures_minimal_metadata;
    Alcotest.test_case "replay reproduces plan" `Quick test_replay_reproduces_plan;
    Alcotest.test_case "replay detects changes" `Quick test_replay_detects_plan_change;
    Alcotest.test_case "stacktrace capture" `Quick test_dump_with_stacktrace;
    Alcotest.test_case "auto capture on failure" `Quick
      test_auto_capture_on_failure;
    Alcotest.test_case "dump file io" `Quick test_dump_file_io;
    Alcotest.test_case "sampled plans equivalent" `Slow test_sampled_plans_valid_and_equivalent;
    Alcotest.test_case "sampled costs vary" `Quick test_sampled_costs_vary;
    Alcotest.test_case "taqo outcome" `Quick test_taqo_outcome;
    Alcotest.test_case "correlation score" `Quick test_correlation_score_perfect_and_inverted;
  ]

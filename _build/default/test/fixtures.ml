open Ir

(* Shared test fixtures: a small two-table catalog + cluster, and a tiny
   mini-TPC-DS environment (built once, lazily). *)

let nsegs = 4

let rng_seed = 1234

(* --- small t1/t2 database --- *)

type small = {
  provider : Catalog.Provider.t;
  cache : Catalog.Md_cache.t;
  cluster : Exec.Cluster.t;
  t1_rows : Datum.t array list;
  t2_rows : Datum.t array list;
}

let make_small () =
  let rng = Gpos.Prng.create rng_seed in
  let t1_rows =
    List.init 500 (fun i ->
        [| Datum.Int (i mod 100); Datum.Int (Gpos.Prng.int rng 300) |])
  in
  let t2_rows =
    List.init 1200 (fun _ ->
        [| Datum.Int (Gpos.Prng.int rng 300); Datum.Int (Gpos.Prng.int rng 100) |])
  in
  let hist rows pos = Stats.Histogram.build (List.map (fun r -> r.(pos)) rows) in
  let rel name oid =
    Catalog.Metadata.rel_make
      ~dist:(Catalog.Metadata.Hash_cols [ 0 ])
      ~mdid:(Catalog.Md_id.make oid) ~name
      [
        { Catalog.Metadata.col_name = "a"; col_type = Dtype.Int };
        { Catalog.Metadata.col_name = "b"; col_type = Dtype.Int };
      ]
  in
  let stats oid rows =
    {
      Catalog.Metadata.st_mdid = Catalog.Md_id.make oid;
      st_rows = float_of_int (List.length rows);
      st_col_hists = [ (0, hist rows 0); (1, hist rows 1) ];
    }
  in
  let provider =
    Catalog.Provider.of_objects ~name:"small"
      [
        Catalog.Metadata.Rel (rel "t1" 100);
        Catalog.Metadata.Rel (rel "t2" 200);
        Catalog.Metadata.Rel_stats (stats 100 t1_rows);
        Catalog.Metadata.Rel_stats (stats 200 t2_rows);
      ]
  in
  let cluster = Exec.Cluster.create ~nsegs () in
  Exec.Cluster.load_table cluster ~name:"t1" ~dist:(Exec.Cluster.By_hash [ 0 ]) t1_rows;
  Exec.Cluster.load_table cluster ~name:"t2" ~dist:(Exec.Cluster.By_hash [ 0 ]) t2_rows;
  { provider; cache = Catalog.Md_cache.create (); cluster; t1_rows; t2_rows }

let small = lazy (make_small ())

let small_accessor () =
  let s = Lazy.force small in
  Catalog.Accessor.create ~provider:s.provider ~cache:s.cache ()

let orca_config =
  lazy (Orca.Orca_config.with_segments Orca.Orca_config.default nsegs)

(* SQL -> optimized plan -> executed rows, on the small database. *)
let run_orca_sql sql =
  let s = Lazy.force small in
  let accessor = small_accessor () in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let report =
    Orca.Optimizer.optimize ~config:(Lazy.force orca_config) accessor query
  in
  let rows, metrics = Exec.Executor.run s.cluster report.Orca.Optimizer.plan in
  (query, report, rows, metrics)

let run_naive_sql sql =
  let s = Lazy.force small in
  let accessor = small_accessor () in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  Exec.Naive.run s.cluster query

let run_planner_sql sql =
  let s = Lazy.force small in
  let accessor = small_accessor () in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let plan =
    Planner.Legacy_planner.plan_sql
      ~config:{ Planner.Legacy_planner.segments = nsegs; dp_limit = 5; broadcast_inner = false }
      accessor query
  in
  let rows, metrics = Exec.Executor.run s.cluster plan in
  (plan, rows, metrics)

(* normalized row text for order-insensitive comparison *)
let norm rows =
  List.sort compare
    (List.map
       (fun r ->
         String.concat ","
           (List.map
              (fun d ->
                match d with
                | Datum.Float f -> Printf.sprintf "%.5f" f
                | d -> Datum.to_string d)
              (Array.to_list r)))
       rows)

let rows_equal a b = norm a = norm b

(* --- tiny mini-TPC-DS environment --- *)

let tpcds_env =
  lazy
    (let db = Tpcds.Datagen.generate ~sf:0.05 () in
     Engines.Engine.create_env ~nsegs db)

let tpcds_cluster () =
  Engines.Engine.cluster_for (Lazy.force tpcds_env)
    ~mem_per_seg:(64.0 *. 1024.0 *. 1024.0)

let tpcds_accessor () =
  let env = Lazy.force tpcds_env in
  Catalog.Accessor.create ~provider:env.Engines.Engine.provider
    ~cache:env.Engines.Engine.cache ()

(* --- common colref helpers --- *)

let col id name = Colref.make ~id ~name ~ty:Dtype.Int

open Ir

(* Integration tests for the full Orca pipeline: correctness against the
   naive oracle, plan-shape expectations, multi-stage optimization, parallel
   workers, configuration. *)

let check_against_naive sql =
  let _, report, rows, _ = Fixtures.run_orca_sql sql in
  ignore (Plan_ops.validate report.Orca.Optimizer.plan);
  let expected = Fixtures.run_naive_sql sql in
  Alcotest.(check bool)
    (Printf.sprintf "results match naive: %s" sql)
    true
    (Fixtures.rows_equal rows expected);
  report

let test_correctness_fixture_set () =
  List.iter
    (fun sql -> ignore (check_against_naive sql))
    [
      "SELECT a, b FROM t1 WHERE a < 20 ORDER BY a, b";
      "SELECT t1.a, t2.b FROM t1, t2 WHERE t1.a = t2.b AND t2.a < 100 ORDER BY 1, 2 LIMIT 50";
      "SELECT a, count(*) AS c, sum(b) AS s FROM t1 GROUP BY a HAVING count(*) > 3 ORDER BY c DESC, a LIMIT 10";
      "SELECT DISTINCT b FROM t2 WHERE b < 20 ORDER BY b";
      "SELECT x.a FROM t1 x, t1 y WHERE x.a = y.a AND y.b < 100 ORDER BY 1 LIMIT 20";
      "SELECT a FROM t1 WHERE a IN (SELECT b FROM t2 WHERE t2.a > 250) ORDER BY a";
      "SELECT a FROM t1 WHERE NOT EXISTS (SELECT 1 FROM t2 WHERE t2.b = t1.a) ORDER BY a";
      "SELECT t1.a, (SELECT min(t2.a) FROM t2 WHERE t2.b = t1.a) AS m FROM t1 WHERE t1.b < 30 ORDER BY 1";
      "WITH w AS (SELECT a, count(*) AS c FROM t1 GROUP BY a) SELECT w1.a FROM w w1, w w2 WHERE w1.a = w2.a AND w1.c > 2 ORDER BY 1";
      "SELECT a FROM t1 WHERE a < 5 UNION ALL SELECT b FROM t2 WHERE b < 5 ORDER BY a";
      "SELECT a FROM t1 INTERSECT SELECT b FROM t2 ORDER BY 1 LIMIT 20";
      "SELECT a FROM t1 EXCEPT SELECT b FROM t2 ORDER BY 1 LIMIT 20";
      "SELECT t1.a, t2.a FROM t1 LEFT JOIN t2 ON t1.a = t2.b AND t2.a > 290 ORDER BY 1, 2 LIMIT 30";
      "SELECT count(*) AS c FROM t1 WHERE b BETWEEN 50 AND 60";
      "SELECT CASE WHEN a < 50 THEN 'low' ELSE 'high' END AS bucket, count(*) AS c FROM t1 GROUP BY 1 ORDER BY 1";
      "SELECT CASE WHEN b < 150 THEN 0 ELSE 1 END AS big, sum(a) AS s FROM t1 GROUP BY big ORDER BY big";
    ]

let test_plan_satisfies_request () =
  (* the extracted plan delivers the root request: singleton + order *)
  let _, report, _, _ =
    Fixtures.run_orca_sql "SELECT a FROM t1 ORDER BY a DESC LIMIT 10"
  in
  let rec derived (p : Expr.plan) =
    Physical_ops.derive p.Expr.pop (List.map derived p.Expr.pchildren)
  in
  let d = derived report.Orca.Optimizer.plan in
  Alcotest.(check bool) "singleton delivered" true
    (d.Props.ddist = Props.D_singleton)

let test_running_example_shape () =
  (* the paper's running example: expect a motion + a join; no cross product *)
  let _, report, _, _ =
    Fixtures.run_orca_sql
      "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY t1.a"
  in
  let plan = report.Orca.Optimizer.plan in
  let has_join =
    Plan_ops.contains
      (fun n ->
        match n.Expr.pop with
        | Expr.P_hash_join _ | Expr.P_merge_join _ | Expr.P_nl_join _ -> true
        | _ -> false)
      plan
  in
  Alcotest.(check bool) "join present" true has_join;
  Alcotest.(check bool) "motions present" true (Plan_ops.count_motions plan >= 1);
  Alcotest.(check bool) "memo explored alternatives" true
    (report.Orca.Optimizer.gexprs > 5)

let test_join_order_uses_statistics () =
  (* selective filter on t2 should put the filtered side on the build side or
     at least avoid gathering everything; cheapest plan must beat the worst
     alternative by construction — verify cost < naive gather-everything *)
  let _, report, _, metrics =
    Fixtures.run_orca_sql
      "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b AND t2.a = 1 ORDER BY t1.a LIMIT 5"
  in
  Alcotest.(check bool) "rows moved bounded" true
    (metrics.Exec.Metrics.rows_moved < 600.0);
  Alcotest.(check bool) "cost positive" true
    (report.Orca.Optimizer.plan.Expr.pcost > 0.0)

let test_partition_elimination_plan () =
  (* partitioned fact: the date filter must prune partitions in the scan *)
  let env = Lazy.force Fixtures.tpcds_env in
  let cluster = Fixtures.tpcds_cluster () in
  let accessor = Fixtures.tpcds_accessor () in
  let sql =
    "SELECT count(*) AS c FROM store_sales WHERE ss_sold_date_sk BETWEEN 360 AND 540"
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let config =
    Orca.Orca_config.with_segments Orca.Orca_config.default
      env.Engines.Engine.nsegs
  in
  let report = Orca.Optimizer.optimize ~config accessor query in
  let pruned_scan =
    Plan_ops.contains
      (fun n ->
        match n.Expr.pop with
        | Expr.P_table_scan (_, Some kept, _) -> List.length kept <= 2
        | _ -> false)
      report.Orca.Optimizer.plan
  in
  Alcotest.(check bool) "partitions pruned" true pruned_scan;
  let rows, _ = Exec.Executor.run cluster report.Orca.Optimizer.plan in
  let expected = Exec.Naive.run cluster query in
  Alcotest.(check bool) "result correct" true (Fixtures.rows_equal rows expected)

let test_two_phase_agg_plan () =
  (* grouping on a non-distribution key: the memo must contain Partial/Final
     alternatives (whether they win is a cost decision; at scale they do, see
     bench "ablate") *)
  let _, report, _, _ =
    Fixtures.run_orca_sql
      "SELECT b, count(*) AS c FROM t2 GROUP BY b ORDER BY b LIMIT 5"
  in
  let memo = report.Orca.Optimizer.memo in
  let has_partial_alternative =
    List.exists
      (fun gid ->
        List.exists
          (fun (_, op) ->
            match op with
            | Expr.L_gb_agg (Expr.Partial, _, _) -> true
            | _ -> false)
          (Memolib.Memo.logical_exprs (Memolib.Memo.group memo gid)))
      (Memolib.Memo.group_ids memo)
  in
  Alcotest.(check bool) "multi-stage alternative explored" true
    has_partial_alternative;
  (* at fact scale the optimizer does pick multi-stage aggregation *)
  let env = Lazy.force Fixtures.tpcds_env in
  let accessor = Fixtures.tpcds_accessor () in
  let query =
    Sqlfront.Binder.bind_sql accessor
      "SELECT ss_store_sk, count(*) AS c FROM store_sales GROUP BY        ss_store_sk ORDER BY c DESC LIMIT 5"
  in
  let config =
    Orca.Orca_config.with_segments Orca.Orca_config.default
      env.Engines.Engine.nsegs
  in
  let report2 = Orca.Optimizer.optimize ~config accessor query in
  let chosen_partial =
    Plan_ops.contains
      (fun n ->
        match n.Expr.pop with
        | Expr.P_hash_agg (Expr.Partial, _, _)
        | Expr.P_stream_agg (Expr.Partial, _, _) ->
            true
        | _ -> false)
      report2.Orca.Optimizer.plan
  in
  Alcotest.(check bool) "multi-stage chosen at scale" true chosen_partial

let test_cte_shared_once () =
  let _, report, _, _ =
    Fixtures.run_orca_sql
      "WITH w AS (SELECT a, count(*) AS c FROM t1 GROUP BY a) SELECT w1.a \
       FROM w w1, w w2 WHERE w1.a = w2.a ORDER BY 1 LIMIT 5"
  in
  let producers =
    Plan_ops.fold
      (fun n node ->
        match node.Expr.pop with Expr.P_cte_producer _ -> n + 1 | _ -> n)
      0 report.Orca.Optimizer.plan
  in
  let consumers =
    Plan_ops.fold
      (fun n node ->
        match node.Expr.pop with Expr.P_cte_consumer _ -> n + 1 | _ -> n)
      0 report.Orca.Optimizer.plan
  in
  Alcotest.(check int) "one producer" 1 producers;
  Alcotest.(check int) "two consumers" 2 consumers

let test_multi_stage_config () =
  let s = Lazy.force Fixtures.small in
  let accessor =
    Catalog.Accessor.create ~provider:s.Fixtures.provider ~cache:s.Fixtures.cache ()
  in
  let sql = "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY t1.a LIMIT 3" in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let config =
    Orca.Orca_config.with_stages
      (Lazy.force Fixtures.orca_config)
      (Xform.Ruleset.two_stage ~timeout_ms:1000.0 ~cost_threshold:1e12 ())
  in
  let report = Orca.Optimizer.optimize ~config accessor query in
  (* astronomically high threshold: the greedy stage suffices *)
  Alcotest.(check string) "stopped at first stage" "greedy"
    report.Orca.Optimizer.stage_name;
  let rows, _ = Exec.Executor.run s.Fixtures.cluster report.Orca.Optimizer.plan in
  Alcotest.(check bool) "still correct" true
    (Fixtures.rows_equal rows (Fixtures.run_naive_sql sql))

let test_parallel_workers_same_cost () =
  let s = Lazy.force Fixtures.small in
  let sql =
    "SELECT t1.a, count(*) AS c FROM t1, t2 WHERE t1.a = t2.b GROUP BY t1.a \
     ORDER BY c DESC LIMIT 3"
  in
  let run workers =
    let accessor =
      Catalog.Accessor.create ~provider:s.Fixtures.provider ~cache:s.Fixtures.cache ()
    in
    let query = Sqlfront.Binder.bind_sql accessor sql in
    let config =
      Orca.Orca_config.with_workers (Lazy.force Fixtures.orca_config) workers
    in
    let report = Orca.Optimizer.optimize ~config accessor query in
    report.Orca.Optimizer.plan.Expr.pcost
  in
  let c1 = run 1 and c4 = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "same best cost (%.2f vs %.2f)" c1 c4)
    true
    (Float.abs (c1 -. c4) /. Float.max c1 1.0 < 1e-6)

let test_disabled_rules_still_correct () =
  let s = Lazy.force Fixtures.small in
  let sql =
    "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b AND t2.a < 50 ORDER BY 1 LIMIT 10"
  in
  let accessor =
    Catalog.Accessor.create ~provider:s.Fixtures.provider ~cache:s.Fixtures.cache ()
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let config =
    Orca.Orca_config.without_rules
      (Lazy.force Fixtures.orca_config)
      [ "JoinCommutativity"; "JoinAssociativity"; "Join2HashJoin"; "SplitGbAgg" ]
  in
  let report = Orca.Optimizer.optimize ~config accessor query in
  let rows, _ = Exec.Executor.run s.Fixtures.cluster report.Orca.Optimizer.plan in
  Alcotest.(check bool) "correct without rules" true
    (Fixtures.rows_equal rows (Fixtures.run_naive_sql sql))

let test_report_statistics () =
  let _, report, _, _ = Fixtures.run_orca_sql "SELECT a FROM t1 ORDER BY a LIMIT 1" in
  Alcotest.(check bool) "jobs counted" true (report.Orca.Optimizer.jobs_created > 0);
  Alcotest.(check bool) "xforms counted" true (report.Orca.Optimizer.xforms > 0);
  Alcotest.(check bool) "time measured" true (report.Orca.Optimizer.opt_time_ms >= 0.0)

let test_dxl_round_trip_through_optimizer () =
  (* full Fig. 2 loop: SQL -> DXL query -> parse -> optimize -> DXL plan *)
  let accessor = Fixtures.small_accessor () in
  let sql = "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY t1.a LIMIT 2" in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let text = Dxl.Dxl_query.to_string query in
  let query' = Dxl.Dxl_query.of_string text in
  let accessor2 = Fixtures.small_accessor () in
  let dxl_plan, _ =
    Orca.Optimizer.optimize_to_dxl ~config:(Lazy.force Fixtures.orca_config)
      accessor2 query'
  in
  let plan = Dxl.Dxl_plan.of_string dxl_plan in
  let s = Lazy.force Fixtures.small in
  let rows, _ = Exec.Executor.run s.Fixtures.cluster plan in
  Alcotest.(check bool) "round-tripped plan runs correctly" true
    (Fixtures.rows_equal rows (Fixtures.run_naive_sql sql))

let suite =
  [
    Alcotest.test_case "correctness fixture set" `Slow test_correctness_fixture_set;
    Alcotest.test_case "plan satisfies request" `Quick test_plan_satisfies_request;
    Alcotest.test_case "running example shape" `Quick test_running_example_shape;
    Alcotest.test_case "join order uses stats" `Quick test_join_order_uses_statistics;
    Alcotest.test_case "partition elimination" `Quick test_partition_elimination_plan;
    Alcotest.test_case "two-phase aggregation" `Quick test_two_phase_agg_plan;
    Alcotest.test_case "cte shared once" `Quick test_cte_shared_once;
    Alcotest.test_case "multi-stage config" `Quick test_multi_stage_config;
    Alcotest.test_case "parallel workers same cost" `Quick test_parallel_workers_same_cost;
    Alcotest.test_case "disabled rules still correct" `Quick test_disabled_rules_still_correct;
    Alcotest.test_case "report statistics" `Quick test_report_statistics;
    Alcotest.test_case "optimizer DXL round trip" `Quick test_dxl_round_trip_through_optimizer;
  ]

open Ir

(* Tests for metadata ids, the MD cache (pinning, version invalidation), the
   MD accessor (binding, base statistics, session tracking) and the
   recording provider used by AMPERe. *)

let test_mdid_roundtrip () =
  let id = Catalog.Md_id.make ~system:0 ~major:2 ~minor:3 1639448 in
  let s = Catalog.Md_id.to_string id in
  Alcotest.(check string) "format" "0.1639448.2.3" s;
  Alcotest.(check bool) "roundtrip" true
    (Catalog.Md_id.equal id (Catalog.Md_id.of_string s))

let test_mdid_versions () =
  let v1 = Catalog.Md_id.make 10 in
  let v2 = Catalog.Md_id.bump_version v1 in
  Alcotest.(check bool) "same object" true (Catalog.Md_id.same_object v1 v2);
  Alcotest.(check bool) "newer" true (Catalog.Md_id.newer_than v2 v1);
  Alcotest.(check bool) "not older" false (Catalog.Md_id.newer_than v1 v2)

let test_accessor_bind () =
  let accessor = Fixtures.small_accessor () in
  let t1 = Option.get (Catalog.Accessor.bind_table accessor "t1") in
  let t1' = Option.get (Catalog.Accessor.bind_table accessor "t1") in
  (* self-join: same relation, distinct column ids *)
  let ids td = List.map Colref.id td.Table_desc.cols in
  Alcotest.(check bool) "fresh colrefs per binding" true (ids t1 <> ids t1');
  Alcotest.(check (option string)) "missing table" None
    (Option.map (fun td -> td.Table_desc.name)
       (Catalog.Accessor.bind_table accessor "nope"));
  (* distribution mapped onto bound colrefs *)
  (match t1.Table_desc.dist with
  | Table_desc.Dist_hash [ c ] ->
      Alcotest.(check string) "dist col" "a" (Colref.name c)
  | _ -> Alcotest.fail "expected hash distribution");
  Catalog.Accessor.release accessor

let test_accessor_base_stats () =
  let accessor = Fixtures.small_accessor () in
  let t1 = Option.get (Catalog.Accessor.bind_table accessor "t1") in
  let stats = Catalog.Accessor.base_stats accessor t1 in
  Alcotest.(check bool) "row count" true (Stats.Relstats.rows stats = 500.0);
  let a = List.hd t1.Table_desc.cols in
  Alcotest.(check bool) "histogram keyed by bound colref" true
    (Option.is_some (Stats.Relstats.col_hist stats a));
  Catalog.Accessor.release accessor

let test_cache_hit_and_stats () =
  let s = Lazy.force Fixtures.small in
  let cache = Catalog.Md_cache.create () in
  let acc1 =
    Catalog.Accessor.create ~provider:s.Fixtures.provider ~cache ()
  in
  ignore (Catalog.Accessor.bind_table acc1 "t1");
  let after_first = Catalog.Md_cache.stats cache in
  let acc2 =
    Catalog.Accessor.create ~provider:s.Fixtures.provider ~cache ()
  in
  ignore (Catalog.Accessor.bind_table acc2 "t1");
  let after_second = Catalog.Md_cache.stats cache in
  Alcotest.(check int) "no extra misses on re-bind"
    after_first.Catalog.Md_cache.misses after_second.Catalog.Md_cache.misses;
  Alcotest.(check bool) "lookups grew" true
    (after_second.Catalog.Md_cache.lookups > after_first.Catalog.Md_cache.lookups)

let test_cache_invalidation () =
  (* a mutable provider: bumping the version must invalidate the cache *)
  let rel version =
    Catalog.Metadata.rel_make
      ~mdid:(Catalog.Md_id.make ~minor:version 77)
      ~name:"v" [ { Catalog.Metadata.col_name = "x"; col_type = Dtype.Int } ]
  in
  let current = ref (rel 1) in
  let base = Catalog.Provider.of_objects ~name:"mut" [] in
  let provider =
    {
      base with
      Catalog.Provider.lookup_rel_by_name =
        (fun n -> if n = "v" then Some !current else None);
      lookup_rel =
        (fun id ->
          if Catalog.Md_id.same_object id (Catalog.Md_id.make 77) then
            Some !current
          else None);
      current_version =
        (fun kind id ->
          match kind with
          | Catalog.Metadata.K_rel
            when Catalog.Md_id.same_object id (Catalog.Md_id.make 77) ->
              Some !current.Catalog.Metadata.rel_mdid
          | _ -> None);
    }
  in
  let cache = Catalog.Md_cache.create () in
  let acc1 = Catalog.Accessor.create ~provider ~cache () in
  ignore (Option.get (Catalog.Accessor.bind_table acc1 "v"));
  current := rel 2;
  let acc2 = Catalog.Accessor.create ~provider ~cache () in
  ignore (Option.get (Catalog.Accessor.bind_table acc2 "v"));
  let st = Catalog.Md_cache.stats cache in
  Alcotest.(check int) "one invalidation" 1 st.Catalog.Md_cache.invalidations

let test_evict_unpinned () =
  let s = Lazy.force Fixtures.small in
  let cache = Catalog.Md_cache.create () in
  let acc = Catalog.Accessor.create ~provider:s.Fixtures.provider ~cache () in
  ignore (Catalog.Accessor.bind_table acc "t1");
  Alcotest.(check int) "nothing evictable while pinned" 0
    (Catalog.Md_cache.evict_unpinned cache);
  Catalog.Accessor.release acc;
  Alcotest.(check bool) "evicted after release" true
    (Catalog.Md_cache.evict_unpinned cache > 0)

let test_recording_provider () =
  let s = Lazy.force Fixtures.small in
  let recording, recorded = Catalog.Provider.recording s.Fixtures.provider in
  let cache = Catalog.Md_cache.create () in
  let acc = Catalog.Accessor.create ~provider:recording ~cache () in
  let td = Option.get (Catalog.Accessor.bind_table acc "t1") in
  ignore (Catalog.Accessor.base_stats acc td);
  let objs = recorded () in
  Alcotest.(check bool) "captured relation and stats" true
    (List.exists (function Catalog.Metadata.Rel _ -> true | _ -> false) objs
    && List.exists
         (function Catalog.Metadata.Rel_stats _ -> true | _ -> false)
         objs)

let test_accessed_objects () =
  let accessor = Fixtures.small_accessor () in
  let t1 = Option.get (Catalog.Accessor.bind_table accessor "t1") in
  ignore (Catalog.Accessor.base_stats accessor t1);
  let objs = Catalog.Accessor.accessed_objects accessor in
  Alcotest.(check int) "rel + stats tracked" 2 (List.length objs);
  Catalog.Accessor.release accessor

let suite =
  [
    Alcotest.test_case "mdid roundtrip" `Quick test_mdid_roundtrip;
    Alcotest.test_case "mdid versions" `Quick test_mdid_versions;
    Alcotest.test_case "accessor bind" `Quick test_accessor_bind;
    Alcotest.test_case "accessor base stats" `Quick test_accessor_base_stats;
    Alcotest.test_case "cache hits" `Quick test_cache_hit_and_stats;
    Alcotest.test_case "cache invalidation" `Quick test_cache_invalidation;
    Alcotest.test_case "evict unpinned" `Quick test_evict_unpinned;
    Alcotest.test_case "recording provider" `Quick test_recording_provider;
    Alcotest.test_case "accessed objects" `Quick test_accessed_objects;
  ]

open Ir

(* Cross-cutting integration tests: DXL round-trips over real workload plans,
   executor edge cases reached through full SQL, binder corner cases, and
   engine-level agreement. *)

(* --- DXL round-trips of real optimized plans --- *)

let test_workload_plan_dxl_roundtrips () =
  let cluster = Fixtures.tpcds_cluster () in
  let env = Lazy.force Fixtures.tpcds_env in
  List.iter
    (fun qid ->
      let q = Tpcds.Queries.get qid in
      let accessor = Fixtures.tpcds_accessor () in
      let query = Sqlfront.Binder.bind_sql accessor q.Tpcds.Queries.sql in
      let config =
        Orca.Orca_config.with_segments Orca.Orca_config.default
          env.Engines.Engine.nsegs
      in
      let report = Orca.Optimizer.optimize ~config accessor query in
      let plan = report.Orca.Optimizer.plan in
      let plan' = Dxl.Dxl_plan.of_string (Dxl.Dxl_plan.to_string plan) in
      Alcotest.(check int)
        (Printf.sprintf "q%d node count" qid)
        (Plan_ops.node_count plan) (Plan_ops.node_count plan');
      let rows, _ = Exec.Executor.run cluster plan in
      let rows', _ = Exec.Executor.run cluster plan' in
      Alcotest.(check bool)
        (Printf.sprintf "q%d round-tripped plan executes identically" qid)
        true
        (Fixtures.rows_equal rows rows'))
    [ 1; 9; 22; 31; 39; 45; 48; 55; 64; 71; 82; 95; 98; 103; 109 ]

let test_workload_query_dxl_roundtrips () =
  List.iter
    (fun qid ->
      let q = Tpcds.Queries.get qid in
      let accessor = Fixtures.tpcds_accessor () in
      let query = Sqlfront.Binder.bind_sql accessor q.Tpcds.Queries.sql in
      let text = Dxl.Dxl_query.to_string query in
      let query' = Dxl.Dxl_query.of_string text in
      Alcotest.(check string)
        (Printf.sprintf "q%d query message stable" qid)
        text
        (Dxl.Dxl_query.to_string query'))
    [ 1; 13; 27; 31; 39; 48; 55; 71; 89; 98 ]

(* --- executor edge cases through full SQL --- *)

let test_empty_results () =
  List.iter
    (fun sql ->
      let _, _, rows, _ = Fixtures.run_orca_sql sql in
      Alcotest.(check bool)
        (Printf.sprintf "matches naive: %s" sql)
        true
        (Fixtures.rows_equal rows (Fixtures.run_naive_sql sql)))
    [
      (* predicates that keep nothing *)
      "SELECT a FROM t1 WHERE a > 99999 ORDER BY a";
      (* joins with empty sides *)
      "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b AND t2.a > 99999 ORDER BY 1";
      (* aggregates over empty inputs: one identity row *)
      "SELECT count(*) AS c, sum(a) AS s, min(b) AS m FROM t1 WHERE a < -5";
      (* grouped aggregate over empty input: no rows *)
      "SELECT a, count(*) AS c FROM t1 WHERE a < -5 GROUP BY a ORDER BY a";
      (* offset beyond the result *)
      "SELECT a FROM t1 WHERE a < 3 ORDER BY a LIMIT 10 OFFSET 5000";
      (* empty IN-subquery: semi join keeps nothing, anti keeps everything *)
      "SELECT a FROM t1 WHERE a IN (SELECT b FROM t2 WHERE b > 99999) ORDER BY a";
      "SELECT count(*) AS c FROM t1 WHERE NOT EXISTS (SELECT 1 FROM t2 WHERE t2.a > 99999 AND t2.b = t1.a)";
    ]

let test_null_heavy_semantics () =
  (* CASE/COALESCE/IS NULL through the whole pipeline *)
  List.iter
    (fun sql ->
      let _, _, rows, _ = Fixtures.run_orca_sql sql in
      Alcotest.(check bool)
        (Printf.sprintf "matches naive: %s" sql)
        true
        (Fixtures.rows_equal rows (Fixtures.run_naive_sql sql)))
    [
      "SELECT t1.a, COALESCE(t2.a, -1) AS x FROM t1 LEFT JOIN t2 ON t1.a = \
       t2.b AND t2.a > 290 ORDER BY 1, 2 LIMIT 40";
      "SELECT count(*) AS c FROM t1 LEFT JOIN t2 ON t1.a = t2.b AND t2.a > \
       295 WHERE t2.a IS NULL";
      "SELECT CASE WHEN a % 2 = 0 THEN 'even' ELSE 'odd' END AS par, \
       count(*) AS c FROM t1 GROUP BY par ORDER BY par";
    ]

let test_arithmetic_and_casts () =
  List.iter
    (fun sql ->
      let _, _, rows, _ = Fixtures.run_orca_sql sql in
      Alcotest.(check bool)
        (Printf.sprintf "matches naive: %s" sql)
        true
        (Fixtures.rows_equal rows (Fixtures.run_naive_sql sql)))
    [
      "SELECT a + b * 2 - 1 AS x FROM t1 WHERE a < 5 ORDER BY x";
      "SELECT CAST(a AS float) / 4 AS q FROM t1 WHERE a BETWEEN 1 AND 9 ORDER BY q";
      "SELECT a FROM t1 WHERE a % 10 = 3 AND a / 2 > 10 ORDER BY a LIMIT 20";
      "SELECT -a AS neg FROM t1 WHERE a < 5 ORDER BY neg";
    ]

(* --- binder corner cases --- *)

let bind sql =
  let accessor = Fixtures.small_accessor () in
  Sqlfront.Binder.bind_sql accessor sql

let test_cte_shadowing_and_nesting () =
  (* a CTE name shadows a real table *)
  let q =
    bind "WITH t1 AS (SELECT b AS a FROM t2 WHERE b < 5) SELECT a FROM t1 ORDER BY a"
  in
  let has_consumer =
    Ltree.fold
      (fun acc n ->
        acc
        || match n.Ltree.op with Expr.L_cte_consumer _ -> true | _ -> false)
      false q.Dxl.Dxl_query.tree
  in
  Alcotest.(check bool) "cte shadows table" true has_consumer;
  (* later CTEs can reference earlier ones *)
  let q2 =
    bind
      "WITH x AS (SELECT a FROM t1 WHERE a < 10), y AS (SELECT a FROM x WHERE \
       a > 2) SELECT a FROM y ORDER BY a"
  in
  Ltree.validate q2.Dxl.Dxl_query.tree;
  (* and the whole thing evaluates correctly *)
  let s = Lazy.force Fixtures.small in
  let _, report, rows, _ =
    Fixtures.run_orca_sql
      "WITH x AS (SELECT a FROM t1 WHERE a < 10), y AS (SELECT a FROM x WHERE \
       a > 2) SELECT a FROM y ORDER BY a"
  in
  ignore report;
  let expected =
    Exec.Naive.run s.Fixtures.cluster
      (bind
         "WITH x AS (SELECT a FROM t1 WHERE a < 10), y AS (SELECT a FROM x \
          WHERE a > 2) SELECT a FROM y ORDER BY a")
  in
  Alcotest.(check bool) "nested CTE result" true (Fixtures.rows_equal rows expected)

let test_unused_cte_dropped () =
  let q = bind "WITH unused AS (SELECT a FROM t1) SELECT b FROM t2 WHERE b < 3" in
  let anchors =
    Ltree.fold
      (fun acc n ->
        acc + match n.Ltree.op with Expr.L_cte_anchor _ -> 1 | _ -> 0)
      0 q.Dxl.Dxl_query.tree
  in
  Alcotest.(check int) "no anchor for unused cte" 0 anchors

let test_duplicate_alias_resolution () =
  (* qualified references pick the right instance *)
  let _, _, rows, _ =
    Fixtures.run_orca_sql
      "SELECT x.a, y.b FROM t1 x, t1 y WHERE x.a = y.a AND x.b < y.b ORDER BY \
       1, 2 LIMIT 30"
  in
  let expected =
    Fixtures.run_naive_sql
      "SELECT x.a, y.b FROM t1 x, t1 y WHERE x.a = y.a AND x.b < y.b ORDER BY \
       1, 2 LIMIT 30"
  in
  Alcotest.(check bool) "self join qualified" true
    (Fixtures.rows_equal rows expected)

(* --- group-by expression handling --- *)

let test_group_by_forms () =
  List.iter
    (fun sql ->
      let _, _, rows, _ = Fixtures.run_orca_sql sql in
      Alcotest.(check bool)
        (Printf.sprintf "matches naive: %s" sql)
        true
        (Fixtures.rows_equal rows (Fixtures.run_naive_sql sql)))
    [
      (* positional *)
      "SELECT b, count(*) AS c FROM t1 GROUP BY 1 ORDER BY 1 LIMIT 10";
      (* alias of a computed item *)
      "SELECT a % 5 AS bucket, count(*) AS c FROM t1 GROUP BY bucket ORDER BY bucket";
      (* raw expression *)
      "SELECT count(*) AS c FROM t1 GROUP BY a % 3 ORDER BY c DESC LIMIT 3";
      (* multiple keys, mixed forms *)
      "SELECT a % 2 AS x, b % 2 AS y, count(*) AS c FROM t1 GROUP BY x, y ORDER BY x, y";
    ]

(* --- engines agree with HAWQ on everything they execute --- *)

let test_engines_row_agreement_sample () =
  let env = Lazy.force Fixtures.tpcds_env in
  let hawq = Engines.Engine.hawq ~mem_per_seg:(64.0 *. 1024.0 *. 1024.0) in
  let stinger = Engines.Engine.stinger ~mem_per_seg:(64.0 *. 1024.0 *. 1024.0) in
  List.iter
    (fun qid ->
      let q = Tpcds.Queries.get qid in
      let rh = Engines.Engine.run hawq env q in
      let rs = Engines.Engine.run stinger env q in
      match (rh.Engines.Engine.status, rs.Engines.Engine.status) with
      | Engines.Engine.S_ok, Engines.Engine.S_ok ->
          Alcotest.(check (option int))
            (Printf.sprintf "q%d row count" qid)
            rh.Engines.Engine.rows rs.Engines.Engine.rows
      | _ -> ())
    [ 1; 2; 3; 4; 39; 40; 41; 82; 83; 84 ]

let suite =
  [
    Alcotest.test_case "workload plan DXL roundtrips" `Slow
      test_workload_plan_dxl_roundtrips;
    Alcotest.test_case "workload query DXL roundtrips" `Slow
      test_workload_query_dxl_roundtrips;
    Alcotest.test_case "empty results" `Quick test_empty_results;
    Alcotest.test_case "null-heavy semantics" `Quick test_null_heavy_semantics;
    Alcotest.test_case "arithmetic and casts" `Quick test_arithmetic_and_casts;
    Alcotest.test_case "cte shadowing/nesting" `Quick test_cte_shadowing_and_nesting;
    Alcotest.test_case "unused cte dropped" `Quick test_unused_cte_dropped;
    Alcotest.test_case "duplicate alias resolution" `Quick test_duplicate_alias_resolution;
    Alcotest.test_case "group-by forms" `Quick test_group_by_forms;
    Alcotest.test_case "engine row agreement" `Slow test_engines_row_agreement_sample;
  ]

open Ir

(* Tests for DXL: XML reader/writer, scalar/query/plan/metadata round-trips,
   the file-based provider, and parsing a Listing-1-shaped message. *)

let test_xml_roundtrip () =
  let e =
    Dxl.Xml.element "root"
      ~attrs:[ ("a", "1 < 2 & \"q\""); ("b", "x") ]
      ~children:
        [
          Dxl.Xml.Element (Dxl.Xml.element "child" ~attrs:[ ("k", "v'") ]);
          Dxl.Xml.Element
            (Dxl.Xml.element "other" ~children:[ Dxl.Xml.Text "some <text>" ]);
        ]
  in
  let s = Dxl.Xml.to_string e in
  let e' = Dxl.Xml.of_string s in
  Alcotest.(check string) "tag" "root" e'.Dxl.Xml.tag;
  Alcotest.(check (option string)) "escaped attr" (Some "1 < 2 & \"q\"")
    (Dxl.Xml.attr e' "a");
  let other = Dxl.Xml.find_child_exn e' "other" in
  Alcotest.(check string) "text content" "some <text>" (Dxl.Xml.text_content other)

let test_xml_comments_and_decl () =
  let s =
    "<?xml version=\"1.0\"?>\n<!-- a comment --><root><!-- inner --><x/></root>"
  in
  let e = Dxl.Xml.of_string s in
  Alcotest.(check int) "one child" 1 (List.length (Dxl.Xml.child_elements e))

let test_xml_malformed () =
  Alcotest.(check bool) "mismatched tags rejected" true
    (try
       ignore (Dxl.Xml.of_string "<a><b></a></b>");
       false
     with Gpos.Gpos_error.Error (Gpos.Gpos_error.Dxl_error, _) -> true)

(* --- scalar round-trips, including a qcheck generator --- *)

let scalar_roundtrip s =
  let xml = Dxl.Dxl_scalar.to_xml s in
  let s' = Dxl.Dxl_scalar.of_xml (Dxl.Xml.of_string (Dxl.Xml.to_string xml)) in
  Scalar_ops.equal s s'

let test_scalar_examples () =
  let a = Fixtures.col 1 "a" and b = Fixtures.col 2 "b" in
  let cases =
    [
      Expr.Col a;
      Expr.Const (Datum.String "o'hara <&>");
      Expr.Cmp (Expr.Le, Expr.Col a, Expr.Const (Datum.Float 2.5));
      Expr.And [ Expr.Col a; Expr.Not (Expr.Col b) ];
      Expr.Case
        ( [ (Expr.Is_null (Expr.Col a), Expr.Const (Datum.Int 1)) ],
          Some (Expr.Col b) );
      Expr.In_list (Expr.Col a, [ Datum.Int 1; Datum.Null; Datum.String "x" ]);
      Expr.Like (Expr.Col b, "%abc_");
      Expr.Coalesce [ Expr.Col a; Expr.Const (Datum.Int 0) ];
      Expr.Cast (Expr.Col a, Dtype.Float);
      Expr.Arith (Expr.Mod, Expr.Col a, Expr.Const (Datum.Int 7));
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Scalar_ops.to_string s)
        true (scalar_roundtrip s))
    cases

let scalar_gen : Expr.scalar QCheck.Gen.t =
  let open QCheck.Gen in
  let col = map (fun i -> Expr.Col (Fixtures.col (i mod 8) "c")) small_nat in
  let const =
    oneof
      [
        map (fun n -> Expr.Const (Datum.Int n)) small_int;
        return (Expr.Const Datum.Null);
        map (fun b -> Expr.Const (Datum.Bool b)) bool;
        map (fun s -> Expr.Const (Datum.String s)) (string_size (int_bound 6));
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then oneof [ col; const ]
      else
        frequency
          [
            (2, col);
            (2, const);
            ( 3,
              map2
                (fun a b -> Expr.Cmp (Expr.Eq, a, b))
                (self (depth - 1)) (self (depth - 1)) );
            ( 2,
              map2
                (fun a b -> Expr.Arith (Expr.Add, a, b))
                (self (depth - 1)) (self (depth - 1)) );
            (1, map (fun a -> Expr.Not a) (self (depth - 1)));
            ( 1,
              map2
                (fun a b -> Expr.And [ a; b ])
                (self (depth - 1)) (self (depth - 1)) );
            (1, map (fun a -> Expr.Is_null a) (self (depth - 1)));
            (1, map (fun a -> Expr.Coalesce [ a ]) (self (depth - 1)));
          ])
    3

let prop_scalar_roundtrip =
  QCheck.Test.make ~count:200 ~name:"random scalar DXL round-trip"
    (QCheck.make scalar_gen) scalar_roundtrip

(* --- query round-trip --- *)

let test_query_roundtrip () =
  let accessor = Fixtures.small_accessor () in
  let sql =
    "SELECT t1.a, count(*) AS c FROM t1, t2 WHERE t1.a = t2.b AND t2.a < 10 \
     GROUP BY t1.a ORDER BY t1.a DESC LIMIT 5"
  in
  let q = Sqlfront.Binder.bind_sql accessor sql in
  let s = Dxl.Dxl_query.to_string q in
  let q' = Dxl.Dxl_query.of_string s in
  Alcotest.(check string) "serialization is stable" s (Dxl.Dxl_query.to_string q');
  Alcotest.(check int) "output arity" (List.length q.Dxl.Dxl_query.output)
    (List.length q'.Dxl.Dxl_query.output);
  Alcotest.(check bool) "order preserved" true
    (Sortspec.equal q.Dxl.Dxl_query.order q'.Dxl.Dxl_query.order)

let test_query_with_apply_roundtrip () =
  let accessor = Fixtures.small_accessor () in
  let sql =
    "SELECT a FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE t2.b = t1.a)"
  in
  let q = Sqlfront.Binder.bind_sql accessor sql in
  let s = Dxl.Dxl_query.to_string q in
  let q' = Dxl.Dxl_query.of_string s in
  Alcotest.(check string) "stable" s (Dxl.Dxl_query.to_string q')

(* --- plan round-trip --- *)

let test_plan_roundtrip () =
  let _, report, _, _ =
    Fixtures.run_orca_sql
      "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY t1.a LIMIT 3"
  in
  let plan = report.Orca.Optimizer.plan in
  let s = Dxl.Dxl_plan.to_string plan in
  let plan' = Dxl.Dxl_plan.of_string s in
  Alcotest.(check int) "node count" (Plan_ops.node_count plan)
    (Plan_ops.node_count plan');
  Alcotest.(check string) "stable" s (Dxl.Dxl_plan.to_string plan');
  (* the round-tripped plan executes identically *)
  let s' = Lazy.force Fixtures.small in
  let rows, _ = Exec.Executor.run s'.Fixtures.cluster plan' in
  let rows0, _ = Exec.Executor.run s'.Fixtures.cluster plan in
  Alcotest.(check bool) "same results" true (Fixtures.rows_equal rows rows0)

(* --- metadata round-trip + file provider --- *)

let test_metadata_roundtrip () =
  let s = Lazy.force Fixtures.small in
  let recording, recorded = Catalog.Provider.recording s.Fixtures.provider in
  let cache = Catalog.Md_cache.create () in
  let acc = Catalog.Accessor.create ~provider:recording ~cache () in
  let td = Option.get (Catalog.Accessor.bind_table acc "t1") in
  ignore (Catalog.Accessor.base_stats acc td);
  let objs = recorded () in
  let text = Dxl.Dxl_metadata.to_string objs in
  let provider = Dxl.Dxl_metadata.file_provider_of_string text in
  let acc2 =
    Catalog.Accessor.create ~provider ~cache:(Catalog.Md_cache.create ()) ()
  in
  let td2 = Option.get (Catalog.Accessor.bind_table acc2 "t1") in
  let stats = Catalog.Accessor.base_stats acc2 td2 in
  Alcotest.(check bool) "row count survives" true
    (Stats.Relstats.rows stats = 500.0);
  let a = List.hd td2.Table_desc.cols in
  Alcotest.(check bool) "histograms survive" true
    (match Stats.Relstats.col_hist stats a with
    | Some h -> Stats.Histogram.total_rows h > 400.0
    | None -> false)

let test_listing1_shape () =
  (* a hand-written message in the shape of the paper's Listing 1 *)
  let text =
    {|<?xml version="1.0" encoding="UTF-8"?>
<dxl:DXLMessage xmlns:dxl="http://greenplum.com/dxl/v1">
 <dxl:Query>
  <dxl:OutputColumns>
   <dxl:Ident ColId="0" Name="a" Type="int"/>
  </dxl:OutputColumns>
  <dxl:SortingColumnList>
   <dxl:SortingColumn ColId="0" Name="a" Type="int" Dir="asc"/>
  </dxl:SortingColumnList>
  <dxl:Distribution Type="Singleton"/>
  <dxl:LogicalJoin JoinType="Inner">
   <dxl:LogicalGet>
    <dxl:TableDescriptor Mdid="0.1639448.1.1" Name="T1" DistributionPolicy="Hash" DistributionColumns="0">
     <dxl:Columns>
      <dxl:Ident ColId="0" Name="a" Type="int"/>
      <dxl:Ident ColId="1" Name="b" Type="int"/>
     </dxl:Columns>
    </dxl:TableDescriptor>
   </dxl:LogicalGet>
   <dxl:LogicalGet>
    <dxl:TableDescriptor Mdid="0.2868145.1.1" Name="T2" DistributionPolicy="Hash" DistributionColumns="2">
     <dxl:Columns>
      <dxl:Ident ColId="2" Name="a" Type="int"/>
      <dxl:Ident ColId="3" Name="b" Type="int"/>
     </dxl:Columns>
    </dxl:TableDescriptor>
   </dxl:LogicalGet>
   <dxl:JoinCondition>
    <dxl:Comparison Operator="=">
     <dxl:Ident ColId="0" Name="a" Type="int"/>
     <dxl:Ident ColId="3" Name="b" Type="int"/>
    </dxl:Comparison>
   </dxl:JoinCondition>
  </dxl:LogicalJoin>
 </dxl:Query>
</dxl:DXLMessage>|}
  in
  let q = Dxl.Dxl_query.of_string text in
  Alcotest.(check int) "one output column" 1 (List.length q.Dxl.Dxl_query.output);
  Alcotest.(check bool) "singleton distribution" true
    (q.Dxl.Dxl_query.dist = Props.Req_singleton);
  match q.Dxl.Dxl_query.tree.Ltree.op with
  | Expr.L_join (Expr.Inner, _) -> ()
  | _ -> Alcotest.fail "expected inner join root"

(* --- aggregate / window-function / sort-spec payload round-trips --- *)

let test_payload_roundtrips () =
  let a = Fixtures.col 1 "a" and b = Fixtures.col 2 "b" in
  let rt_xml to_xml of_xml v =
    of_xml (Dxl.Xml.of_string (Dxl.Xml.to_string (to_xml v)))
  in
  (* aggregates, including DISTINCT and count-star *)
  List.iter
    (fun (agg : Expr.agg) ->
      let agg' = rt_xml Dxl.Dxl_scalar.agg_to_xml Dxl.Dxl_scalar.agg_of_xml agg in
      Alcotest.(check bool)
        (Logical_ops.agg_to_string agg)
        true
        (agg.Expr.agg_kind = agg'.Expr.agg_kind
        && agg.Expr.agg_distinct = agg'.Expr.agg_distinct
        && Colref.equal agg.Expr.agg_out agg'.Expr.agg_out
        && Option.equal Scalar_ops.equal agg.Expr.agg_arg agg'.Expr.agg_arg))
    [
      { Expr.agg_kind = Expr.Count_star; agg_arg = None; agg_distinct = false;
        agg_out = a };
      { Expr.agg_kind = Expr.Sum; agg_arg = Some (Expr.Col b);
        agg_distinct = false; agg_out = a };
      { Expr.agg_kind = Expr.Count;
        agg_arg = Some (Expr.Arith (Expr.Add, Expr.Col a, Expr.Col b));
        agg_distinct = true; agg_out = b };
      { Expr.agg_kind = Expr.Min; agg_arg = Some (Expr.Col a);
        agg_distinct = false; agg_out = b };
    ];
  (* window functions *)
  List.iter
    (fun (w : Expr.wfunc) ->
      let w' = rt_xml Dxl.Dxl_scalar.wfunc_to_xml Dxl.Dxl_scalar.wfunc_of_xml w in
      Alcotest.(check bool)
        (Logical_ops.wfunc_to_string w)
        true
        (w.Expr.wf_kind = w'.Expr.wf_kind
        && Colref.equal w.Expr.wf_out w'.Expr.wf_out
        && Option.equal Scalar_ops.equal w.Expr.wf_arg w'.Expr.wf_arg))
    [
      { Expr.wf_kind = Expr.W_row_number; wf_arg = None; wf_out = a };
      { Expr.wf_kind = Expr.W_rank; wf_arg = None; wf_out = b };
      { Expr.wf_kind = Expr.W_dense_rank; wf_arg = None; wf_out = b };
      { Expr.wf_kind = Expr.W_agg Expr.Sum; wf_arg = Some (Expr.Col b);
        wf_out = a };
      { Expr.wf_kind = Expr.W_agg Expr.Count_star; wf_arg = None; wf_out = a };
    ];
  (* sort specs, and the full window payload triple *)
  let spec = [ Sortspec.asc a; Sortspec.desc b ] in
  Alcotest.(check bool)
    "sortspec roundtrip" true
    (Sortspec.equal spec
       (rt_xml Dxl.Dxl_scalar.sortspec_to_xml Dxl.Dxl_scalar.sortspec_of_xml
          spec));
  let wfuncs = [ { Expr.wf_kind = Expr.W_rank; wf_arg = None; wf_out = b } ] in
  let children =
    Dxl.Dxl_scalar.window_payload_to_children [ a ] spec wfuncs
  in
  let holder = Dxl.Xml.element "dxl:Window" ~children in
  let part', spec', wfuncs' =
    Dxl.Dxl_scalar.window_payload_of_xml
      (Dxl.Xml.of_string (Dxl.Xml.to_string holder))
  in
  Alcotest.(check bool)
    "window payload roundtrip" true
    (List.length part' = 1
    && Colref.equal (List.hd part') a
    && Sortspec.equal spec spec'
    && List.length wfuncs' = 1
    && (List.hd wfuncs').Expr.wf_kind = Expr.W_rank)

let suite =
  [
    Alcotest.test_case "xml roundtrip" `Quick test_xml_roundtrip;
    Alcotest.test_case "xml comments" `Quick test_xml_comments_and_decl;
    Alcotest.test_case "xml malformed" `Quick test_xml_malformed;
    Alcotest.test_case "scalar examples" `Quick test_scalar_examples;
    QCheck_alcotest.to_alcotest prop_scalar_roundtrip;
    Alcotest.test_case "query roundtrip" `Quick test_query_roundtrip;
    Alcotest.test_case "apply roundtrip" `Quick test_query_with_apply_roundtrip;
    Alcotest.test_case "plan roundtrip" `Quick test_plan_roundtrip;
    Alcotest.test_case "metadata + file provider" `Quick test_metadata_roundtrip;
    Alcotest.test_case "Listing 1 shape" `Quick test_listing1_shape;
    Alcotest.test_case "agg/wfunc/sortspec payloads" `Quick
      test_payload_roundtrips;
  ]

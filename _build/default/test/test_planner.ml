open Ir

(* Tests for the legacy Planner baseline: correctness (same results as the
   naive oracle) and the characteristic weaknesses Figure 12 depends on. *)

let test_planner_correctness () =
  List.iter
    (fun sql ->
      let plan, rows, _ = Fixtures.run_planner_sql sql in
      ignore (Plan_ops.validate plan);
      Alcotest.(check bool)
        (Printf.sprintf "planner matches naive: %s" sql)
        true
        (Fixtures.rows_equal rows (Fixtures.run_naive_sql sql)))
    [
      "SELECT a FROM t1 WHERE a < 10 ORDER BY a";
      "SELECT t1.a, t2.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY 1, 2 LIMIT 40";
      "SELECT a, count(*) AS c FROM t2 GROUP BY a ORDER BY c DESC, a LIMIT 5";
      "SELECT a FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE t2.b = t1.a AND t2.a > 290) ORDER BY a";
      "SELECT t1.a, (SELECT max(t2.a) FROM t2 WHERE t2.b = t1.a) AS m FROM t1 WHERE t1.b < 20 ORDER BY 1";
      "WITH w AS (SELECT a, count(*) AS c FROM t1 GROUP BY a) SELECT w1.a FROM w w1, w w2 WHERE w1.a = w2.a ORDER BY 1 LIMIT 10";
      "SELECT a FROM t1 INTERSECT SELECT b FROM t2 ORDER BY 1";
      "SELECT t1.a, t2.a FROM t1 LEFT JOIN t2 ON t1.a = t2.b AND t2.a > 295 ORDER BY 1, 2 LIMIT 20";
    ]

let test_planner_uses_subplans () =
  (* no decorrelation: correlated subqueries become SubPlan re-executions *)
  let plan, _, metrics =
    Fixtures.run_planner_sql
      "SELECT a FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE t2.b = t1.a) ORDER BY a LIMIT 5"
  in
  let has_subplan =
    Plan_ops.contains
      (fun n ->
        match n.Expr.pop with
        | Expr.P_filter pred -> Scalar_ops.contains_subplan pred
        | _ -> false)
      plan
  in
  Alcotest.(check bool) "subplan in filter" true has_subplan;
  Alcotest.(check bool) "repeated executions charged" true
    (metrics.Exec.Metrics.subplan_executions
     + metrics.Exec.Metrics.subplan_cache_hits
    > 10)

let test_planner_inlines_ctes () =
  (* no CTE sharing: the producer body is planned once per consumer *)
  let plan, _, _ =
    Fixtures.run_planner_sql
      "WITH w AS (SELECT a, count(*) AS c FROM t1 GROUP BY a) SELECT w1.a \
       FROM w w1, w w2 WHERE w1.a = w2.a ORDER BY 1 LIMIT 5"
  in
  let producers =
    Plan_ops.fold
      (fun n node ->
        match node.Expr.pop with Expr.P_cte_producer _ -> n + 1 | _ -> n)
      0 plan
  in
  let aggs =
    Plan_ops.fold
      (fun n node ->
        match node.Expr.pop with Expr.P_hash_agg _ -> n + 1 | _ -> n)
      0 plan
  in
  Alcotest.(check int) "no producers" 0 producers;
  Alcotest.(check bool) "aggregate duplicated" true (aggs >= 2)

let test_planner_no_partition_elimination () =
  let env = Lazy.force Fixtures.tpcds_env in
  let accessor = Fixtures.tpcds_accessor () in
  let query =
    Sqlfront.Binder.bind_sql accessor
      "SELECT count(*) AS c FROM store_sales WHERE ss_sold_date_sk < 100"
  in
  let plan =
    Planner.Legacy_planner.plan_sql
      ~config:
        { Planner.Legacy_planner.segments = env.Engines.Engine.nsegs; dp_limit = 5; broadcast_inner = false }
      accessor query
  in
  let full_scan =
    Plan_ops.contains
      (fun n ->
        match n.Expr.pop with
        | Expr.P_table_scan (_, None, _) -> true
        | _ -> false)
      plan
  in
  Alcotest.(check bool) "scans all partitions" true full_scan

let test_planner_orca_same_results_on_tpcds_sample () =
  let cluster = Fixtures.tpcds_cluster () in
  let env = Lazy.force Fixtures.tpcds_env in
  List.iter
    (fun qid ->
      let q = Tpcds.Queries.get qid in
      let accessor = Fixtures.tpcds_accessor () in
      let query = Sqlfront.Binder.bind_sql accessor q.Tpcds.Queries.sql in
      let config =
        Orca.Orca_config.with_segments Orca.Orca_config.default
          env.Engines.Engine.nsegs
      in
      let report = Orca.Optimizer.optimize ~config accessor query in
      let orows, _ = Exec.Executor.run cluster report.Orca.Optimizer.plan in
      let accessor2 = Fixtures.tpcds_accessor () in
      let query2 = Sqlfront.Binder.bind_sql accessor2 q.Tpcds.Queries.sql in
      let pplan =
        Planner.Legacy_planner.plan_sql
          ~config:
            { Planner.Legacy_planner.segments = env.Engines.Engine.nsegs; dp_limit = 5; broadcast_inner = false }
          accessor2 query2
      in
      let prows, _ = Exec.Executor.run cluster pplan in
      Alcotest.(check bool)
        (Printf.sprintf "q%d orca = planner" qid)
        true
        (Fixtures.rows_equal orows prows))
    [ 1; 13; 24; 31; 39; 45; 51; 64; 89; 98 ]

let suite =
  [
    Alcotest.test_case "planner correctness" `Slow test_planner_correctness;
    Alcotest.test_case "planner subplans" `Quick test_planner_uses_subplans;
    Alcotest.test_case "planner inlines CTEs" `Quick test_planner_inlines_ctes;
    Alcotest.test_case "planner full scans" `Quick test_planner_no_partition_elimination;
    Alcotest.test_case "orca = planner on tpcds sample" `Slow
      test_planner_orca_same_results_on_tpcds_sample;
  ]

(* A realistic analytics session against the mini-TPC-DS warehouse:
   generate data, then run a set of business questions through Orca and the
   legacy Planner, comparing plans and simulated runtimes — the paper's
   Figure 12 in miniature.

     dune exec examples/mini_warehouse.exe [sf]
*)

open Ir

let () =
  let sf = try float_of_string Sys.argv.(1) with _ -> 0.1 in
  let nsegs = 8 in
  Printf.printf "loading mini-TPC-DS at sf=%.2f on %d segments...\n%!" sf nsegs;
  let db = Tpcds.Datagen.generate ~sf () in
  let env = Engines.Engine.create_env ~nsegs db in
  let cluster =
    Engines.Engine.cluster_for env ~mem_per_seg:(64.0 *. 1024.0 *. 1024.0)
  in
  let questions =
    [
      ( "Top brands by holiday revenue",
        "SELECT i_brand, sum(ss_ext_sales_price) AS revenue FROM store_sales, \
         date_dim, item WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = \
         i_item_sk AND d_moy = 12 GROUP BY i_brand ORDER BY revenue DESC \
         LIMIT 5" );
      ( "Customers who returned more than their usual item",
        "SELECT c_customer_id, sr_return_amt FROM store_returns sr1, customer \
         WHERE sr1.sr_customer_sk = c_customer_sk AND sr1.sr_return_amt > \
         (SELECT avg(sr2.sr_return_amt) * 1.5 FROM store_returns sr2 WHERE \
         sr2.sr_item_sk = sr1.sr_item_sk) ORDER BY sr_return_amt DESC LIMIT 5" );
      ( "Channel comparison through a shared CTE",
        "WITH ss AS (SELECT ss_item_sk AS item_sk, count(*) AS cnt FROM \
         store_sales GROUP BY ss_item_sk), ws AS (SELECT ws_item_sk AS \
         item_sk, count(*) AS cnt FROM web_sales GROUP BY ws_item_sk) SELECT \
         ss.item_sk, ss.cnt AS store_cnt, ws.cnt AS web_cnt FROM ss, ws WHERE \
         ss.item_sk = ws.item_sk ORDER BY ss.cnt DESC LIMIT 5" );
      ( "Top two sales per category (window functions)",
        "SELECT t.cat, t.price, t.rnk FROM (SELECT i_category AS cat, \
         ss_sales_price AS price, rank() OVER (PARTITION BY i_category ORDER \
         BY ss_sales_price DESC) AS rnk FROM store_sales, item WHERE \
         ss_item_sk = i_item_sk) AS t WHERE t.rnk <= 2 ORDER BY t.cat, \
         t.rnk, t.price LIMIT 10" );
      ( "Revenue by category with subtotals (ROLLUP)",
        "SELECT i_category, i_brand, grouping(i_brand) AS subtotal, \
         sum(ss_ext_sales_price) AS revenue FROM store_sales, item WHERE \
         ss_item_sk = i_item_sk GROUP BY ROLLUP (i_category, i_brand) ORDER \
         BY subtotal DESC, revenue DESC LIMIT 8" );
      ( "One quarter of store traffic (partition elimination)",
        "SELECT s_store_name, count(*) AS tickets FROM store_sales, store \
         WHERE ss_store_sk = s_store_sk AND ss_sold_date_sk BETWEEN 0 AND 89 \
         GROUP BY s_store_name ORDER BY tickets DESC LIMIT 5" );
    ]
  in
  List.iter
    (fun (label, sql) ->
      Printf.printf "\n### %s\n" label;
      let accessor =
        Catalog.Accessor.create ~provider:env.Engines.Engine.provider
          ~cache:env.Engines.Engine.cache ()
      in
      let query = Sqlfront.Binder.bind_sql accessor sql in
      let config = Orca.Orca_config.with_segments Orca.Orca_config.default nsegs in
      let report = Orca.Optimizer.optimize ~config accessor query in
      Printf.printf "%s" (Plan_ops.to_string report.Orca.Optimizer.plan);
      let rows, ometrics = Exec.Executor.run cluster report.Orca.Optimizer.plan in
      List.iter
        (fun row ->
          Printf.printf "  %s\n"
            (String.concat " | " (List.map Datum.to_string (Array.to_list row))))
        rows;
      (* compare against the legacy Planner *)
      let accessor2 =
        Catalog.Accessor.create ~provider:env.Engines.Engine.provider
          ~cache:env.Engines.Engine.cache ()
      in
      let query2 = Sqlfront.Binder.bind_sql accessor2 sql in
      let pplan =
        Planner.Legacy_planner.plan_sql
          ~config:
            { Planner.Legacy_planner.segments = nsegs; dp_limit = 5; broadcast_inner = false }
          accessor2 query2
      in
      let _, pmetrics = Exec.Executor.run cluster pplan in
      Printf.printf "Orca %.4fs vs legacy Planner %.4fs  =>  %.1fx speed-up\n"
        ometrics.Exec.Metrics.sim_seconds pmetrics.Exec.Metrics.sim_seconds
        (pmetrics.Exec.Metrics.sim_seconds
        /. Float.max 1e-9 ometrics.Exec.Metrics.sim_seconds))
    questions

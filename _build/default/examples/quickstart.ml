(* Quickstart: stand up a two-table catalog + cluster, optimize a SQL query
   with Orca, inspect the plan, and execute it on the simulated MPP cluster.

     dune exec examples/quickstart.exe
*)

open Ir

let () =
  (* 1. Make some data: orders hash-distributed on customer id. *)
  let rng = Gpos.Prng.create 2014 in
  let customers =
    List.init 200 (fun i ->
        [| Datum.Int i; Datum.String (Printf.sprintf "customer-%03d" i) |])
  in
  let orders =
    List.init 5000 (fun i ->
        [|
          Datum.Int i;
          Datum.Int (Gpos.Prng.int rng 200);
          Datum.Float (Gpos.Prng.float_range rng 1.0 500.0);
        |])
  in

  (* 2. Describe the tables to the optimizer: metadata + statistics
        (histograms built from the actual data, as after ANALYZE). *)
  let hist rows pos = Stats.Histogram.build (List.map (fun r -> r.(pos)) rows) in
  let provider =
    Catalog.Provider.of_objects ~name:"quickstart"
      [
        Catalog.Metadata.Rel
          (Catalog.Metadata.rel_make
             ~dist:(Catalog.Metadata.Hash_cols [ 0 ])
             ~mdid:(Catalog.Md_id.make 1) ~name:"customers"
             [
               { Catalog.Metadata.col_name = "id"; col_type = Dtype.Int };
               { Catalog.Metadata.col_name = "name"; col_type = Dtype.String };
             ]);
        Catalog.Metadata.Rel
          (Catalog.Metadata.rel_make
             ~dist:(Catalog.Metadata.Hash_cols [ 0 ])
             ~mdid:(Catalog.Md_id.make 2) ~name:"orders"
             [
               { Catalog.Metadata.col_name = "order_id"; col_type = Dtype.Int };
               { Catalog.Metadata.col_name = "customer_id"; col_type = Dtype.Int };
               { Catalog.Metadata.col_name = "amount"; col_type = Dtype.Float };
             ]);
        Catalog.Metadata.Rel_stats
          {
            Catalog.Metadata.st_mdid = Catalog.Md_id.make 1;
            st_rows = 200.0;
            st_col_hists = [ (0, hist customers 0) ];
          };
        Catalog.Metadata.Rel_stats
          {
            Catalog.Metadata.st_mdid = Catalog.Md_id.make 2;
            st_rows = 5000.0;
            st_col_hists = [ (1, hist orders 1); (2, hist orders 2) ];
          };
      ]
  in

  (* 3. Load the same data into a simulated 8-segment cluster. *)
  let cluster = Exec.Cluster.create ~nsegs:8 () in
  Exec.Cluster.load_table cluster ~name:"customers"
    ~dist:(Exec.Cluster.By_hash [ 0 ]) customers;
  Exec.Cluster.load_table cluster ~name:"orders"
    ~dist:(Exec.Cluster.By_hash [ 0 ]) orders;

  (* 4. SQL -> DXL query (the front-end is the system's Query2DXL). *)
  let cache = Catalog.Md_cache.create () in
  let accessor = Catalog.Accessor.create ~provider ~cache () in
  let sql =
    "SELECT name, count(*) AS orders, sum(amount) AS total FROM customers, \
     orders WHERE id = customer_id AND amount > 100 GROUP BY name ORDER BY \
     total DESC LIMIT 5"
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in

  (* 5. Optimize with Orca. *)
  let config = Orca.Orca_config.with_segments Orca.Orca_config.default 8 in
  let report = Orca.Optimizer.optimize ~config accessor query in
  Printf.printf "SQL: %s\n\nOptimized plan:\n%s\n" sql
    (Plan_ops.to_string report.Orca.Optimizer.plan);
  Printf.printf
    "optimization: %.1f ms, %d memo groups, %d group expressions, %d jobs\n\n"
    report.Orca.Optimizer.opt_time_ms report.Orca.Optimizer.groups
    report.Orca.Optimizer.gexprs report.Orca.Optimizer.jobs_created;

  (* 6. Execute on the cluster. *)
  let rows, metrics = Exec.Executor.run cluster report.Orca.Optimizer.plan in
  Printf.printf "results:\n";
  List.iter
    (fun row ->
      Printf.printf "  %s\n"
        (String.concat " | " (List.map Datum.to_string (Array.to_list row))))
    rows;
  Printf.printf "\nexecution: %s\n" (Exec.Metrics.to_string metrics)

examples/running_example.ml: Catalog Cost Datum Dtype Dxl Expr Ir List Ltree Memolib Plan_ops Printf Props Search Sqlfront Stats String Xform

examples/taqo_accuracy.mli:

examples/running_example.mli:

examples/quickstart.mli:

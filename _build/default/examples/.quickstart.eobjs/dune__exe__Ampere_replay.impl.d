examples/ampere_replay.ml: Catalog Cost Filename Ir List Orca Printf Sqlfront String Sys Tpcds

examples/engine_shootout.ml: Engines List Option Printf Tpcds

examples/mini_warehouse.mli:

examples/taqo_accuracy.ml: Catalog Engines Exec Float List Memolib Orca Printf Sqlfront Tpcds

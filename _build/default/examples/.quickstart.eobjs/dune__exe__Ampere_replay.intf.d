examples/ampere_replay.mli:

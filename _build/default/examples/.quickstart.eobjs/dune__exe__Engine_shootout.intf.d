examples/engine_shootout.mli:

examples/quickstart.ml: Array Catalog Datum Dtype Exec Gpos Ir List Orca Plan_ops Printf Sqlfront Stats String

examples/mini_warehouse.ml: Array Catalog Datum Engines Exec Float Ir List Orca Plan_ops Planner Printf Sqlfront String Sys Tpcds

(* AMPERe (paper §6.1): capture a minimal, portable, executable repro of an
   optimization session, serialize it to a DXL dump file, and replay it with
   NO connection to the original "database" — the dump's embedded metadata
   serves as the MD provider (paper Figure 10).

     dune exec examples/ampere_replay.exe
*)

let () =
  (* an optimization session against the mini warehouse, with a recording
     provider harvesting exactly the metadata the optimizer touches *)
  let db = Tpcds.Datagen.generate ~sf:0.05 () in
  let backend = Tpcds.Datagen.provider db in
  let recording, _ = Catalog.Provider.recording backend in
  let accessor =
    Catalog.Accessor.create ~provider:recording
      ~cache:(Catalog.Md_cache.create ()) ()
  in
  let sql =
    "SELECT i_brand, sum(ss_ext_sales_price) AS revenue FROM store_sales, \
     date_dim, item WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = \
     i_item_sk AND d_year = 2000 GROUP BY i_brand ORDER BY revenue DESC LIMIT 3"
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let config = Orca.Orca_config.with_segments Orca.Orca_config.default 8 in
  let report = Orca.Optimizer.optimize ~config accessor query in
  Printf.printf "original plan (cost %.1f):\n%s\n"
    report.Orca.Optimizer.plan.Ir.Expr.pcost
    (Ir.Plan_ops.to_string report.Orca.Optimizer.plan);

  (* capture: query + configuration + the MD cache working set + expected plan *)
  let dump =
    Orca.Ampere.capture
      ~traceflags:[ ("segments", "8") ]
      ~expected_plan:report.Orca.Optimizer.plan accessor query
  in
  let path = Filename.temp_file "ampere" ".xml" in
  Orca.Ampere.save dump path;
  Printf.printf "dump written to %s (%d metadata objects, %d bytes)\n\n" path
    (List.length dump.Orca.Ampere.metadata)
    (String.length (Orca.Ampere.to_string dump));

  (* ... ship the file to another machine; no backend required there ... *)

  let loaded = Orca.Ampere.load path in
  Printf.printf "replaying the dump offline (paper Figure 10)...\n";
  let replayed = Orca.Ampere.replay ~config loaded in
  Printf.printf "replayed plan (cost %.1f):\n%s\n"
    replayed.Orca.Optimizer.plan.Ir.Expr.pcost
    (Ir.Plan_ops.to_string replayed.Orca.Optimizer.plan);

  (* dumps double as regression tests: compare against the embedded plan *)
  (match Orca.Ampere.verify ~config loaded with
  | Orca.Ampere.Replay_match -> print_endline "verify: plans match (test case passes)"
  | Orca.Ampere.Replay_plan_diff d -> Printf.printf "verify: PLAN DIFF - %s\n" d
  | Orca.Ampere.Replay_failed m -> Printf.printf "verify: FAILED - %s\n" m);

  (* a cost-model change would flip the verdict, flagging the regression *)
  let tweaked =
    {
      config with
      Orca.Orca_config.model =
        {
          (Cost.Cost_model.with_segments Cost.Cost_model.default 8) with
          Cost.Cost_model.net_tuple_cost = 2000.0;
        };
    }
  in
  (match Orca.Ampere.verify ~config:tweaked loaded with
  | Orca.Ampere.Replay_match ->
      print_endline "verify (tweaked cost model): still matches"
  | Orca.Ampere.Replay_plan_diff d ->
      Printf.printf "verify (tweaked cost model): plan changed - %s\n" d
  | Orca.Ampere.Replay_failed m -> Printf.printf "verify: FAILED - %s\n" m);
  Sys.remove path

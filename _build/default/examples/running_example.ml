(* The paper's running example (§4.1, Figures 4-7):

     SELECT T1.a FROM T1, T2 WHERE T1.a = T2.b ORDER BY T1.a;

   with T1 hash-distributed on T1.a and T2 hash-distributed on T2.a. This
   walks the exact workflow of the paper: the DXL query message (Listing 1),
   the initial Memo contents (Figure 4), statistics derivation, exploration/
   implementation, the optimization requests and their contexts (Figure 6),
   and the final extracted plan.

     dune exec examples/running_example.exe
*)

open Ir

let () =
  (* metadata: mdids match the paper's Listing 1 *)
  let cols =
    [
      { Catalog.Metadata.col_name = "a"; col_type = Dtype.Int };
      { Catalog.Metadata.col_name = "b"; col_type = Dtype.Int };
    ]
  in
  let rel name oid =
    Catalog.Metadata.rel_make
      ~dist:(Catalog.Metadata.Hash_cols [ 0 ])
      ~mdid:(Catalog.Md_id.make oid) ~name cols
  in
  let stats oid rows ndv =
    {
      Catalog.Metadata.st_mdid = Catalog.Md_id.make oid;
      st_rows = rows;
      st_col_hists =
        [
          (0, Stats.Histogram.uniform ~lo:(Datum.Int 0) ~hi:(Datum.Int 999) ~rows ~ndv);
          (1, Stats.Histogram.uniform ~lo:(Datum.Int 0) ~hi:(Datum.Int 999) ~rows ~ndv);
        ];
    }
  in
  let provider =
    Catalog.Provider.of_objects ~name:"paper"
      [
        Catalog.Metadata.Rel (rel "T1" 1639448);
        Catalog.Metadata.Rel (rel "T2" 2868145);
        Catalog.Metadata.Rel_stats (stats 1639448 10000.0 1000.0);
        Catalog.Metadata.Rel_stats (stats 2868145 50000.0 1000.0);
      ]
  in
  let accessor =
    Catalog.Accessor.create ~provider ~cache:(Catalog.Md_cache.create ()) ()
  in
  let query =
    Sqlfront.Binder.bind_sql accessor
      "SELECT T1.a FROM T1, T2 WHERE T1.a = T2.b ORDER BY T1.a"
  in

  print_endline "=== The DXL query message (paper Listing 1) ===";
  print_string (Dxl.Dxl_query.to_string query);

  (* replicate the optimizer's internals step by step *)
  let factory = Catalog.Accessor.factory accessor in
  let base td = Catalog.Accessor.base_stats accessor td in
  let tree = Xform.Normalize.run query.Dxl.Dxl_query.tree in
  let memo = Memolib.Memo.create () in
  let rec copy_in (t : Ltree.t) : Memolib.Mexpr.t =
    {
      Memolib.Mexpr.op = Expr.Logical t.Ltree.op;
      children = List.map (fun c -> Memolib.Mexpr.Node (copy_in c)) t.Ltree.children;
    }
  in
  let root = Memolib.Memo.insert memo (copy_in tree) in
  Memolib.Memo.set_root memo (Memolib.Memo.find memo root.Memolib.Memo.ge_group);

  print_endline "\n=== Initial Memo after copy-in (paper Figure 4) ===";
  print_string (Memolib.Memo.to_string memo);

  let engine =
    Search.Engine.create ~ruleset:Xform.Ruleset.default
      ~model:(Cost.Cost_model.with_segments Cost.Cost_model.default 16)
      ~factory ~base memo
  in
  Search.Engine.explore engine;
  print_endline "\n=== Memo after exploration (join commutativity fired) ===";
  print_string (Memolib.Memo.to_string memo);

  Search.Engine.derive_statistics engine;
  print_endline "\n=== Statistics derivation (paper Figure 5) ===";
  List.iter
    (fun gid ->
      match Memolib.Memo.stats memo gid with
      | Some s ->
          Printf.printf "GROUP %d: %s\n" gid (Stats.Relstats.to_string s)
      | None -> ())
    (Memolib.Memo.group_ids memo);

  Search.Engine.implement engine;
  print_endline "\n=== Memo after implementation (scans, hash/NL/merge joins) ===";
  print_string (Memolib.Memo.to_string memo);

  (* the initial optimization request: req #1 {Singleton, <T1.a>} *)
  let req =
    { Props.rdist = query.Dxl.Dxl_query.dist; rorder = query.Dxl.Dxl_query.order }
  in
  Printf.printf "\n=== Optimization under request %s (paper Figure 6) ===\n"
    (Props.req_to_string req);
  Search.Engine.optimize engine req;

  (* show each group's optimization contexts: the "group hash tables" *)
  List.iter
    (fun gid ->
      let ctxs = Memolib.Memo.contexts_of_group memo gid in
      if ctxs <> [] then begin
        Printf.printf "GROUP %d contexts:\n" gid;
        List.iter
          (fun (ctx : Memolib.Memo.context) ->
            match ctx.Memolib.Memo.cx_best with
            | Some best ->
                Printf.printf "  req %-28s -> gexpr %d%s  cost %.1f\n"
                  (Props.req_to_string ctx.Memolib.Memo.cx_req)
                  best.Memolib.Memo.a_gexpr.Memolib.Memo.ge_id
                  (match best.Memolib.Memo.a_enforcers with
                  | [] -> ""
                  | enfs ->
                      " + "
                      ^ String.concat " + "
                          (List.map Props.enforcer_to_string enfs))
                  best.Memolib.Memo.a_cost
            | None ->
                Printf.printf "  req %-28s -> (no plan)\n"
                  (Props.req_to_string ctx.Memolib.Memo.cx_req))
          ctxs
      end)
    (Memolib.Memo.group_ids memo);

  let plan = Memolib.Extract.best_plan memo (Memolib.Memo.root memo) req in
  print_endline "\n=== Extracted final plan (paper Figure 6, right) ===";
  print_string (Plan_ops.to_string plan);

  Printf.printf "\nplans encoded in the Memo for this request: %.0f\n"
    (Memolib.Extract.count_plans memo (Memolib.Memo.root memo) req);

  print_endline "\n=== The DXL plan message shipped back (paper Figure 2) ===";
  print_string (Dxl.Dxl_plan.to_string plan)

(* SQL-on-Hadoop shootout (paper §7.3): run a handful of workload queries
   through HAWQ(Orca) and the Impala/Presto/Stinger simulations, showing
   unsupported features, out-of-memory failures and speed-ups.

     dune exec examples/engine_shootout.exe
*)

let () =
  let db = Tpcds.Datagen.generate ~sf:0.1 () in
  let env = Engines.Engine.create_env ~nsegs:8 db in
  let specs =
    [
      Engines.Engine.hawq ~mem_per_seg:(64.0 *. 1024.0 *. 1024.0);
      Engines.Engine.impala ~mem_per_seg:60_000.0;
      Engines.Engine.presto ~mem_per_seg:100.0;
      Engines.Engine.stinger ~mem_per_seg:(64.0 *. 1024.0 *. 1024.0);
    ]
  in
  let picks = [ 1; 13; 31; 39; 64; 71; 98 ] in
  List.iter
    (fun qid ->
      let q = Tpcds.Queries.get qid in
      Printf.printf "\n=== q%d (%s)\n%s\n" qid q.Tpcds.Queries.family
        q.Tpcds.Queries.sql;
      List.iter
        (fun spec ->
          let r = Engines.Engine.run spec env q in
          let status =
            match r.Engines.Engine.status with
            | Engines.Engine.S_ok ->
                Printf.sprintf "ok     %.5fs  (%d rows)"
                  (Option.get r.Engines.Engine.sim_seconds)
                  (Option.get r.Engines.Engine.rows)
            | s -> Engines.Engine.status_to_string s
          in
          Printf.printf "  %-8s %s\n"
            (Engines.Engine.name_to_string spec.Engines.Engine.ename)
            status)
        specs)
    picks

(* TAQO (paper §6.2, Figure 11): sample plans uniformly from the Memo,
   execute each one, and score how well the cost model orders them.

     dune exec examples/taqo_accuracy.exe
*)

let () =
  let db = Tpcds.Datagen.generate ~sf:0.1 () in
  let env = Engines.Engine.create_env ~nsegs:8 db in
  let cluster =
    Engines.Engine.cluster_for env ~mem_per_seg:(64.0 *. 1024.0 *. 1024.0)
  in
  let sql =
    "SELECT i_category, count(*) AS cnt, sum(ss_ext_sales_price) AS revenue \
     FROM store_sales, item, date_dim WHERE ss_item_sk = i_item_sk AND \
     ss_sold_date_sk = d_date_sk AND d_year = 2001 GROUP BY i_category ORDER \
     BY revenue DESC LIMIT 10"
  in
  let accessor =
    Catalog.Accessor.create ~provider:env.Engines.Engine.provider
      ~cache:env.Engines.Engine.cache ()
  in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let config = Orca.Orca_config.with_segments Orca.Orca_config.default 8 in
  let report = Orca.Optimizer.optimize ~config accessor query in

  Printf.printf "query: %s\n\n" sql;
  Printf.printf "plan space encoded in the Memo: %.0f plans\n\n"
    (Memolib.Extract.count_plans report.Orca.Optimizer.memo
       (Memolib.Memo.root report.Orca.Optimizer.memo)
       report.Orca.Optimizer.root_req);

  let outcome =
    Orca.Taqo.run ~n:16 report ~execute:(fun plan ->
        let _, m = Exec.Executor.run cluster plan in
        m.Exec.Metrics.sim_seconds)
  in
  Printf.printf "%-14s %-14s\n" "estimated" "actual (s)";
  List.iter
    (fun (p : Orca.Taqo.point) ->
      let marker =
        if p.Orca.Taqo.plan == (List.hd outcome.Orca.Taqo.points).Orca.Taqo.plan
        then "  <- optimizer's choice"
        else ""
      in
      Printf.printf "%14.1f %14.6f%s\n" p.Orca.Taqo.estimated p.Orca.Taqo.actual
        marker)
    (List.sort
       (fun (a : Orca.Taqo.point) b ->
         Float.compare a.Orca.Taqo.estimated b.Orca.Taqo.estimated)
       outcome.Orca.Taqo.points);
  Printf.printf
    "\nTAQO correlation score: %+.3f (1.0 = cost model orders plans \
     perfectly)\nactual-runtime rank of the chosen plan: %d of %d\n"
    outcome.Orca.Taqo.score outcome.Orca.Taqo.best_rank
    (List.length outcome.Orca.Taqo.points)

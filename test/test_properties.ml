(* Cross-cutting property-based tests: randomly generated queries are run
   through Orca (optimize + distributed execution), the legacy Planner, and
   the naive single-node oracle — all three must agree. This is the
   repository's strongest end-to-end invariant. *)

let rand_pred rng table =
  let col = if Gpos.Prng.bool rng then table ^ ".a" else table ^ ".b" in
  let v = Gpos.Prng.int rng 300 in
  match Gpos.Prng.int rng 5 with
  | 0 -> Printf.sprintf "%s = %d" col v
  | 1 -> Printf.sprintf "%s < %d" col v
  | 2 -> Printf.sprintf "%s > %d" col v
  | 3 -> Printf.sprintf "%s BETWEEN %d AND %d" col (v / 2) v
  | _ -> Printf.sprintf "%s IN (%d, %d, %d)" col v (v + 1) (v + 17)

(* generate a random (but always valid) query over the small schema *)
let rand_query (seed : int) : string =
  let rng = Gpos.Prng.create seed in
  let joined = Gpos.Prng.bool rng in
  let grouped = Gpos.Prng.bool rng in
  let preds =
    List.init (Gpos.Prng.int rng 3) (fun _ ->
        rand_pred rng (if joined && Gpos.Prng.bool rng then "t2" else "t1"))
  in
  let where_clause conds =
    match conds with [] -> "" | cs -> " WHERE " ^ String.concat " AND " cs
  in
  if joined then begin
    let join_key = "t1.a = t2.b" in
    if grouped then
      Printf.sprintf
        "SELECT t1.a, count(*) AS c, sum(t2.a) AS s FROM t1, t2%s GROUP BY \
         t1.a ORDER BY t1.a LIMIT 100"
        (where_clause (join_key :: preds))
    else
      Printf.sprintf
        "SELECT t1.a, t1.b, t2.a FROM t1, t2%s ORDER BY 1, 2, 3 LIMIT 200"
        (where_clause (join_key :: preds))
  end
  else if grouped then
    Printf.sprintf
      "SELECT b, count(*) AS c, min(a) AS mn, max(a) AS mx FROM t1%s GROUP BY \
       b ORDER BY b LIMIT 100"
      (where_clause preds)
  else
    Printf.sprintf "SELECT a, b FROM t1%s ORDER BY a, b LIMIT 200"
      (where_clause preds)

let agree_on seed =
  let sql = rand_query seed in
  let _, _, orca_rows, _ = Fixtures.run_orca_sql sql in
  let naive_rows = Fixtures.run_naive_sql sql in
  let _, planner_rows, _ = Fixtures.run_planner_sql sql in
  let ok =
    Fixtures.rows_equal orca_rows naive_rows
    && Fixtures.rows_equal planner_rows naive_rows
  in
  if not ok then
    QCheck.Test.fail_reportf "disagreement on seed %d:\n%s\norca=%d planner=%d naive=%d"
      seed sql (List.length orca_rows) (List.length planner_rows)
      (List.length naive_rows)
  else true

let prop_three_way_agreement =
  QCheck.Test.make ~count:60 ~name:"orca = planner = naive on random queries"
    QCheck.small_nat agree_on

(* plans extracted from the memo always validate structurally *)
let prop_plans_validate =
  QCheck.Test.make ~count:30 ~name:"optimized plans validate"
    QCheck.small_nat
    (fun seed ->
      let sql = rand_query (seed + 10_000) in
      let _, report, _, _ = Fixtures.run_orca_sql sql in
      Ir.Plan_ops.validate report.Orca.Optimizer.plan > 0)

(* the optimizer's chosen plan cost is minimal among sampled alternatives *)
let prop_chosen_plan_cheapest_estimate =
  QCheck.Test.make ~count:15 ~name:"chosen plan has minimal estimated cost"
    QCheck.small_nat
    (fun seed ->
      let sql = rand_query (seed + 20_000) in
      let _, report, _, _ = Fixtures.run_orca_sql sql in
      let chosen = report.Orca.Optimizer.plan.Ir.Expr.pcost in
      let sampled = Orca.Taqo.sample_plans ~n:8 report in
      List.for_all
        (fun (p : Ir.Expr.plan) -> p.Ir.Expr.pcost >= chosen -. 1e-6)
        sampled)

(* random window queries agree across the three execution paths *)
let rand_window_query (seed : int) : string =
  let rng = Gpos.Prng.create (seed + 77_000) in
  let part = if Gpos.Prng.bool rng then "PARTITION BY a" else "" in
  let order =
    match Gpos.Prng.int rng 3 with
    | 0 -> "ORDER BY b"
    | 1 -> "ORDER BY b DESC"
    | _ -> ""
  in
  let func =
    match Gpos.Prng.int rng 6 with
    | 0 -> "row_number()"
    | 1 when order <> "" -> "rank()"
    | 2 -> "sum(b)"
    | 3 -> "count(*)"
    | 4 when order <> "" -> "dense_rank()"
    | _ -> "min(b)"
  in
  let func =
    if (func = "rank()" || func = "dense_rank()") && order = "" then
      "row_number()"
    else func
  in
  let spec = String.trim (part ^ " " ^ order) in
  Printf.sprintf
    "SELECT a, b, %s OVER (%s) AS w FROM t1 WHERE a < %d ORDER BY a, b, w      LIMIT 300"
    func spec
    (5 + Gpos.Prng.int rng 40)

let prop_window_three_way =
  QCheck.Test.make ~count:40 ~name:"window queries: orca = planner = naive"
    QCheck.small_nat
    (fun seed ->
      let sql = rand_window_query seed in
      let _, _, orca_rows, _ = Fixtures.run_orca_sql sql in
      let naive_rows = Fixtures.run_naive_sql sql in
      let _, planner_rows, _ = Fixtures.run_planner_sql sql in
      Fixtures.rows_equal orca_rows naive_rows
      && Fixtures.rows_equal planner_rows naive_rows)

(* random ROLLUP queries agree across the three execution paths *)
let rand_rollup_query (seed : int) : string =
  let rng = Gpos.Prng.create (seed + 990_000) in
  let cols = if Gpos.Prng.bool rng then "a, b" else "b" in
  let sel_grouping =
    if Gpos.Prng.bool rng then ", grouping(b) AS g" else ""
  in
  let pred = 5 + Gpos.Prng.int rng 40 in
  let agg =
    match Gpos.Prng.int rng 3 with
    | 0 -> "count(*) AS c"
    | 1 -> "sum(a) AS c"
    | _ -> "min(a) AS c"
  in
  if cols = "a, b" then
    Printf.sprintf
      "SELECT a, b, %s%s FROM t1 WHERE a < %d GROUP BY ROLLUP (a, b) ORDER \
       BY a, b, c LIMIT 400"
      agg sel_grouping pred
  else
    Printf.sprintf
      "SELECT b, %s%s FROM t1 WHERE a < %d GROUP BY ROLLUP (b) ORDER BY b, \
       c LIMIT 400"
      agg sel_grouping pred

let prop_rollup_three_way =
  QCheck.Test.make ~count:30 ~name:"ROLLUP queries: orca = planner = naive"
    QCheck.small_nat
    (fun seed ->
      let sql = rand_rollup_query seed in
      let _, _, orca_rows, _ = Fixtures.run_orca_sql sql in
      let naive_rows = Fixtures.run_naive_sql sql in
      let _, planner_rows, _ = Fixtures.run_planner_sql sql in
      Fixtures.rows_equal orca_rows naive_rows
      && Fixtures.rows_equal planner_rows naive_rows)

(* disabling optimizer features must change plans, never results: every
   ablation config still produces a plan that executes to the oracle's
   answer (exercises enforcement under forced-physical-operator plans) *)
let ablation_configs =
  lazy
    (let base =
       Orca.Orca_config.with_segments Orca.Orca_config.default 4
     in
     [
       ("no-join-ordering",
        Orca.Orca_config.without_rules base
          [ "JoinCommutativity"; "JoinAssociativity" ]);
       ("no-split-agg", Orca.Orca_config.without_rules base [ "SplitGbAgg" ]);
       ("no-hash-join", Orca.Orca_config.without_rules base [ "Join2HashJoin" ]);
       ("no-hash-agg", Orca.Orca_config.without_rules base [ "GbAgg2HashAgg" ]);
       ("no-merge-join", Orca.Orca_config.without_rules base [ "Join2MergeJoin" ]);
       ("no-column-pruning", Orca.Orca_config.without_column_pruning base);
     ])

let prop_ablations_still_correct =
  QCheck.Test.make ~count:36
    ~name:"every ablation config still executes to the oracle's answer"
    QCheck.small_nat
    (fun seed ->
      let sql = rand_query (seed + 40_000) in
      let name, config =
        List.nth (Lazy.force ablation_configs)
          (seed mod List.length (Lazy.force ablation_configs))
      in
      let s = Lazy.force Fixtures.small in
      let accessor = Fixtures.small_accessor () in
      let query = Sqlfront.Binder.bind_sql accessor sql in
      let report = Orca.Optimizer.optimize ~config accessor query in
      let rows, _ = Exec.Executor.run s.Fixtures.cluster report.Orca.Optimizer.plan in
      let ok = Fixtures.rows_equal rows (Fixtures.run_naive_sql sql) in
      if not ok then
        QCheck.Test.fail_reportf "ablation %s broke correctness on:\n%s" name
          sql
      else true)

(* plans survive DXL serialization: the round-tripped plan is structurally
   identical and executes to the same rows (paper §3: the plan message is
   the contract between optimizer and executor) *)
let prop_plan_dxl_roundtrip =
  QCheck.Test.make ~count:25 ~name:"optimized plans round-trip through DXL"
    QCheck.small_nat
    (fun seed ->
      let sql = rand_query (seed + 60_000) in
      let _, report, rows, _ = Fixtures.run_orca_sql sql in
      let plan = report.Orca.Optimizer.plan in
      let plan' = Dxl.Dxl_plan.of_string (Dxl.Dxl_plan.to_string plan) in
      let s = Lazy.force Fixtures.small in
      let rows', _ = Exec.Executor.run s.Fixtures.cluster plan' in
      Ir.Plan_ops.node_count plan = Ir.Plan_ops.node_count plan'
      && Fixtures.rows_equal rows rows')

(* the grouping-set mask generator: ROLLUP yields exactly the prefixes,
   CUBE exactly the subsets, both widest-first and duplicate-free *)
let prop_grouping_masks =
  QCheck.Test.make ~count:200 ~name:"ROLLUP/CUBE mask generation"
    (QCheck.make (QCheck.Gen.int_range 0 8))
    (fun n ->
      let popcount m =
        let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
        go m 0
      in
      let sorted_desc l =
        let rec ok = function
          | a :: (b :: _ as rest) -> popcount a >= popcount b && ok rest
          | _ -> true
        in
        ok l
      in
      let r = Sqlfront.Rollup.masks Sqlfront.Ast.G_rollup n in
      let c = Sqlfront.Rollup.masks Sqlfront.Ast.G_cube n in
      (* rollup: n+1 masks, each a prefix (mask+1 is a power of two) *)
      List.length r = n + 1
      && List.for_all (fun m -> m land (m + 1) = 0) r
      && List.length (List.sort_uniq compare r) = n + 1
      && sorted_desc r
      (* cube: all 2^n subsets exactly once, widest first *)
      && List.length c = 1 lsl n
      && List.length (List.sort_uniq compare c) = 1 lsl n
      && List.for_all (fun m -> m >= 0 && m < 1 lsl n) c
      && sorted_desc c
      (* rollup's sets are a subset of cube's *)
      && List.for_all (fun m -> List.mem m c) r)

(* --- algebraic properties of the IR --- *)

open Ir

let datum_gen : Datum.t QCheck.Gen.t =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return Datum.Null;
      QCheck.Gen.map (fun n -> Datum.Int (n - 500)) (QCheck.Gen.int_bound 1000);
      QCheck.Gen.map (fun f -> Datum.Float (f -. 5.0)) (QCheck.Gen.float_bound_exclusive 10.0);
      QCheck.Gen.map (fun b -> Datum.Bool b) QCheck.Gen.bool;
      QCheck.Gen.map (fun s -> Datum.String s) (QCheck.Gen.string_size (QCheck.Gen.int_bound 5));
      QCheck.Gen.map (fun n -> Datum.Date n) (QCheck.Gen.int_bound 40000);
    ]

let prop_datum_total_order =
  QCheck.Test.make ~count:300 ~name:"Datum.compare is a total order"
    (QCheck.make (QCheck.Gen.triple datum_gen datum_gen datum_gen))
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      (* antisymmetry *)
      sgn (Datum.compare a b) = -sgn (Datum.compare b a)
      (* transitivity *)
      && (not (Datum.compare a b <= 0 && Datum.compare b c <= 0)
         || Datum.compare a c <= 0)
      (* reflexivity *)
      && Datum.compare a a = 0)

let prop_datum_serialize_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Datum serialize/deserialize round-trip"
    (QCheck.make datum_gen)
    (fun d -> Datum.equal d (Datum.deserialize (Datum.serialize d)))

(* every enforcement chain produced for a random delivered/required pair
   actually reaches the requirement *)
let dist_gen cols : Props.dist QCheck.Gen.t =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return Props.D_singleton;
      QCheck.Gen.return Props.D_replicated;
      QCheck.Gen.return Props.D_random;
      QCheck.Gen.map (fun i -> Props.D_hashed [ List.nth cols (i mod 2) ])
        QCheck.Gen.small_nat;
    ]

let dist_req_gen cols : Props.dist_req QCheck.Gen.t =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return Props.Any_dist;
      QCheck.Gen.return Props.Req_singleton;
      QCheck.Gen.return Props.Req_replicated;
      QCheck.Gen.return Props.Req_non_singleton;
      QCheck.Gen.map (fun i -> Props.Req_hashed [ List.nth cols (i mod 2) ])
        QCheck.Gen.small_nat;
    ]

let order_gen cols : Sortspec.t QCheck.Gen.t =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return [];
      QCheck.Gen.map (fun i -> [ Sortspec.asc (List.nth cols (i mod 2)) ])
        QCheck.Gen.small_nat;
      QCheck.Gen.map
        (fun i -> [ Sortspec.desc (List.nth cols (i mod 2)) ])
        QCheck.Gen.small_nat;
    ]

let prop_enforcement_sound =
  let cols = [ Fixtures.col 31 "x"; Fixtures.col 32 "y" ] in
  QCheck.Test.make ~count:400
    ~name:"every enforcement chain reaches the requirement"
    (QCheck.make
       (QCheck.Gen.quad (dist_gen cols) (order_gen cols) (dist_req_gen cols)
          (order_gen cols)))
    (fun (ddist, dorder, rdist, rorder) ->
      let delivered = { Props.ddist; dorder } in
      let required = { Props.rdist; rorder } in
      let chains = Props.enforcement_alternatives ~delivered ~required in
      (* chains may be empty only when enforcement is impossible; when
         produced, each must reach the requirement, and satisfaction implies
         the empty chain *)
      List.for_all
        (fun chain ->
          Props.satisfies (Props.apply_enforcers delivered chain) required)
        chains
      && ((not (Props.satisfies delivered required)) || List.mem [] chains))

(* deterministic enforcement edge cases (paper Fig. 7): every produced chain
   must reach the requirement, and the characteristic chains must be among
   the alternatives *)
let checked_chains delivered required =
  let chains = Props.enforcement_alternatives ~delivered ~required in
  Alcotest.(check bool)
    (Printf.sprintf "some chain enforces %s" (Props.req_to_string required))
    true (chains <> []);
  List.iter
    (fun chain ->
      Alcotest.(check bool)
        (Printf.sprintf "chain [%s] reaches %s"
           (String.concat "; " (List.map Props.enforcer_to_string chain))
           (Props.req_to_string required))
        true
        (Props.satisfies (Props.apply_enforcers delivered chain) required))
    chains;
  chains

let test_enforce_replicated_to_hashed () =
  let x = Fixtures.col 41 "x" in
  let delivered = { Props.ddist = Props.D_replicated; dorder = [] } in
  let required = Props.req_dist (Props.Req_hashed [ x ]) in
  let chains = checked_chains delivered required in
  Alcotest.(check bool)
    "a Redistribute chain exists" true
    (List.exists
       (List.exists (function
         | Props.E_motion (Expr.Redistribute _) -> true
         | _ -> false))
       chains)

let test_enforce_singleton_to_non_singleton () =
  let delivered = { Props.ddist = Props.D_singleton; dorder = [] } in
  let required = Props.req_dist Props.Req_non_singleton in
  ignore (checked_chains delivered required)

(* A parallel sorted result gathered to the master: both Fig. 7 plans must be
   offered — sort below a GatherMerge, and Gather followed by a Sort — since
   only the cost model can rank them. *)
let test_enforce_sort_gather_variants () =
  let x = Fixtures.col 42 "x" in
  let spec = [ Sortspec.asc x ] in
  let delivered = { Props.ddist = Props.D_random; dorder = [] } in
  let required = { Props.rdist = Props.Req_singleton; rorder = spec } in
  let chains = checked_chains delivered required in
  let sort_then_merge chain =
    (* applied bottom-up: Sort first, then a merging gather above it *)
    match chain with
    | [ Props.E_sort _; Props.E_motion (Expr.Gather_merge _) ] -> true
    | _ -> false
  in
  let gather_then_sort chain =
    match chain with
    | [ Props.E_motion Expr.Gather; Props.E_sort _ ] -> true
    | _ -> false
  in
  Alcotest.(check bool)
    "sort-then-gather-merge offered" true
    (List.exists sort_then_merge chains);
  Alcotest.(check bool)
    "gather-then-sort offered" true
    (List.exists gather_then_sort chains)

(* histograms built from data predict selectivity consistently with actually
   filtering the data *)
let prop_histogram_matches_data =
  QCheck.Test.make ~count:100
    ~name:"histogram eq-selectivity tracks the data"
    (QCheck.make
       (QCheck.Gen.pair
          (QCheck.Gen.list_size (QCheck.Gen.int_range 50 300)
             (QCheck.Gen.int_bound 20))
          (QCheck.Gen.int_bound 20)))
    (fun (values, probe) ->
      let data = List.map (fun v -> Datum.Int v) values in
      let h = Stats.Histogram.build data in
      let actual =
        float_of_int (List.length (List.filter (fun v -> v = probe) values))
        /. float_of_int (List.length values)
      in
      let est = Stats.Histogram.selectivity_cmp h Expr.Eq (Datum.Int probe) in
      (* within a loose band: equi-height buckets spread distincts evenly *)
      Float.abs (est -. actual) < 0.25)

(* constant folding preserves three-valued semantics on well-typed scalars
   (the binder only ever produces well-typed trees), and is idempotent *)

let folding_cols = Array.init 6 (fun i -> Fixtures.col (400 + i) "f")

(* mutually recursive generators for numeric- and boolean-typed scalars *)
let rec num_scalar_gen depth : Expr.scalar QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun i -> Expr.Col folding_cols.(i mod 6)) small_nat;
        map (fun n -> Expr.Const (Datum.Int (n - 50))) (int_bound 100);
        map (fun f -> Expr.Const (Datum.Float (f -. 5.0)))
          (float_bound_exclusive 10.0);
        return (Expr.Const Datum.Null);
      ]
  in
  if depth = 0 then leaf
  else
    frequency
      [
        (3, leaf);
        ( 3,
          map2
            (fun (op, a) b -> Expr.Arith (op, a, b))
            (pair
               (oneofl [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Div; Expr.Mod ])
               (num_scalar_gen (depth - 1)))
            (num_scalar_gen (depth - 1)) );
        ( 1,
          map3
            (fun c a b -> Expr.Case ([ (c, a) ], Some b))
            (bool_scalar_gen (depth - 1))
            (num_scalar_gen (depth - 1))
            (num_scalar_gen (depth - 1)) );
        ( 1,
          map2
            (fun a b -> Expr.Coalesce [ a; b ])
            (num_scalar_gen (depth - 1))
            (num_scalar_gen (depth - 1)) );
        (1, map (fun a -> Expr.Cast (a, Dtype.Float)) (num_scalar_gen (depth - 1)));
      ]

and bool_scalar_gen depth : Expr.scalar QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun b -> Expr.Const (Datum.Bool b)) bool;
        return (Expr.Const Datum.Null);
        map (fun a -> Expr.Is_null a) (num_scalar_gen 0);
      ]
  in
  if depth = 0 then leaf
  else
    frequency
      [
        (2, leaf);
        ( 3,
          map3
            (fun op a b -> Expr.Cmp (op, a, b))
            (oneofl [ Expr.Eq; Expr.Neq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ])
            (num_scalar_gen (depth - 1))
            (num_scalar_gen (depth - 1)) );
        ( 2,
          map2
            (fun a b -> Expr.And [ a; b ])
            (bool_scalar_gen (depth - 1))
            (bool_scalar_gen (depth - 1)) );
        ( 2,
          map2
            (fun a b -> Expr.Or [ a; b ])
            (bool_scalar_gen (depth - 1))
            (bool_scalar_gen (depth - 1)) );
        (1, map (fun a -> Expr.Not a) (bool_scalar_gen (depth - 1)));
        ( 1,
          map2
            (fun x ds -> Expr.In_list (x, ds))
            (num_scalar_gen (depth - 1))
            (list_size (int_bound 4)
               (oneof
                  [
                    map (fun n -> Datum.Int (n - 50)) (int_bound 100);
                    return Datum.Null;
                  ])) );
      ]

let typed_scalar_gen : Expr.scalar QCheck.Gen.t =
  QCheck.Gen.(oneof [ num_scalar_gen 3; bool_scalar_gen 3 ])

let folding_case_gen : (Expr.scalar * Datum.t array) QCheck.Gen.t =
  QCheck.Gen.pair typed_scalar_gen
    (QCheck.Gen.array_size (QCheck.Gen.return 6)
       (QCheck.Gen.oneof
          [
            QCheck.Gen.map (fun n -> Datum.Int (n - 50)) (QCheck.Gen.int_bound 100);
            QCheck.Gen.return Datum.Null;
          ]))

let prop_fold_constants_sound =
  QCheck.Test.make ~count:500
    ~name:"fold_constants preserves 3VL evaluation and is idempotent"
    (QCheck.make ~print:(fun (s, _) -> Scalar_ops.to_string s) folding_case_gen)
    (fun (s, row) ->
      let env (c : Colref.t) = row.(Colref.id c - 400) in
      let folded = Scalar_eval.fold_constants s in
      Datum.equal (Scalar_eval.eval env s) (Scalar_eval.eval env folded)
      && Scalar_ops.equal folded (Scalar_eval.fold_constants folded))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_three_way_agreement;
    QCheck_alcotest.to_alcotest prop_plans_validate;
    QCheck_alcotest.to_alcotest prop_chosen_plan_cheapest_estimate;
    QCheck_alcotest.to_alcotest prop_window_three_way;
    QCheck_alcotest.to_alcotest prop_rollup_three_way;
    QCheck_alcotest.to_alcotest prop_ablations_still_correct;
    QCheck_alcotest.to_alcotest prop_plan_dxl_roundtrip;
    QCheck_alcotest.to_alcotest prop_grouping_masks;
    QCheck_alcotest.to_alcotest prop_datum_total_order;
    QCheck_alcotest.to_alcotest prop_datum_serialize_roundtrip;
    QCheck_alcotest.to_alcotest prop_enforcement_sound;
    Alcotest.test_case "enforce replicated -> hashed" `Quick
      test_enforce_replicated_to_hashed;
    Alcotest.test_case "enforce singleton -> non-singleton" `Quick
      test_enforce_singleton_to_non_singleton;
    Alcotest.test_case "sort/gather-merge enforcement variants" `Quick
      test_enforce_sort_gather_variants;
    QCheck_alcotest.to_alcotest prop_histogram_matches_data;
    QCheck_alcotest.to_alcotest prop_fold_constants_sound;
  ]

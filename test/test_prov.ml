open Ir

(* lib/prov: plan provenance (explain --why), cardinality accuracy (Q-error),
   the structural plan diff, and the provenance lint (lib/verify). *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let prov_config =
  lazy (Orca.Orca_config.with_prov (Lazy.force Fixtures.orca_config))

let optimize_sql ~config accessor sql =
  let query = Sqlfront.Binder.bind_sql accessor sql in
  Orca.Optimizer.optimize ~config accessor query

let prov_of (report : Orca.Optimizer.report) =
  match report.Orca.Optimizer.prov with
  | Some p -> p
  | None -> Alcotest.fail "prov annotation missing with with_prov config"

(* The workload-template 3-join: store_sales ⋈ date_dim ⋈ item with an
   aggregate, sort and limit on top — exercises rule lineage (agg split,
   join commutativity), losing alternatives, and all three enforcer kinds. *)
let three_join_sql =
  "SELECT i_brand, sum(ss_ext_sales_price) AS revenue FROM store_sales, \
   date_dim, item WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = \
   i_item_sk AND d_year = 1998 GROUP BY i_brand ORDER BY revenue DESC, \
   i_brand LIMIT 10"

let three_join_report =
  lazy
    (Gpos.Clock.with_fake ~start:0.0 ~step:0.001 (fun () ->
         optimize_sql
           ~config:(Lazy.force prov_config)
           (Fixtures.tpcds_accessor ()) three_join_sql))

(* --- the --why golden --- *)

let golden_why =
  {golden|plan provenance (stage full):
-> Limit(<revenue#26 desc, i_brand#21 asc>, offset=0, count=10)  (rows=10 cost=5575.79)
     lineage: Limit2Limit(stage full, promise 0) <- copy-in
     only costed alternative in group 11
  -> GatherMerge<revenue#26 desc, i_brand#21 asc>  (rows=22 cost=5574.79)
       [enforcer] enforces required distribution Singleton via GatherMerge<revenue#26 desc, i_brand#21 asc> (child delivers elsewhere)
    -> Sort<revenue#26 desc, i_brand#21 asc>  (rows=22 cost=5496.03)
         [enforcer] enforces required order [<revenue#26 desc, i_brand#21 asc>] the child does not deliver
      -> Project(i_brand#21 AS i_brand#21, sum#25 AS revenue#26)  (rows=22 cost=5491.29)
           lineage: Project2ComputeScalar(stage full, promise 0) <- copy-in
           beat 2 alternatives in group 10:
             Project(i_brand#21 AS i_brand#21, sum#25 AS revenue#26) cost=5597.79 (+23.00) via Project2ComputeScalar +2 enforcers
             Project(i_brand#21 AS i_brand#21, sum#25 AS revenue#26) cost=5598.62 (+23.83) via Project2ComputeScalar +1 enforcer
        -> FinalHashAgg([i_brand#21], [sum(sum_partial#27) AS sum#25])  (rows=22 cost=5491.02)
             lineage: GbAgg2HashAgg(stage full, promise 5) <- SplitGbAgg(stage full, promise 6) <- copy-in
             beat 7 alternatives in group 9:
               FinalStreamAgg([i_brand#21], [sum(sum_partial#27) AS sum#25]) cost=5579.02 (+88.00) via GbAgg2StreamAgg
               FinalStreamAgg([i_brand#21], [sum(sum_partial#27) AS sum#25]) cost=6558.51 (+1067.50) via GbAgg2StreamAgg
               FinalHashAgg([i_brand#21], [sum(sum_partial#27) AS sum#25]) cost=6724.51 (+1233.49) via GbAgg2HashAgg
               StreamAgg([i_brand#21], [sum(ss_ext_sales_price#8) AS sum#25]) cost=6901.42 (+1410.40) via GbAgg2StreamAgg
               ... and 3 more
          -> Redistribute(i_brand#21)  (rows=318 cost=5340.21)
               [enforcer] enforces required distribution Hashed(i_brand#21) via Redistribute(i_brand#21) (child delivers elsewhere)
            -> PartialHashAgg([i_brand#21], [sum(ss_ext_sales_price#8) AS sum_partial#27])  (rows=318 cost=5079.85)
                 lineage: GbAgg2HashAgg(stage full, promise 5) <- SplitGbAgg(stage full, promise 6) <- copy-in
                 beat 1 alternative in group 13:
                   PartialStreamAgg([i_brand#21], [sum(ss_ext_sales_price#8) AS sum_partial#27]) cost=5428.21 (+88.00) via GbAgg2StreamAgg +1 enforcer
              -> InnerHashJoin(ss_item_sk#1=i_item_sk#18)  (rows=318 cost=4929.04)
                   lineage: Join2HashJoin(stage full, promise 8) <- copy-in
                   beat 43 alternatives in group 8:
                     InnerHashJoin(i_item_sk#18=ss_item_sk#1) cost=4981.89 (+52.85) via Join2HashJoin
                     InnerHashJoin(d_date_sk#11=ss_sold_date_sk#0) cost=5029.79 (+100.75) via Join2HashJoin
                     InnerHashJoin(ss_item_sk#1=i_item_sk#18) cost=5065.64 (+136.60) via Join2HashJoin
                     InnerHashJoin(i_item_sk#18=ss_item_sk#1) cost=5109.12 (+180.08) via Join2HashJoin
                     ... and 39 more
                -> InnerHashJoin(d_date_sk#11=ss_sold_date_sk#0)  (rows=448 cost=4702.45)
                     lineage: Join2HashJoin(stage full, promise 8) <- JoinCommutativity(stage full, promise 10) <- copy-in
                     beat 21 alternatives in group 5:
                       InnerHashJoin(ss_sold_date_sk#0=d_date_sk#11) cost=4757.45 (+55.00) via Join2HashJoin
                       InnerMergeJoin(ss_sold_date_sk#0=d_date_sk#11) cost=6374.93 (+1672.48) via Join2MergeJoin
                       InnerMergeJoin(d_date_sk#11=ss_sold_date_sk#0) cost=6374.93 (+1672.48) via Join2MergeJoin
                       InnerHashJoin(ss_sold_date_sk#0=d_date_sk#11) cost=8482.87 (+3780.41) via Join2HashJoin +1 enforcer
                       ... and 17 more
                  -> Project(d_date_sk#11 AS d_date_sk#11)  (rows=360 cost=3312.00)
                       lineage: Project2ComputeScalar(stage full, promise 0) <- copy-in
                       beat 1 alternative in group 4:
                         Project(d_date_sk#11 AS d_date_sk#11) cost=3312.00 (+0.00) via Project2ComputeScalar
                    -> TableScan(date_dim) filter=(d_year#13 = 1998)  (rows=360 cost=3294.00)
                         lineage: Select2Scan(stage full, promise 5) <- copy-in
                         beat 1 alternative in group 3:
                           Filter((d_year#13 = 1998)) cost=3294.00 (+0.00) via Select2Filter
                  -> Project(ss_sold_date_sk#0 AS ss_sold_date_sk#0, ss_item_sk#1 AS ss_item_sk#1, ss_ext_sales_price#8 AS ss_ext_sales_price#8)  (rows=1000 cost=482.50)
                       lineage: Project2ComputeScalar(stage full, promise 0) <- copy-in
                       beat 1 alternative in group 1:
                         Project(ss_sold_date_sk#0 AS ss_sold_date_sk#0, ss_item_sk#1 AS ss_item_sk#1, ss_ext_sales_price#8 AS ss_ext_sales_price#8) cost=482.50 (+0.00) via Project2ComputeScalar
                    -> TableScan(store_sales)  (rows=1000 cost=470.00)
                         lineage: Get2Scan(stage full, promise 0) <- copy-in
                         only costed alternative in group 0
                -> Project(i_item_sk#18 AS i_item_sk#18, i_brand#21 AS i_brand#21)  (rows=25 cost=14.06)
                     lineage: Project2ComputeScalar(stage full, promise 0) <- copy-in
                     beat 1 alternative in group 7:
                       Project(i_item_sk#18 AS i_item_sk#18, i_brand#21 AS i_brand#21) cost=14.06 (+0.00) via Project2ComputeScalar
                  -> TableScan(item)  (rows=25 cost=13.75)
                       lineage: Get2Scan(stage full, promise 0) <- copy-in
                       only costed alternative in group 6
|golden}

let test_why_golden () =
  let report = Lazy.force three_join_report in
  Alcotest.(check string)
    "golden --why rendering" golden_why
    (Prov.Provenance.why_to_string (prov_of report))

(* Every plan node carries an annotation aligned with the stable preorder
   numbering; the lineage of every operator terminates at a copy-in. *)
let test_annotation_coverage () =
  let report = Lazy.force three_join_report in
  let prov = prov_of report in
  let plan = report.Orca.Optimizer.plan in
  Alcotest.(check int)
    "annotation covers every plan node"
    (Plan_ops.node_count plan)
    (List.length prov.Prov.Provenance.p_nodes);
  List.iteri
    (fun i np ->
      Alcotest.(check int) "preorder ids" i np.Prov.Provenance.np_id)
    prov.Prov.Provenance.p_nodes;
  let enforcers =
    List.filter
      (fun np ->
        match np.Prov.Provenance.np_kind with
        | Prov.Provenance.K_enforcer _ -> true
        | _ -> false)
      prov.Prov.Provenance.p_nodes
  in
  Alcotest.(check int) "three enforcers in the plan" 3 (List.length enforcers);
  List.iter
    (fun np ->
      match np.Prov.Provenance.np_kind with
      | Prov.Provenance.K_operator oi ->
          (* losers are sorted by cost and never include the winner *)
          let rec sorted = function
            | a :: (b :: _ as rest) ->
                a.Prov.Provenance.lo_cost <= b.Prov.Provenance.lo_cost
                && sorted rest
            | _ -> true
          in
          Alcotest.(check bool)
            ("losers sorted at " ^ np.Prov.Provenance.np_path)
            true
            (sorted oi.Prov.Provenance.oi_losers);
          List.iter
            (fun lo ->
              Alcotest.(check bool)
                "loser delta nonnegative" true
                (lo.Prov.Provenance.lo_delta >= 0.0))
            oi.Prov.Provenance.oi_losers
      | _ -> ())
    prov.Prov.Provenance.p_nodes

(* Off by default, and free when off: no annotation on the report and no
   origin record anywhere in the Memo. *)
let test_prov_off_by_default () =
  let _, report, _, _ =
    Fixtures.run_orca_sql "SELECT t1.a FROM t1, t2 WHERE t1.b = t2.a"
  in
  Alcotest.(check bool)
    "no annotation without the prov flag" true
    (report.Orca.Optimizer.prov = None);
  let memo = report.Orca.Optimizer.memo in
  List.iter
    (fun gid ->
      List.iter
        (fun ge ->
          Alcotest.(check bool)
            "no origin allocated with prov off" true
            (ge.Memolib.Memo.ge_origin = None))
        (Memolib.Memo.group memo gid).Memolib.Memo.g_exprs)
    (Memolib.Memo.group_ids memo)

(* A plan that did not come out of this Memo's winner linkage is corrupted
   provenance: annotate must refuse it rather than fabricate lineage. *)
let test_annotate_rejects_foreign_plan () =
  let report = Lazy.force three_join_report in
  let foreign =
    optimize_sql
      ~config:(Lazy.force prov_config)
      (Fixtures.small_accessor ())
      "SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.b = t2.a ORDER BY t1.a"
  in
  match
    Prov.Provenance.annotate report.Orca.Optimizer.memo
      ~req:report.Orca.Optimizer.root_req ~stage:"full"
      foreign.Orca.Optimizer.plan
  with
  | _ -> Alcotest.fail "annotate accepted a plan from a different Memo"
  | exception Gpos.Gpos_error.Error _ -> ()

(* --- Q-error --- *)

let test_qerror_hand_computed () =
  let check_q name expected ~est ~act =
    Alcotest.(check (float 1e-9))
      name expected
      (Prov.Accuracy.qerror ~est ~act)
  in
  check_q "overestimate 4x" 4.0 ~est:100.0 ~act:25.0;
  check_q "underestimate 100x" 100.0 ~est:10.0 ~act:1000.0;
  check_q "exact" 1.0 ~est:7.0 ~act:7.0;
  (* both sides clamp to >= 1 row *)
  check_q "empty vs empty" 1.0 ~est:0.0 ~act:0.0;
  check_q "empty estimate" 10.0 ~est:0.0 ~act:10.0;
  check_q "fractional estimate clamps" 2.0 ~est:0.5 ~act:2.0

(* Synthetic actuals (2x the estimate on even ids, missing on odd ids)
   against a real optimized plan: per-node Q-errors and the per-class
   aggregation must come out exactly as hand-computed. *)
let test_accuracy_join_hand_computed () =
  let _, report, _, _ =
    Fixtures.run_orca_sql
      "SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.b = t2.a ORDER BY t1.a"
  in
  let plan = report.Orca.Optimizer.plan in
  let numbered = Plan_ops.number plan in
  let actual id =
    if id mod 2 <> 0 then None
    else
      match List.find_opt (fun (i, _, _) -> i = id) numbered with
      | Some (_, _, node) -> Some (node.Expr.pest_rows *. 2.0)
      | None -> None
  in
  let acc = Prov.Accuracy.of_plan ~actual plan in
  Alcotest.(check int)
    "one row per plan node"
    (Plan_ops.node_count plan)
    (List.length acc.Prov.Accuracy.nodes);
  List.iter
    (fun na ->
      (* estimates in this plan are all >= 1 row, so doubling gives q = 2 *)
      Alcotest.(check bool)
        "fixture estimate >= 1" true
        (na.Prov.Accuracy.na_est >= 1.0);
      if na.Prov.Accuracy.na_id mod 2 = 0 then
        Alcotest.(check (option (float 1e-9)))
          "observed node q-error" (Some 2.0) na.Prov.Accuracy.na_qerr
      else (
        Alcotest.(check (option (float 1e-9)))
          "unobserved node has no actual" None na.Prov.Accuracy.na_act;
        Alcotest.(check (option (float 1e-9)))
          "unobserved node has no q-error" None na.Prov.Accuracy.na_qerr))
    acc.Prov.Accuracy.nodes;
  let stats = Prov.Accuracy.to_acc_stats acc in
  let all =
    match
      List.find_opt
        (fun a -> a.Obs.Report.a_class = "(all)")
        stats
    with
    | Some a -> a
    | None -> Alcotest.fail "no (all) row"
  in
  let n = Plan_ops.node_count plan in
  Alcotest.(check int) "(all) observed nodes" ((n + 1) / 2) all.Obs.Report.a_nodes;
  Alcotest.(check int)
    "(all) unobserved nodes" (n / 2) all.Obs.Report.a_unobserved;
  Alcotest.(check (float 1e-9))
    "(all) geomean of uniform 2x errors" 2.0
    (Obs.Report.acc_geomean all);
  Alcotest.(check (float 1e-9)) "(all) max" 2.0 all.Obs.Report.a_max;
  (* class rows partition the plan's nodes *)
  let per_class = List.filter (fun a -> a.Obs.Report.a_class <> "(all)") stats in
  Alcotest.(check int)
    "class observed counts sum" all.Obs.Report.a_nodes
    (List.fold_left (fun s a -> s + a.Obs.Report.a_nodes) 0 per_class);
  Alcotest.(check int)
    "class unobserved counts sum" all.Obs.Report.a_unobserved
    (List.fold_left (fun s a -> s + a.Obs.Report.a_unobserved) 0 per_class)

(* The executor attributes actual rows to every plan node by stable id —
   Motion and enforcer nodes included — and surfaces them in the kv view. *)
let test_exec_per_node_actuals () =
  let _, report, rows, metrics =
    Fixtures.run_orca_sql "SELECT a, b FROM t1 ORDER BY b LIMIT 7"
  in
  let plan = report.Orca.Optimizer.plan in
  let nr = Exec.Metrics.node_rows metrics in
  Alcotest.(check (float 1e-9))
    "root actual = result rows"
    (float_of_int (List.length rows))
    (List.assoc 0 nr);
  List.iter
    (fun (id, _, node) ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d (%s) observed" id
           (Physical_ops.class_name node.Expr.pop))
        true (List.mem_assoc id nr))
    (Plan_ops.number plan);
  (* the plan has a sort enforcer and a motion, so the coverage above proves
     enforcer/motion attribution *)
  let classes =
    List.map
      (fun (_, _, node) -> Physical_ops.class_name node.Expr.pop)
      (Plan_ops.number plan)
  in
  Alcotest.(check bool) "fixture has a sort" true (List.mem "sort" classes);
  Alcotest.(check bool)
    "fixture has a motion" true
    (List.exists (fun c -> String.length c >= 6 && String.sub c 0 6 = "motion") classes);
  let kv = Exec.Metrics.to_kv metrics in
  Alcotest.(check (float 1e-9))
    "kv carries per-node actuals"
    (float_of_int (List.length rows))
    (List.assoc "node_rows.0" kv)

(* Dynamic partition elimination rewrites scan subtrees at runtime; the
   executor must attribute the rewritten copies back to the original nodes,
   leaving no plan node unobserved. *)
let test_dpe_nodes_attributed () =
  let report = Lazy.force three_join_report in
  let cluster = Fixtures.tpcds_cluster () in
  let _rows, metrics = Exec.Executor.run cluster report.Orca.Optimizer.plan in
  Alcotest.(check bool)
    "fixture exercises DPE" true
    (metrics.Exec.Metrics.partitions_pruned_dynamically > 0);
  let nr = Exec.Metrics.node_rows metrics in
  List.iter
    (fun (id, _, node) ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d (%s) observed despite DPE" id
           (Physical_ops.class_name node.Expr.pop))
        true (List.mem_assoc id nr))
    (Plan_ops.number report.Orca.Optimizer.plan)

(* --- structural plan diff --- *)

(* The PR 4 speedups are identity-preserving: two runs differing only in
   with_rule_prefilter must produce byte-identical plans, and the diff (the
   CLI's exit-0 path) must say so. *)
let test_diff_identical_under_prefilter_toggle () =
  let sql = "SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.b = t2.a ORDER BY t1.a" in
  let a = optimize_sql ~config:(Lazy.force prov_config) (Fixtures.small_accessor ()) sql in
  let b =
    optimize_sql
      ~config:
        (Orca.Orca_config.with_rule_prefilter (Lazy.force prov_config) false)
      (Fixtures.small_accessor ()) sql
  in
  let d =
    Prov.Plan_diff.diff a.Orca.Optimizer.plan b.Orca.Optimizer.plan
  in
  Alcotest.(check bool) "identical" true d.Prov.Plan_diff.d_identical;
  Alcotest.(check bool) "structural" true d.Prov.Plan_diff.d_structural;
  Alcotest.(check (list string)) "no changes" []
    (List.map Prov.Plan_diff.change_to_string d.Prov.Plan_diff.d_changes);
  Alcotest.(check bool)
    "rendering reports identity" true
    (contains ~sub:"plans are identical" (Prov.Plan_diff.to_string d))

(* Genuinely diverging plans: the diff reports changes and d_identical is
   false — the CLI maps this to a nonzero exit, mirroring lint. *)
let test_diff_divergent () =
  let a =
    optimize_sql ~config:(Lazy.force prov_config) (Fixtures.small_accessor ())
      "SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.b = t2.a ORDER BY t1.a"
  in
  let b =
    optimize_sql ~config:(Lazy.force prov_config) (Fixtures.small_accessor ())
      "SELECT a, count(*) FROM t2 GROUP BY a"
  in
  let d = Prov.Plan_diff.diff a.Orca.Optimizer.plan b.Orca.Optimizer.plan in
  Alcotest.(check bool) "diverged" false d.Prov.Plan_diff.d_identical;
  Alcotest.(check bool) "changes reported" true (d.Prov.Plan_diff.d_changes <> []);
  let rendered =
    Prov.Plan_diff.to_string ?prov_a:a.Orca.Optimizer.prov
      ?prov_b:b.Orca.Optimizer.prov d
  in
  Alcotest.(check bool)
    "rendering is not the identity message" false
    (contains ~sub:"plans are identical" rendered)

(* A cost-only perturbation is caught exactly: structure matches, identity
   does not, and the change names the root. *)
let test_diff_cost_only () =
  let a =
    (optimize_sql ~config:(Lazy.force prov_config)
       (Fixtures.small_accessor ()) "SELECT a FROM t1 WHERE b > 5")
      .Orca.Optimizer.plan
  in
  let b = { a with Expr.pcost = a.Expr.pcost +. 10.0 } in
  let d = Prov.Plan_diff.diff a b in
  Alcotest.(check bool) "not identical" false d.Prov.Plan_diff.d_identical;
  Alcotest.(check bool) "still structural" true d.Prov.Plan_diff.d_structural;
  match d.Prov.Plan_diff.d_changes with
  | [ Prov.Plan_diff.Cost_changed { path; a = ca; b = cb; _ } ] ->
      Alcotest.(check string) "change at the root" "root" path;
      Alcotest.(check (float 1e-9)) "cost delta" 10.0 (cb -. ca)
  | cs ->
      Alcotest.failf "expected one Cost_changed, got: %s"
        (String.concat "; " (List.map Prov.Plan_diff.change_to_string cs))

(* --- the provenance lint (lib/verify) --- *)

let has_rule rule diags =
  List.exists
    (fun (d : Verify.Diagnostic.t) ->
      d.Verify.Diagnostic.rule = rule
      && d.Verify.Diagnostic.severity = Verify.Diagnostic.Error)
    diags

(* With provenance and the analyzers both on, the optimizer's own Memo is
   clean — the lint is wired into lint_all and finds nothing to report. *)
let test_prov_lint_wired_and_clean () =
  let report =
    optimize_sql
      ~config:
        (Orca.Orca_config.with_verify (Lazy.force prov_config))
      (Fixtures.small_accessor ())
      "SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.b = t2.a ORDER BY t1.a"
  in
  if report.Orca.Optimizer.diagnostics <> [] then
    Alcotest.failf "expected clean diagnostics, got:\n%s"
      (Verify.Diagnostic.report_to_string report.Orca.Optimizer.diagnostics)

let lint_table name oid =
  let f = Colref.Factory.create () in
  let a = Colref.Factory.fresh f ~name:(name ^ "a") ~ty:Dtype.Int in
  Table_desc.make
    ~dist:(Table_desc.Dist_hash [ a ])
    ~mdid:(Printf.sprintf "0.%d.1.1" oid)
    ~name [ a ]

(* Corrupted-provenance fixtures: a physical expression with no origin, an
   origin pointing at a nonexistent source, and a lineage that cycles. *)
let test_prov_lint_corruptions () =
  let memo = Memolib.Memo.create () in
  (* ge_ids are assigned sequentially, so the first insertion gets id 0 —
     an origin with o_source = 0 makes its lineage a self-cycle *)
  let cyclic =
    {
      Memolib.Memo.o_rule = "FakeRule";
      o_rule_id = 999;
      o_source = 0;
      o_stage = "test";
      o_promise = 1;
    }
  in
  ignore
    (Memolib.Memo.insert_gexpr memo ~origin:cyclic
       (Expr.Physical (Expr.P_table_scan (lint_table "t" 1, None, None)))
       []);
  (* no origin at all on a physical expression *)
  ignore
    (Memolib.Memo.insert_gexpr memo
       (Expr.Physical (Expr.P_table_scan (lint_table "s" 2, None, None)))
       []);
  (* origin pointing at an expression that does not exist *)
  ignore
    (Memolib.Memo.insert_gexpr memo
       ~origin:{ cyclic with Memolib.Memo.o_source = 12345 }
       (Expr.Physical (Expr.P_table_scan (lint_table "u" 3, None, None)))
       []);
  let diags = Verify.Prov_check.check memo in
  Alcotest.(check bool)
    "cyclic lineage caught" true
    (has_rule Verify.Prov_check.rule_cycle diags);
  Alcotest.(check bool)
    "missing origin caught" true
    (has_rule Verify.Prov_check.rule_missing diags);
  Alcotest.(check bool)
    "dangling source caught" true
    (has_rule Verify.Prov_check.rule_dangling diags)

let suite =
  [
    Alcotest.test_case "--why golden (3-join, fake clock)" `Quick
      test_why_golden;
    Alcotest.test_case "annotation covers every node" `Quick
      test_annotation_coverage;
    Alcotest.test_case "prov off by default and free when off" `Quick
      test_prov_off_by_default;
    Alcotest.test_case "annotate rejects a foreign plan" `Quick
      test_annotate_rejects_foreign_plan;
    Alcotest.test_case "Q-error hand-computed values" `Quick
      test_qerror_hand_computed;
    Alcotest.test_case "accuracy join hand-computed" `Quick
      test_accuracy_join_hand_computed;
    Alcotest.test_case "executor per-node actuals (motion/enforcer)" `Quick
      test_exec_per_node_actuals;
    Alcotest.test_case "DPE-rewritten nodes attributed" `Quick
      test_dpe_nodes_attributed;
    Alcotest.test_case "diff: identical under prefilter toggle" `Quick
      test_diff_identical_under_prefilter_toggle;
    Alcotest.test_case "diff: divergent plans reported" `Quick
      test_diff_divergent;
    Alcotest.test_case "diff: cost-only change pinpointed" `Quick
      test_diff_cost_only;
    Alcotest.test_case "prov lint wired and clean" `Quick
      test_prov_lint_wired_and_clean;
    Alcotest.test_case "prov lint catches corruptions" `Quick
      test_prov_lint_corruptions;
  ]

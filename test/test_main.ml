(* Aggregated test entry point: one alcotest suite per library, plus
   integration and property-based suites. *)

let () =
  Alcotest.run "orca-reproduction"
    [
      ("gpos", Test_gpos.suite);
      ("ir", Test_ir.suite);
      ("stats", Test_stats.suite);
      ("catalog", Test_catalog.suite);
      ("dxl", Test_dxl.suite);
      ("memo", Test_memo.suite);
      ("xform", Test_xform.suite);
      ("search", Test_search.suite);
      ("cost", Test_cost.suite);
      ("sql", Test_sql.suite);
      ("exec", Test_exec.suite);
      ("optimizer", Test_optimizer.suite);
      ("planner", Test_planner.suite);
      ("engines", Test_engines.suite);
      ("ampere-taqo", Test_ampere_taqo.suite);
      ("tpcds", Test_tpcds.suite);
      ("window", Test_window.suite);
      ("integration", Test_integration.suite);
      ("verify", Test_verify.suite);
      ("sanitize", Test_sanitize.suite);
      ("properties", Test_properties.suite);
      ("perf-identity", Test_perf_identity.suite);
      ("obs", Test_obs.suite);
      ("prov", Test_prov.suite);
      ("rulecheck", Test_rulecheck.suite);
      ("interact", Test_interact.suite);
      ("telemetry", Test_telemetry.suite);
      ("sre", Test_sre.suite);
      ("server", Test_server.suite);
    ]

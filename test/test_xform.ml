open Ir
module Memo = Memolib.Memo
module Mexpr = Memolib.Mexpr

(* Tests for transformation rules, normalization, partition pruning and
   subquery decorrelation. *)

let factory () = Colref.Factory.create ~start:1000 ()

let rctx () = { Xform.Rule.factory = factory () }

let mk_join_memo () =
  let f = Colref.Factory.create () in
  let tbl name oid =
    let a = Colref.Factory.fresh f ~name:(name ^ "a") ~ty:Dtype.Int in
    Table_desc.make ~mdid:(Printf.sprintf "0.%d.1.1" oid) ~name [ a ]
  in
  let t1 = tbl "t1" 1 and t2 = tbl "t2" 2 and t3 = tbl "t3" 3 in
  let c t = List.hd t.Table_desc.cols in
  let memo = Memo.create () in
  let cond12 = Expr.Cmp (Expr.Eq, Expr.Col (c t1), Expr.Col (c t2)) in
  let cond23 = Expr.Cmp (Expr.Eq, Expr.Col (c t2), Expr.Col (c t3)) in
  let tree =
    Mexpr.logical
      (Expr.L_join (Expr.Inner, cond23))
      [
        Mexpr.logical
          (Expr.L_join (Expr.Inner, cond12))
          [ Mexpr.logical (Expr.L_get t1) []; Mexpr.logical (Expr.L_get t2) [] ];
        Mexpr.logical (Expr.L_get t3) [];
      ]
  in
  let root = Memo.insert memo tree in
  Memo.set_root memo (Memo.find memo root.Memo.ge_group);
  (memo, root)

let test_join_commutativity () =
  let memo, root = mk_join_memo () in
  let results =
    Xform.Rules_explore.join_commutativity.Xform.Rule.apply (rctx ()) memo root
  in
  Alcotest.(check int) "one alternative" 1 (List.length results);
  match (List.hd results).Mexpr.children with
  | [ Mexpr.Group g1; Mexpr.Group g2 ] ->
      Alcotest.(check bool) "children swapped" true
        (g1 <> g2
        && root.Memo.ge_children = [ g2; g1 ])
  | _ -> Alcotest.fail "expected two group children"

let test_join_associativity () =
  let memo, root = mk_join_memo () in
  let results =
    Xform.Rules_explore.join_associativity.Xform.Rule.apply (rctx ()) memo root
  in
  Alcotest.(check int) "one rotation" 1 (List.length results);
  (* the rotated tree re-partitions conjuncts: inner join gets t2-t3 cond *)
  match List.hd results with
  | { Mexpr.op = Expr.Logical (Expr.L_join (Expr.Inner, top_cond)); children = [ _; Mexpr.Node inner ] } -> (
      Alcotest.(check bool) "top references t1" true
        (not (Colref.Set.is_empty (Scalar_ops.free_cols top_cond)));
      match inner.Mexpr.op with
      | Expr.Logical (Expr.L_join (Expr.Inner, inner_cond)) ->
          Alcotest.(check int) "inner got one conjunct" 1
            (List.length (Scalar_ops.conjuncts inner_cond))
      | _ -> Alcotest.fail "expected inner join")
  | _ -> Alcotest.fail "unexpected rotation shape"

let test_exhaustive_join_orders () =
  (* full exploration of a 3-way join enumerates all 12 ordered join trees *)
  let memo, _ = mk_join_memo () in
  let engine =
    Search.Engine.create ~ruleset:Xform.Ruleset.default
      ~model:Cost.Cost_model.default ~factory:(factory ())
      ~base:(fun _ -> Stats.Relstats.set_rows Stats.Relstats.empty 100.0)
      memo
  in
  Search.Engine.explore engine;
  (* count logical join expressions across groups *)
  let joins =
    List.fold_left
      (fun acc gid ->
        acc
        + List.length
            (List.filter
               (fun (_, op) ->
                 match op with Expr.L_join _ -> true | _ -> false)
               (Memo.logical_exprs (Memo.group memo gid))))
      0 (Memo.group_ids memo)
  in
  (* 3 relations: 3 two-way groups x2 orders + root group with A(BC),(BC)A,
     B(AC)... at least 8 join gexprs in a connected exploration *)
  Alcotest.(check bool)
    (Printf.sprintf "join alternatives explored (%d)" joins)
    true (joins >= 8)

let test_split_gb_agg () =
  let f = Colref.Factory.create () in
  let a = Colref.Factory.fresh f ~name:"a" ~ty:Dtype.Int in
  let out = Colref.Factory.fresh f ~name:"s" ~ty:Dtype.Int in
  let td = Table_desc.make ~mdid:"0.9.1.1" ~name:"t" [ a ] in
  let memo = Memo.create () in
  let agg =
    { Expr.agg_kind = Expr.Sum; agg_arg = Some (Expr.Col a); agg_distinct = false; agg_out = out }
  in
  let tree =
    Mexpr.logical
      (Expr.L_gb_agg (Expr.One_phase, [ a ], [ agg ]))
      [ Mexpr.logical (Expr.L_get td) [] ]
  in
  let root = Memo.insert memo tree in
  let results =
    Xform.Rules_explore.split_gb_agg.Xform.Rule.apply
      { Xform.Rule.factory = f } memo root
  in
  Alcotest.(check int) "split produced" 1 (List.length results);
  match List.hd results with
  | { Mexpr.op = Expr.Logical (Expr.L_gb_agg (Expr.Final, _, finals)); children = [ Mexpr.Node partial ] } -> (
      (* final sums the partial column, keeps the original output id *)
      (match finals with
      | [ fagg ] ->
          Alcotest.(check bool) "final kind is sum" true
            (fagg.Expr.agg_kind = Expr.Sum);
          Alcotest.(check int) "final output preserved" (Colref.id out)
            (Colref.id fagg.Expr.agg_out)
      | _ -> Alcotest.fail "one final agg expected");
      match partial.Mexpr.op with
      | Expr.Logical (Expr.L_gb_agg (Expr.Partial, _, _)) -> ()
      | _ -> Alcotest.fail "expected partial stage")
  | _ -> Alcotest.fail "unexpected split shape"

let test_split_skips_distinct () =
  let f = Colref.Factory.create () in
  let a = Colref.Factory.fresh f ~name:"a" ~ty:Dtype.Int in
  let out = Colref.Factory.fresh f ~name:"d" ~ty:Dtype.Int in
  let td = Table_desc.make ~mdid:"0.9.1.1" ~name:"t" [ a ] in
  let memo = Memo.create () in
  let agg =
    { Expr.agg_kind = Expr.Count; agg_arg = Some (Expr.Col a); agg_distinct = true; agg_out = out }
  in
  let tree =
    Mexpr.logical
      (Expr.L_gb_agg (Expr.One_phase, [], [ agg ]))
      [ Mexpr.logical (Expr.L_get td) [] ]
  in
  let root = Memo.insert memo tree in
  Alcotest.(check int) "distinct not split" 0
    (List.length
       (Xform.Rules_explore.split_gb_agg.Xform.Rule.apply
          { Xform.Rule.factory = f } memo root))

let test_partition_prune () =
  let f = Colref.Factory.create () in
  let d = Colref.Factory.fresh f ~name:"d" ~ty:Dtype.Int in
  let parts =
    List.init 5 (fun y ->
        { Table_desc.part_id = y; lo = Datum.Int (y * 100); hi = Datum.Int ((y + 1) * 100) })
  in
  let td =
    Table_desc.make ~part_col:d ~parts ~mdid:"0.8.1.1" ~name:"fact" [ d ]
  in
  let check name pred expected =
    Alcotest.(check (option (list int))) name expected (Xform.Partition.prune td pred)
  in
  check "eq hits one"
    (Expr.Cmp (Expr.Eq, Expr.Col d, Expr.Const (Datum.Int 250)))
    (Some [ 2 ]);
  check "range hits prefix"
    (Expr.Cmp (Expr.Lt, Expr.Col d, Expr.Const (Datum.Int 150)))
    (Some [ 0; 1 ]);
  check "between intersects"
    (Expr.And
       [
         Expr.Cmp (Expr.Ge, Expr.Col d, Expr.Const (Datum.Int 150));
         Expr.Cmp (Expr.Le, Expr.Col d, Expr.Const (Datum.Int 320));
       ])
    (Some [ 1; 2; 3 ]);
  check "unrelated predicate: no pruning"
    (Expr.Cmp (Expr.Eq, Expr.Const (Datum.Int 1), Expr.Const (Datum.Int 1)))
    None;
  check "in-list"
    (Expr.In_list (Expr.Col d, [ Datum.Int 10; Datum.Int 410 ]))
    (Some [ 0; 4 ])

let test_normalize_pushdown () =
  let accessor = Fixtures.small_accessor () in
  let q =
    Sqlfront.Binder.bind_sql accessor
      "SELECT t1.a FROM t1, t2 WHERE t1.a = t2.b AND t1.b < 5 AND t2.a > 7"
  in
  let tree = Xform.Normalize.run q.Dxl.Dxl_query.tree in
  (* after normalization the single-table predicates sit below the join *)
  let join_conds = ref [] in
  let selects_below_join = ref 0 in
  let rec walk ~under_join (t : Ltree.t) =
    (match t.Ltree.op with
    | Expr.L_join (_, cond) -> join_conds := cond :: !join_conds
    | Expr.L_select _ -> if under_join then incr selects_below_join
    | _ -> ());
    let under_join =
      under_join || match t.Ltree.op with Expr.L_join _ -> true | _ -> false
    in
    List.iter (walk ~under_join) t.Ltree.children
  in
  walk ~under_join:false tree;
  Alcotest.(check int) "two pushed selects" 2 !selects_below_join;
  match !join_conds with
  | [ cond ] ->
      Alcotest.(check int) "join keeps only the key" 1
        (List.length (Scalar_ops.conjuncts cond))
  | _ -> Alcotest.fail "expected one join"

let test_decorrelate_exists () =
  let accessor = Fixtures.small_accessor () in
  let q =
    Sqlfront.Binder.bind_sql accessor
      "SELECT a FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE t2.b = t1.a AND t2.a > 5)"
  in
  let f = Catalog.Accessor.factory accessor in
  let r = Xform.Decorrelate.run f q.Dxl.Dxl_query.tree in
  Alcotest.(check int) "rewritten" 1 r.Xform.Decorrelate.rewritten;
  Alcotest.(check int) "none left" 0 r.Xform.Decorrelate.remaining;
  let has_semi =
    Ltree.fold
      (fun acc n ->
        acc
        || match n.Ltree.op with Expr.L_join (Expr.Semi, _) -> true | _ -> false)
      false r.Xform.Decorrelate.tree
  in
  Alcotest.(check bool) "semi join" true has_semi

let test_decorrelate_not_exists () =
  let accessor = Fixtures.small_accessor () in
  let q =
    Sqlfront.Binder.bind_sql accessor
      "SELECT a FROM t1 WHERE NOT EXISTS (SELECT 1 FROM t2 WHERE t2.b = t1.a)"
  in
  let f = Catalog.Accessor.factory accessor in
  let r = Xform.Decorrelate.run f q.Dxl.Dxl_query.tree in
  let has_anti =
    Ltree.fold
      (fun acc n ->
        acc
        || match n.Ltree.op with
           | Expr.L_join (Expr.Anti_semi, _) -> true
           | _ -> false)
      false r.Xform.Decorrelate.tree
  in
  Alcotest.(check bool) "anti-semi join" true has_anti

let test_decorrelate_scalar_agg () =
  let accessor = Fixtures.small_accessor () in
  let q =
    Sqlfront.Binder.bind_sql accessor
      "SELECT a FROM t1 WHERE t1.b > (SELECT avg(t2.a) FROM t2 WHERE t2.b = t1.a)"
  in
  let f = Catalog.Accessor.factory accessor in
  let r = Xform.Decorrelate.run f q.Dxl.Dxl_query.tree in
  Alcotest.(check int) "none left" 0 r.Xform.Decorrelate.remaining;
  (* Kim's method: left outer join against a grouped aggregate *)
  let has_left_over_agg =
    Ltree.fold
      (fun acc n ->
        acc
        ||
        match (n.Ltree.op, n.Ltree.children) with
        | Expr.L_join (Expr.Left_outer, _), [ _; inner ] ->
            Ltree.fold
              (fun a m ->
                a
                || match m.Ltree.op with
                   | Expr.L_gb_agg (_, _ :: _, _) -> true
                   | _ -> false)
              false inner
        | _ -> false)
      false r.Xform.Decorrelate.tree
  in
  Alcotest.(check bool) "grouped agg under left join" true has_left_over_agg

let test_decorrelate_count_coalesce () =
  let accessor = Fixtures.small_accessor () in
  let q =
    Sqlfront.Binder.bind_sql accessor
      "SELECT a FROM t1 WHERE (SELECT count(*) FROM t2 WHERE t2.b = t1.a) = 0"
  in
  let f = Catalog.Accessor.factory accessor in
  let r = Xform.Decorrelate.run f q.Dxl.Dxl_query.tree in
  Alcotest.(check int) "decorrelated" 0 r.Xform.Decorrelate.remaining;
  let has_coalesce =
    Ltree.fold
      (fun acc n ->
        acc
        ||
        match n.Ltree.op with
        | Expr.L_project projs ->
            List.exists
              (fun p ->
                match p.Expr.proj_expr with
                | Expr.Coalesce _ -> true
                | _ -> false)
              projs
        | _ -> false)
      false r.Xform.Decorrelate.tree
  in
  Alcotest.(check bool) "count wrapped in coalesce" true has_coalesce

let test_decorrelate_bails_on_nonequi () =
  let accessor = Fixtures.small_accessor () in
  (* non-equality correlation under an aggregate cannot be pulled up *)
  let q =
    Sqlfront.Binder.bind_sql accessor
      "SELECT a FROM t1 WHERE t1.b > (SELECT avg(t2.a) FROM t2 WHERE t2.b < t1.a)"
  in
  let f = Catalog.Accessor.factory accessor in
  let r = Xform.Decorrelate.run f q.Dxl.Dxl_query.tree in
  Alcotest.(check int) "left in place" 1 r.Xform.Decorrelate.remaining

let test_ruleset_config () =
  let rs = Xform.Ruleset.default in
  let without = Xform.Ruleset.without rs [ "JoinCommutativity" ] in
  Alcotest.(check bool) "rule removed" true
    (not (List.mem "JoinCommutativity" (Xform.Ruleset.names without)));
  Alcotest.(check int) "one fewer" (List.length (Xform.Ruleset.names rs) - 1)
    (List.length (Xform.Ruleset.names without));
  Alcotest.(check bool) "exploration/implementation split" true
    (List.length (Xform.Ruleset.exploration rs) > 0
    && List.length (Xform.Ruleset.implementation rs) > 0)

let test_shape_masks () =
  let noop _ _ _ = [] in
  let mk ?shapes name =
    Xform.Rule.make ?shapes ~name ~kind:Xform.Rule.Exploration noop
  in
  let ntags = List.length Logical_ops.all_shapes in
  let tags = List.init ntags Fun.id in
  (* an empty shapes list pre-filters everything away *)
  let never = mk ~shapes:[] "never" in
  Alcotest.(check int) "empty shapes -> zero mask" 0 never.Xform.Rule.mask;
  List.iter
    (fun t ->
      Alcotest.(check bool) "never applicable" false
        (Xform.Rule.applicable_tag never t))
    tags;
  (* listing every shape is the same as omitting the declaration *)
  let everywhere = mk ~shapes:Logical_ops.all_shapes "everywhere" in
  let undeclared = mk "undeclared" in
  Alcotest.(check int) "every shape -> full mask" Logical_ops.all_shapes_mask
    everywhere.Xform.Rule.mask;
  Alcotest.(check int) "omitted shapes -> full mask" Logical_ops.all_shapes_mask
    undeclared.Xform.Rule.mask;
  List.iter
    (fun t ->
      Alcotest.(check bool) "always applicable" true
        (Xform.Rule.applicable_tag everywhere t))
    tags;
  (* tags outside the shape enumeration never pass, even for full masks *)
  Alcotest.(check bool) "unknown tag rejected" false
    (Xform.Rule.applicable_tag everywhere ntags);
  Alcotest.(check bool) "large tag rejected" false
    (Xform.Rule.applicable_tag everywhere 62)

let suite =
  [
    Alcotest.test_case "join commutativity" `Quick test_join_commutativity;
    Alcotest.test_case "join associativity" `Quick test_join_associativity;
    Alcotest.test_case "exhaustive join orders" `Quick test_exhaustive_join_orders;
    Alcotest.test_case "split gb agg" `Quick test_split_gb_agg;
    Alcotest.test_case "split skips distinct" `Quick test_split_skips_distinct;
    Alcotest.test_case "partition pruning" `Quick test_partition_prune;
    Alcotest.test_case "normalize pushdown" `Quick test_normalize_pushdown;
    Alcotest.test_case "decorrelate EXISTS" `Quick test_decorrelate_exists;
    Alcotest.test_case "decorrelate NOT EXISTS" `Quick test_decorrelate_not_exists;
    Alcotest.test_case "decorrelate scalar agg" `Quick test_decorrelate_scalar_agg;
    Alcotest.test_case "decorrelate count->coalesce" `Quick test_decorrelate_count_coalesce;
    Alcotest.test_case "decorrelate bails" `Quick test_decorrelate_bails_on_nonequi;
    Alcotest.test_case "ruleset config" `Quick test_ruleset_config;
    Alcotest.test_case "shape mask edge cases" `Quick test_shape_masks;
  ]

open Ir

(* The hot-path speedups (operator interning, stats memoization, rule
   pre-filters, winner reuse — lib/core/orca_config.mli §"Hot-path
   speedups") must be invisible in every output: same chosen plan, same
   cost, same Memo growth, same static-analyzer findings, with any subset of
   the four flags on or off. These tests pin that contract; the opt-speed
   benchmark (bench/main.ml) re-proves it over all 111 TPC-DS queries on
   every perf-gate run. *)

(* --- rule pre-filter bitmaps ------------------------------------------- *)

let all_tags = List.init Logical_ops.nshapes (fun i -> i)

let test_shape_tags_dense () =
  (* every shape maps to a distinct tag in [0, nshapes) *)
  let shapes =
    [
      Logical_ops.S_get;
      Logical_ops.S_select;
      Logical_ops.S_project;
      Logical_ops.S_join;
      Logical_ops.S_gb_agg;
      Logical_ops.S_window;
      Logical_ops.S_limit;
      Logical_ops.S_apply;
      Logical_ops.S_cte_producer;
      Logical_ops.S_cte_anchor;
      Logical_ops.S_cte_consumer;
      Logical_ops.S_set;
      Logical_ops.S_const_table;
    ]
  in
  Alcotest.(check int) "shape list covers nshapes" Logical_ops.nshapes
    (List.length shapes);
  let tags = List.map Logical_ops.shape_tag shapes in
  Alcotest.(check (list int)) "tags dense and unique"
    all_tags
    (List.sort compare tags)

let test_shape_masks () =
  Alcotest.(check int) "empty mask" 0 (Logical_ops.shape_mask []);
  Alcotest.(check int) "mask of every shape = all_shapes_mask"
    Logical_ops.all_shapes_mask
    (Logical_ops.shape_mask
       [
         Logical_ops.S_get;
         Logical_ops.S_select;
         Logical_ops.S_project;
         Logical_ops.S_join;
         Logical_ops.S_gb_agg;
         Logical_ops.S_window;
         Logical_ops.S_limit;
         Logical_ops.S_apply;
         Logical_ops.S_cte_producer;
         Logical_ops.S_cte_anchor;
         Logical_ops.S_cte_consumer;
         Logical_ops.S_set;
         Logical_ops.S_const_table;
       ]);
  (* a single-shape mask has exactly that bit *)
  let m = Logical_ops.shape_mask [ Logical_ops.S_join ] in
  Alcotest.(check int) "single-shape mask"
    (1 lsl Logical_ops.shape_tag Logical_ops.S_join)
    m

let find_rule name =
  match Xform.Ruleset.find_by_name Xform.Ruleset.default name with
  | Some r -> r
  | None -> Alcotest.failf "rule %s not in the default ruleset" name

let test_rule_prefilter_bitmaps () =
  (* a shape-restricted rule accepts exactly its declared shapes *)
  let join_rule = find_rule "JoinCommutativity" in
  let join_tag = Logical_ops.shape_tag Logical_ops.S_join in
  Alcotest.(check bool) "join rule applicable on S_join" true
    (Xform.Rule.applicable_tag join_rule join_tag);
  List.iter
    (fun tag ->
      if tag <> join_tag then
        Alcotest.(check bool)
          (Printf.sprintf "JoinCommutativity filtered on tag %d" tag)
          false
          (Xform.Rule.applicable_tag join_rule tag))
    all_tags;
  (* [applicable] is [applicable_tag] on the operator's shape *)
  let join_op = Expr.L_join (Expr.Inner, Expr.Const (Datum.Bool true)) in
  let limit_op = Expr.L_limit (Sortspec.empty, 0, None) in
  Alcotest.(check bool) "applicable on a join op" true
    (Xform.Rule.applicable join_rule join_op);
  Alcotest.(check bool) "not applicable on a limit op" false
    (Xform.Rule.applicable join_rule limit_op);
  let limit_rule = find_rule "Limit2Limit" in
  Alcotest.(check bool) "limit rule applicable on limit op" true
    (Xform.Rule.applicable limit_rule limit_op);
  Alcotest.(check bool) "limit rule filtered on join op" false
    (Xform.Rule.applicable limit_rule join_op)

let test_unrestricted_rule_mask () =
  (* a rule made without ~shapes pre-filters nothing *)
  let r =
    Xform.Rule.make ~name:"TestEverywhere" ~kind:Xform.Rule.Exploration
      (fun _ _ _ -> [])
  in
  Alcotest.(check int) "mask is all_shapes_mask" Logical_ops.all_shapes_mask
    r.Xform.Rule.mask;
  List.iter
    (fun tag ->
      Alcotest.(check bool)
        (Printf.sprintf "applicable on tag %d" tag)
        true
        (Xform.Rule.applicable_tag r tag))
    all_tags

let test_every_default_rule_mask_nonempty () =
  (* a rule whose mask admits no shape could never fire — a declaration
     bug the bitmap machinery would silently hide *)
  List.iter
    (fun (r : Xform.Rule.t) ->
      Alcotest.(check bool)
        (r.Xform.Rule.name ^ " mask admits at least one shape")
        true
        (List.exists (Xform.Rule.applicable_tag r) all_tags))
    (Xform.Ruleset.rules Xform.Ruleset.default)

(* --- identity: speedups on vs off -------------------------------------- *)

(* fingerprint of everything the speedups must not change *)
let fingerprint (report : Orca.Optimizer.report) =
  ( Dxl.Dxl_plan.to_string report.Orca.Optimizer.plan,
    report.Orca.Optimizer.plan.Expr.pcost,
    report.Orca.Optimizer.groups,
    report.Orca.Optimizer.gexprs,
    List.map Verify.Diagnostic.to_string report.Orca.Optimizer.diagnostics )

let optimize_small ~config sql =
  let accessor = Fixtures.small_accessor () in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  Orca.Optimizer.optimize ~config accessor query

let small_config = lazy (Orca.Orca_config.with_verify (Lazy.force Fixtures.orca_config))

let check_identical_small label sql config_off =
  let on = fingerprint (optimize_small ~config:(Lazy.force small_config) sql) in
  let off = fingerprint (optimize_small ~config:config_off sql) in
  let dxl_on, cost_on, groups_on, gexprs_on, diags_on = on in
  let dxl_off, cost_off, groups_off, gexprs_off, diags_off = off in
  Alcotest.(check string) (label ^ ": plan DXL") dxl_on dxl_off;
  Alcotest.(check (float 0.0)) (label ^ ": cost") cost_on cost_off;
  Alcotest.(check int) (label ^ ": memo groups") groups_on groups_off;
  Alcotest.(check int) (label ^ ": memo gexprs") gexprs_on gexprs_off;
  Alcotest.(check (list string)) (label ^ ": verify findings") diags_on diags_off

let small_queries =
  [
    "SELECT a, b FROM t1 WHERE a < 40 ORDER BY a, b LIMIT 50";
    "SELECT t1.a, t1.b, t2.a FROM t1, t2 WHERE t1.a = t2.b ORDER BY 1, 2, 3 \
     LIMIT 100";
    "SELECT b, count(*) AS c, sum(a) AS s FROM t1 GROUP BY b ORDER BY b";
    "SELECT t1.a, count(*) AS c FROM t1, t2 WHERE t1.a = t2.b AND t2.a < 150 \
     GROUP BY t1.a ORDER BY t1.a LIMIT 20";
    "SELECT a, b, row_number() OVER (PARTITION BY a ORDER BY b) AS r FROM t1 \
     ORDER BY a, b LIMIT 80";
  ]

let test_identity_all_off () =
  let base = Lazy.force small_config in
  let off = Orca.Orca_config.without_speedups base in
  List.iter (fun sql -> check_identical_small "all off" sql off) small_queries

let test_identity_each_flag () =
  let base = Lazy.force small_config in
  let variants =
    [
      ("interning off", Orca.Orca_config.with_interning base false);
      ("stats memo off", Orca.Orca_config.with_stats_memo base false);
      ("rule prefilter off", Orca.Orca_config.with_rule_prefilter base false);
      ("winner reuse off", Orca.Orca_config.with_winner_reuse base false);
    ]
  in
  List.iter
    (fun (label, config) ->
      List.iter (fun sql -> check_identical_small label sql config) small_queries)
    variants

(* qcheck: any of the 16 flag subsets, on random queries over the small
   schema, produces the identical plan/cost/Memo/lint fingerprint *)
let rand_query (seed : int) : string =
  let rng = Gpos.Prng.create (seed + 31_000) in
  let joined = Gpos.Prng.bool rng in
  let grouped = Gpos.Prng.bool rng in
  let pred table =
    let col = if Gpos.Prng.bool rng then table ^ ".a" else table ^ ".b" in
    Printf.sprintf "%s < %d" col (5 + Gpos.Prng.int rng 250)
  in
  if joined then
    Printf.sprintf
      "SELECT t1.a, t1.b FROM t1, t2 WHERE t1.a = t2.b AND %s ORDER BY 1, 2 \
       LIMIT 100"
      (pred "t2")
  else if grouped then
    Printf.sprintf
      "SELECT b, count(*) AS c, max(a) AS m FROM t1 WHERE %s GROUP BY b \
       ORDER BY b LIMIT 50"
      (pred "t1")
  else
    Printf.sprintf "SELECT a, b FROM t1 WHERE %s ORDER BY a, b LIMIT 100"
      (pred "t1")

let prop_identity_flag_subsets =
  QCheck.Test.make ~count:24
    ~name:"plan/cost/lint identical under any speedup-flag subset"
    QCheck.(pair small_nat (int_bound 15))
    (fun (seed, flags) ->
      let sql = rand_query seed in
      let base = Lazy.force small_config in
      let config =
        Orca.Orca_config.with_winner_reuse
          (Orca.Orca_config.with_rule_prefilter
             (Orca.Orca_config.with_stats_memo
                (Orca.Orca_config.with_interning base (flags land 1 <> 0))
                (flags land 2 <> 0))
             (flags land 4 <> 0))
          (flags land 8 <> 0)
      in
      let reference =
        fingerprint
          (optimize_small
             ~config:(Orca.Orca_config.without_speedups base)
             sql)
      in
      fingerprint (optimize_small ~config sql) = reference)

(* TPC-DS spot check: a slice of the real workload through the full
   pipeline, verify lint included. The complete 111-query identity proof
   runs in bench opt-speed (CI perf-gate). *)
let test_identity_tpcds_slice () =
  let env = Lazy.force Fixtures.tpcds_env in
  let base =
    Orca.Orca_config.with_verify
      (Orca.Orca_config.with_segments Orca.Orca_config.default 8)
  in
  let off = Orca.Orca_config.without_speedups base in
  let optimize config (q : Tpcds.Queries.def) =
    let accessor =
      Catalog.Accessor.create ~provider:env.Engines.Engine.provider
        ~cache:env.Engines.Engine.cache ()
    in
    let query = Sqlfront.Binder.bind_sql accessor q.Tpcds.Queries.sql in
    Orca.Optimizer.optimize ~config accessor query
  in
  List.iter
    (fun (q : Tpcds.Queries.def) ->
      if q.Tpcds.Queries.qid mod 9 = 0 then
        let label = Printf.sprintf "q%d" q.Tpcds.Queries.qid in
        let dxl_on, cost_on, groups_on, gexprs_on, diags_on =
          fingerprint (optimize base q)
        in
        let dxl_off, cost_off, groups_off, gexprs_off, diags_off =
          fingerprint (optimize off q)
        in
        Alcotest.(check string) (label ^ ": plan DXL") dxl_on dxl_off;
        Alcotest.(check (float 0.0)) (label ^ ": cost") cost_on cost_off;
        Alcotest.(check int) (label ^ ": memo groups") groups_on groups_off;
        Alcotest.(check int) (label ^ ": memo gexprs") gexprs_on gexprs_off;
        Alcotest.(check (list string))
          (label ^ ": verify findings")
          diags_on diags_off)
    (Lazy.force Tpcds.Queries.all)

(* executed rows agree too: the speedups must not perturb anything the
   executor consumes *)
let test_identity_rows () =
  let s = Lazy.force Fixtures.small in
  let base = Lazy.force small_config in
  let off = Orca.Orca_config.without_speedups base in
  List.iter
    (fun sql ->
      let run config =
        let report = optimize_small ~config sql in
        fst (Exec.Executor.run s.Fixtures.cluster report.Orca.Optimizer.plan)
      in
      Alcotest.(check bool) "rows identical" true
        (Fixtures.rows_equal (run base) (run off)))
    small_queries

let suite =
  [
    Alcotest.test_case "shape tags dense" `Quick test_shape_tags_dense;
    Alcotest.test_case "shape masks" `Quick test_shape_masks;
    Alcotest.test_case "rule pre-filter bitmaps" `Quick
      test_rule_prefilter_bitmaps;
    Alcotest.test_case "unrestricted rule mask" `Quick
      test_unrestricted_rule_mask;
    Alcotest.test_case "default rules have live masks" `Quick
      test_every_default_rule_mask_nonempty;
    Alcotest.test_case "identity: all speedups off" `Quick
      test_identity_all_off;
    Alcotest.test_case "identity: each flag individually" `Quick
      test_identity_each_flag;
    QCheck_alcotest.to_alcotest prop_identity_flag_subsets;
    Alcotest.test_case "identity: TPC-DS slice with lint" `Slow
      test_identity_tpcds_slice;
    Alcotest.test_case "identity: executed rows" `Quick test_identity_rows;
  ]

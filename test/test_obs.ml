(* lib/obs: span sessions, the Chrome trace exporter (golden-filed under the
   deterministic clock), report merging, and the end-to-end guarantees — rule
   counters consistent with the engine's totals, and a fully silent
   subsystem when observability is off. *)

open Fixtures

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- span tracing under the deterministic clock --- *)

(* Each [Gpos.Clock.now] call advances the fake clock by 1ms: begin_session
   reads once (t0 = 0.0), then each span reads at entry and exit, giving
   byte-stable timestamps for the golden file. *)
let test_span_golden () =
  let (), events =
    Gpos.Clock.with_fake ~start:0.0 ~step:0.001 (fun () ->
        Obs.Span.collect (fun () ->
            Obs.Span.with_ ~name:"a" (fun () ->
                Obs.Span.with_ ~name:"b"
                  ~attrs:[ ("rule", "Join2HashJoin") ]
                  (fun () -> ()))))
  in
  let tid = (Domain.self () :> int) in
  let expected =
    Printf.sprintf
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\
       {\"name\":\"a\",\"cat\":\"orca\",\"ph\":\"X\",\"ts\":1000.0,\"dur\":3000.0,\"pid\":1,\"tid\":%d,\"args\":{\"path\":\"a\"}},\n\
       {\"name\":\"b\",\"cat\":\"orca\",\"ph\":\"X\",\"ts\":2000.0,\"dur\":1000.0,\"pid\":1,\"tid\":%d,\"args\":{\"path\":\"a/b\",\"rule\":\"Join2HashJoin\"}}\n\
       ]}\n"
      tid tid
  in
  Alcotest.(check string)
    "golden chrome trace" expected
    (Obs.Trace_export.to_chrome_json events)

let test_span_nesting () =
  let (), events =
    Obs.Span.collect (fun () ->
        Obs.Span.with_ ~name:"outer" (fun () ->
            Obs.Span.with_ ~name:"mid" (fun () ->
                Obs.Span.with_ ~name:"inner" (fun () -> ()));
            Obs.Span.with_ ~name:"mid2" (fun () -> ())))
  in
  let paths = List.map (fun e -> e.Obs.Span.sp_path) events in
  Alcotest.(check (list string))
    "paths"
    [ "outer"; "outer/mid"; "outer/mid/inner"; "outer/mid2" ]
    (List.sort compare paths);
  (* an exception inside a span still records it *)
  let result =
    Obs.Span.collect (fun () ->
        try Obs.Span.with_ ~name:"boom" (fun () -> failwith "x")
        with Failure _ -> ())
  in
  Alcotest.(check int) "exception span recorded" 1 (List.length (snd result))

(* A nested collect yields no events of its own: the outer session owns
   everything recorded inside it. *)
let test_span_session_ownership () =
  let (outer_inner, _), events =
    Obs.Span.collect (fun () ->
        Obs.Span.with_ ~name:"outer" (fun () ->
            Obs.Span.collect (fun () ->
                Obs.Span.with_ ~name:"stolen" (fun () -> 42))))
  in
  Alcotest.(check int) "inner result" 42 outer_inner;
  Alcotest.(check (list string))
    "outer session holds both spans" [ "outer"; "outer/stolen" ]
    (List.sort compare (List.map (fun e -> e.Obs.Span.sp_path) events))

(* --- consistency checking --- *)

let mk_event ?(depth = 0) ~path ~start ~dur () =
  {
    Obs.Span.sp_name = path;
    sp_path = path;
    sp_depth = depth;
    sp_start_us = start;
    sp_dur_us = dur;
    sp_domain = 0;
    sp_attrs = [];
  }

let test_consistency_check () =
  let ok =
    [
      mk_event ~path:"p" ~start:0.0 ~dur:1000.0 ();
      mk_event ~depth:1 ~path:"p/a" ~start:0.0 ~dur:400.0 ();
      mk_event ~depth:1 ~path:"p/b" ~start:400.0 ~dur:500.0 ();
    ]
  in
  Alcotest.(check int)
    "children within parent" 0
    (List.length (Obs.Trace_export.check_consistency ok));
  let bad =
    [
      mk_event ~path:"p" ~start:0.0 ~dur:1000.0 ();
      mk_event ~depth:1 ~path:"p/a" ~start:0.0 ~dur:900.0 ();
      mk_event ~depth:1 ~path:"p/b" ~start:0.0 ~dur:900.0 ();
    ]
  in
  match Obs.Trace_export.check_consistency bad with
  | [ v ] ->
      Alcotest.(check string) "violating parent" "p" v.Obs.Trace_export.v_path;
      Alcotest.(check (float 1e-6))
        "children sum" 1800.0 v.Obs.Trace_export.v_children_us
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

(* --- report assembly and merging --- *)

let obs_config = lazy (Orca.Orca_config.with_obs (Lazy.force orca_config))

let run_obs_sql sql =
  let accessor = small_accessor () in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  Orca.Optimizer.optimize ~config:(Lazy.force obs_config) accessor query

let join_sql = "SELECT t1.a FROM t1, t2 WHERE t1.b = t2.a ORDER BY t1.a LIMIT 10"

(* The per-rule firing counts must agree with the engine's own xform total,
   and the scheduler snapshots with the report's job counters. *)
let test_rule_counters_consistent () =
  let report = run_obs_sql join_sql in
  let obs =
    match report.Orca.Optimizer.obs with
    | Some r -> r
    | None -> Alcotest.fail "obs report missing with with_obs config"
  in
  let fired =
    List.fold_left (fun a r -> a + r.Obs.Report.r_fired) 0 obs.Obs.Report.rules
  in
  Alcotest.(check int)
    "sum(rule fired) = report.xforms" report.Orca.Optimizer.xforms fired;
  let jobs_created =
    List.fold_left
      (fun a s -> a + s.Obs.Report.s_jobs_created)
      0 obs.Obs.Report.scheds
  in
  Alcotest.(check int)
    "sum(sched created) = report.jobs_created" report.Orca.Optimizer.jobs_created
    jobs_created;
  let jobs_run =
    List.fold_left
      (fun a s -> a + s.Obs.Report.s_jobs_run)
      0 obs.Obs.Report.scheds
  in
  Alcotest.(check int)
    "sum(sched run) = report.jobs_run" report.Orca.Optimizer.jobs_run jobs_run;
  Alcotest.(check int)
    "alternatives costed" report.Orca.Optimizer.contexts
    obs.Obs.Report.memo.Obs.Report.m_ctx_created;
  Alcotest.(check bool)
    "memo growth matches report" true
    (obs.Obs.Report.memo.Obs.Report.m_groups = report.Orca.Optimizer.groups
    && obs.Obs.Report.memo.Obs.Report.m_gexprs = report.Orca.Optimizer.gexprs);
  Alcotest.(check bool)
    "cost model invoked" true
    (obs.Obs.Report.cost.Obs.Report.c_op_costings > 0);
  (* rendering shows the totals row and the memo line *)
  let s = Obs.Report.to_string obs in
  Alcotest.(check bool) "render has rules" true
    (contains ~affix:"(all rules)" s);
  Alcotest.(check bool) "render has memo" true
    (contains ~affix:"duplicate rate" s)

(* With observability off (the default config), no report is assembled and
   the span subsystem records nothing at all. *)
let test_obs_off_is_silent () =
  let before = Atomic.get Obs.Span.recorded_total in
  let _, report, _, _ = run_orca_sql join_sql in
  Alcotest.(check bool) "no obs report" true (report.Orca.Optimizer.obs = None);
  Alcotest.(check bool) "no session active" false (Obs.Span.active ());
  Alcotest.(check int)
    "no span ever recorded" before
    (Atomic.get Obs.Span.recorded_total)

(* Optimizing under an outer session leaves the spans with the owner and
   still produces the counter report. *)
let test_session_owner_gets_optimizer_spans () =
  let report, events = Obs.Span.collect (fun () -> run_obs_sql join_sql) in
  (match report.Orca.Optimizer.obs with
  | Some r ->
      Alcotest.(check (list string))
        "no spans on the report" []
        (List.map (fun e -> e.Obs.Span.sp_path) r.Obs.Report.spans)
  | None -> Alcotest.fail "obs report missing");
  let paths = List.map (fun e -> e.Obs.Span.sp_path) events in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("span " ^ expected) true (List.mem expected paths))
    [
      "optimize";
      "optimize/preprocess";
      "optimize/stage:full";
      "optimize/stage:full/explore";
      "optimize/stage:full/costing";
      "optimize/stage:full/extract";
    ];
  Alcotest.(check int)
    "span accounting consistent" 0
    (List.length (Obs.Trace_export.check_consistency events))

let test_report_merge () =
  let r1 =
    match (run_obs_sql join_sql).Orca.Optimizer.obs with
    | Some r -> r
    | None -> Alcotest.fail "obs missing"
  in
  let r2 =
    match (run_obs_sql "SELECT a FROM t1 WHERE b > 5 ORDER BY a").Orca.Optimizer.obs with
    | Some r -> r
    | None -> Alcotest.fail "obs missing"
  in
  let m = Obs.Report.merge r1 r2 in
  Alcotest.(check int) "queries add" 2 m.Obs.Report.queries;
  let fired r =
    List.fold_left (fun a x -> a + x.Obs.Report.r_fired) 0 r.Obs.Report.rules
  in
  Alcotest.(check int) "rule firings add" (fired r1 + fired r2) (fired m);
  Alcotest.(check int)
    "memo gexprs add"
    (r1.Obs.Report.memo.Obs.Report.m_gexprs
    + r2.Obs.Report.memo.Obs.Report.m_gexprs)
    m.Obs.Report.memo.Obs.Report.m_gexprs;
  (* exec key/values sum by key *)
  let e1 = Obs.Report.with_exec r1 [ ("rows_scanned", 10.0) ] in
  let e2 = Obs.Report.with_exec r2 [ ("rows_scanned", 5.0); ("spill", 1.0) ] in
  let em = Obs.Report.merge e1 e2 in
  Alcotest.(check (list (pair string (float 1e-9))))
    "exec kv merge"
    [ ("rows_scanned", 15.0); ("spill", 1.0) ]
    em.Obs.Report.exec

(* --- exec metrics surfacing --- *)

let test_metrics_surfacing () =
  let m = Exec.Metrics.create 4 in
  m.Exec.Metrics.spill_bytes <- 123.0;
  m.Exec.Metrics.peak_state_bytes <- 456.0;
  m.Exec.Metrics.partitions_pruned_dynamically <- 7;
  m.Exec.Metrics.operators_run <- 9;
  let s = Exec.Metrics.to_string m in
  List.iter
    (fun affix ->
      Alcotest.(check bool) affix true (contains ~affix s))
    [ "spill=123B"; "peak_state=456B"; "parts_pruned=7"; "ops=9" ];
  let kv = Exec.Metrics.to_kv m in
  Alcotest.(check (float 1e-9)) "kv spill" 123.0 (List.assoc "spill_bytes" kv);
  Alcotest.(check (float 1e-9))
    "kv pruned" 7.0
    (List.assoc "partitions_pruned_dynamically" kv)

(* --- AMPERe embedding --- *)

let test_ampere_embeds_profile () =
  let accessor = small_accessor () in
  let query = Sqlfront.Binder.bind_sql accessor "SELECT a FROM t1" in
  match
    Orca.Ampere.optimize_with_capture ~config:(Lazy.force obs_config) accessor
      query
  with
  | Error _ -> Alcotest.fail "optimization failed"
  | Ok report ->
      let dump = Orca.Ampere.capture accessor query in
      let dump = Orca.Ampere.embed_report dump report in
      (match dump.Orca.Ampere.profile with
      | Some p ->
          Alcotest.(check bool)
            "profile embedded" true
            (contains ~affix:"observability report" p)
      | None -> Alcotest.fail "no profile embedded");
      (match dump.Orca.Ampere.trace_json with
      | Some t ->
          Alcotest.(check bool)
            "trace embedded" true
            (contains ~affix:"traceEvents" t)
      | None -> Alcotest.fail "no trace embedded");
      (* survives the DXL round trip *)
      let dump' = Orca.Ampere.of_string (Orca.Ampere.to_string dump) in
      Alcotest.(check bool)
        "profile round-trips" true
        (dump'.Orca.Ampere.profile = dump.Orca.Ampere.profile);
      Alcotest.(check bool)
        "trace round-trips" true
        (dump'.Orca.Ampere.trace_json = dump.Orca.Ampere.trace_json)

let suite =
  [
    Alcotest.test_case "span golden chrome trace (fake clock)" `Quick
      test_span_golden;
    Alcotest.test_case "span nesting and exception safety" `Quick
      test_span_nesting;
    Alcotest.test_case "span session ownership" `Quick
      test_span_session_ownership;
    Alcotest.test_case "span consistency check" `Quick test_consistency_check;
    Alcotest.test_case "rule counters consistent with engine" `Quick
      test_rule_counters_consistent;
    Alcotest.test_case "obs off records nothing" `Quick test_obs_off_is_silent;
    Alcotest.test_case "outer session owns optimizer spans" `Quick
      test_session_owner_gets_optimizer_spans;
    Alcotest.test_case "report merging" `Quick test_report_merge;
    Alcotest.test_case "metrics surfacing (spill/peak/pruned)" `Quick
      test_metrics_surfacing;
    Alcotest.test_case "AMPERe embeds profile and trace" `Quick
      test_ampere_embeds_profile;
  ]

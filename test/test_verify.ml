open Ir

(* The static analyzers (lib/verify): semantic plan linting, Memo winner
   linkage consistency, DXL round-trip — clean on everything the optimizer
   produces, and loud on deliberately corrupted inputs. *)

let errors = Verify.Analyzer.error_count
let report_str = Verify.Diagnostic.report_to_string

let optimize_verified sql =
  let accessor = Fixtures.small_accessor () in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let config = Orca.Orca_config.with_verify (Lazy.force Fixtures.orca_config) in
  Orca.Optimizer.optimize ~config accessor query

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Splice out the first Motion matching [pick] (depth-first). Motions
   preserve their child's schema, so the surgery keeps the tree well-formed
   structurally — only the distribution semantics break. *)
let rec drop_motion ~pick (p : Expr.plan) : Expr.plan * bool =
  match (p.Expr.pop, p.Expr.pchildren) with
  | Expr.P_motion m, [ c ] when pick m -> (c, true)
  | _ ->
      let dropped, rev_children =
        List.fold_left
          (fun (done_, acc) c ->
            if done_ then (done_, c :: acc)
            else
              let c', d = drop_motion ~pick c in
              (d, c' :: acc))
          (false, []) p.Expr.pchildren
      in
      ({ p with Expr.pchildren = List.rev rev_children }, dropped)

let is_dist_motion = function
  | Expr.Redistribute _ | Expr.Broadcast -> true
  | _ -> false

let is_gather = function
  | Expr.Gather | Expr.Gather_merge _ -> true
  | _ -> false

(* --- optimizer wiring --- *)

let test_wiring () =
  let report =
    optimize_verified "SELECT a, sum(b) FROM t1 GROUP BY a ORDER BY a"
  in
  if report.Orca.Optimizer.diagnostics <> [] then
    Alcotest.failf "expected a clean plan, got:\n%s"
      (report_str report.Orca.Optimizer.diagnostics)

let test_default_config_skips_analyzers () =
  let _, report, _, _ = Fixtures.run_orca_sql "SELECT a FROM t1" in
  Alcotest.(check int)
    "no diagnostics without the verify flag" 0
    (List.length report.Orca.Optimizer.diagnostics)

let test_small_queries_clean () =
  List.iter
    (fun sql ->
      let report = optimize_verified sql in
      if report.Orca.Optimizer.diagnostics <> [] then
        Alcotest.failf "%s:\n%s" sql (report_str report.Orca.Optimizer.diagnostics))
    [
      "SELECT a, b FROM t1 WHERE b > 10";
      "SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.b = t2.a ORDER BY t1.a";
      "SELECT a, count(*) FROM t2 GROUP BY a";
      "SELECT sum(b) FROM t1";
      "SELECT a, b FROM t1 ORDER BY b LIMIT 7";
      "SELECT DISTINCT a FROM t1 UNION SELECT DISTINCT a FROM t2";
    ]

(* --- corrupted plans --- *)

(* Dropping a Redistribute/Broadcast below a join leaves its inputs
   misaligned: the analyzer must name the join node. *)
let test_dropped_motion_detected () =
  let report =
    optimize_verified
      "SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.b = t2.a ORDER BY t1.a"
  in
  Alcotest.(check int)
    "pristine plan is clean" 0
    (errors report.Orca.Optimizer.diagnostics);
  let corrupted, dropped =
    drop_motion ~pick:is_dist_motion report.Orca.Optimizer.plan
  in
  Alcotest.(check bool) "plan contains a distribution motion" true dropped;
  let diags =
    Verify.Plan_check.check ~req:report.Orca.Optimizer.root_req corrupted
  in
  let missing =
    List.filter
      (fun (d : Verify.Diagnostic.t) ->
        d.Verify.Diagnostic.rule = Verify.Plan_check.rule_missing
        && d.Verify.Diagnostic.severity = Verify.Diagnostic.Error)
      diags
  in
  if missing = [] then
    Alcotest.failf "no missing-enforcer diagnostic; analyzer said:\n%s"
      (report_str diags);
  List.iter
    (fun (d : Verify.Diagnostic.t) ->
      Alcotest.(check bool)
        "diagnostic names a node path" true
        (contains ~sub:"root" d.Verify.Diagnostic.path))
    missing

(* Dropping the root Gather leaves a parallel result for a query that must
   deliver to the master. *)
let test_dropped_gather_detected () =
  let report =
    optimize_verified "SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a ORDER BY t1.a"
  in
  let corrupted, dropped =
    drop_motion ~pick:is_gather report.Orca.Optimizer.plan
  in
  Alcotest.(check bool) "plan contains a gather" true dropped;
  let diags =
    Verify.Plan_check.check ~req:report.Orca.Optimizer.root_req corrupted
  in
  Alcotest.(check bool)
    "root-requirement violation reported" true
    (List.exists
       (fun (d : Verify.Diagnostic.t) ->
         d.Verify.Diagnostic.rule = Verify.Plan_check.rule_root)
       diags)

(* --- corrupted Memo --- *)

let test_memo_corruptions () =
  let report = optimize_verified "SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a" in
  let memo = report.Orca.Optimizer.memo in
  let pristine = Verify.Memo_check.check memo in
  Alcotest.(check int) "optimized memo is clean" 0 (errors pristine);
  let root = Memolib.Memo.root memo in
  let rcx =
    match Memolib.Memo.find_context memo root report.Orca.Optimizer.root_req with
    | Some cx -> cx
    | None -> Alcotest.fail "root context missing"
  in
  let best =
    match rcx.Memolib.Memo.cx_best with
    | Some b -> b
    | None -> Alcotest.fail "root winner missing"
  in
  let has_rule rule diags =
    List.exists
      (fun (d : Verify.Diagnostic.t) -> d.Verify.Diagnostic.rule = rule)
      diags
  in
  (* 1. clear a child winner the root's linkage depends on *)
  (match
     (best.Memolib.Memo.a_gexpr.Memolib.Memo.ge_children,
      best.Memolib.Memo.a_child_reqs)
   with
  | child :: _, creq :: _ ->
      let cgid = Memolib.Memo.find memo child in
      let ccx =
        match Memolib.Memo.find_context memo cgid creq with
        | Some cx -> cx
        | None -> Alcotest.fail "child context missing"
      in
      let saved = ccx.Memolib.Memo.cx_best in
      ccx.Memolib.Memo.cx_best <- None;
      let diags = Verify.Memo_check.check memo in
      ccx.Memolib.Memo.cx_best <- saved;
      Alcotest.(check bool)
        "cleared child winner -> missing-winner" true
        (has_rule Verify.Memo_check.rule_missing_winner diags)
  | _ -> Alcotest.fail "root winner has no children to corrupt");
  (* 2. record an alternative cheaper than the winner *)
  let cheaper =
    { best with Memolib.Memo.a_cost = (best.Memolib.Memo.a_cost /. 2.0) -. 1.0 }
  in
  let saved_alts = rcx.Memolib.Memo.cx_alts in
  rcx.Memolib.Memo.cx_alts <- cheaper :: saved_alts;
  let diags = Verify.Memo_check.check memo in
  rcx.Memolib.Memo.cx_alts <- saved_alts;
  Alcotest.(check bool)
    "cheaper alternative -> non-minimal-winner" true
    (has_rule Verify.Memo_check.rule_non_minimal diags);
  (* 3. winner claiming properties that violate its request *)
  let lying =
    {
      best with
      Memolib.Memo.a_derived =
        { Props.ddist = Props.D_random; dorder = Sortspec.empty };
    }
  in
  rcx.Memolib.Memo.cx_best <- Some lying;
  let diags = Verify.Memo_check.check memo in
  rcx.Memolib.Memo.cx_best <- Some best;
  Alcotest.(check bool)
    "misreported properties -> winner-violates-request" true
    (has_rule Verify.Memo_check.rule_unsatisfied diags)

(* --- DXL round trip --- *)

let test_roundtrip_clean () =
  let report =
    optimize_verified
      "SELECT t1.a, sum(t2.b) FROM t1 JOIN t2 ON t1.a = t2.a GROUP BY t1.a"
  in
  let diags = Verify.Analyzer.lint_roundtrip report.Orca.Optimizer.plan in
  if diags <> [] then
    Alcotest.failf "round trip not clean:\n%s" (report_str diags)

(* --- property-annotated EXPLAIN --- *)

let test_show_props_rendering () =
  let report =
    optimize_verified "SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a ORDER BY t1.a"
  in
  let plain = Plan_ops.to_string report.Orca.Optimizer.plan in
  let annotated =
    Plan_ops.to_string ~show_props:true report.Orca.Optimizer.plan
  in
  Alcotest.(check bool) "plain output has no props" false (contains ~sub:"{" plain);
  Alcotest.(check bool)
    "annotated output shows the gathered root" true
    (contains ~sub:"Singleton" annotated);
  Alcotest.(check bool)
    "annotated output shows hashed scans" true
    (contains ~sub:"Hashed(" annotated);
  let derived = Plan_ops.derive_props report.Orca.Optimizer.plan in
  Alcotest.(check bool)
    "root delivers the query's requirement" true
    (Props.satisfies derived report.Orca.Optimizer.root_req)

(* --- the whole TPC-DS workload --- *)

let test_tpcds_suite_clean () =
  let config =
    Orca.Orca_config.with_verify
      (Orca.Orca_config.with_segments Orca.Orca_config.default Fixtures.nsegs)
  in
  List.iter
    (fun (q : Tpcds.Queries.def) ->
      let accessor = Fixtures.tpcds_accessor () in
      let query = Sqlfront.Binder.bind_sql accessor q.Tpcds.Queries.sql in
      let report = Orca.Optimizer.optimize ~config accessor query in
      if errors report.Orca.Optimizer.diagnostics > 0 then
        Alcotest.failf "q%d has analyzer errors:\n%s" q.Tpcds.Queries.qid
          (report_str report.Orca.Optimizer.diagnostics))
    (Lazy.force Tpcds.Queries.all)

let suite =
  [
    Alcotest.test_case "optimizer wiring populates diagnostics" `Quick
      test_wiring;
    Alcotest.test_case "default config skips the analyzers" `Quick
      test_default_config_skips_analyzers;
    Alcotest.test_case "small queries lint clean" `Quick
      test_small_queries_clean;
    Alcotest.test_case "dropped Motion -> missing-enforcer" `Quick
      test_dropped_motion_detected;
    Alcotest.test_case "dropped Gather -> root-requirement" `Quick
      test_dropped_gather_detected;
    Alcotest.test_case "Memo corruptions are reported" `Quick
      test_memo_corruptions;
    Alcotest.test_case "DXL round trip is clean" `Quick test_roundtrip_clean;
    Alcotest.test_case "show_props rendering" `Quick test_show_props_rendering;
    Alcotest.test_case "all TPC-DS queries lint clean" `Slow
      test_tpcds_suite_clean;
  ]

(* Tests for lib/server: query normalization and fingerprinting, the
   parameterized plan cache (exact hits byte-identical to fresh
   optimization, parameter rebinds, LRU eviction, forged-fingerprint
   collisions), snapshot versioning and invalidation, version threading
   through accessor/stats/optimizer report, the line protocol, and
   concurrent sessions over both the API and the Unix-socket listener. *)

module Sv = Server
module Nz = Server.Normalize
module Pc = Server.Plan_cache

let sql_base = "SELECT a, b FROM t1 WHERE b = 10"

(* same token stream: case/whitespace differences only *)
let sql_variant = "select  A,  b   from T1 where B = 10"

(* same shape, one constant changed *)
let sql_changed = "SELECT a, b FROM t1 WHERE b = 11"

(* different shape entirely *)
let sql_other = "SELECT a FROM t2 WHERE a = 10"

let new_server () =
  Sv.of_provider
    ~config:(Lazy.force Fixtures.orca_config)
    (Lazy.force Fixtures.small).Fixtures.provider

let ok_reply server sql =
  match Sv.optimize_sql server sql with
  | Ok r -> r
  | Error e -> Alcotest.failf "optimize_sql %S failed: %s" sql e

let result_t =
  Alcotest.testable
    (fun fmt r -> Format.pp_print_string fmt (Sv.cache_result_to_string r))
    ( = )

(* fresh, cache-free optimization of [sql] for byte-identity comparisons *)
let cold_plan sql =
  let accessor = Fixtures.small_accessor () in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  let report =
    Orca.Optimizer.optimize ~config:(Lazy.force Fixtures.orca_config) accessor
      query
  in
  report.Orca.Optimizer.plan

(* --- normalization --- *)

let test_normalize_shape () =
  let n1 = Nz.normalize sql_base and n2 = Nz.normalize sql_variant in
  Alcotest.(check string) "same canonical text" n1.Nz.text n2.Nz.text;
  Alcotest.(check string) "same fingerprint" n1.Nz.fingerprint n2.Nz.fingerprint;
  Alcotest.(check string)
    "same parameter vector"
    (Nz.params_key n1.Nz.params)
    (Nz.params_key n2.Nz.params);
  let has sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "placeholder in the text" true (has "$1" n1.Nz.text);
  Alcotest.(check bool) "literal lifted out of the text" false
    (has "10" n1.Nz.text);
  Alcotest.(check int) "one parameter" 1 (List.length n1.Nz.params)

let test_normalize_params_differ () =
  let n1 = Nz.normalize sql_base and n3 = Nz.normalize sql_changed in
  Alcotest.(check string)
    "changed constant keeps the fingerprint" n1.Nz.fingerprint
    n3.Nz.fingerprint;
  Alcotest.(check bool)
    "changed constant changes the parameter key" true
    (Nz.params_key n1.Nz.params <> Nz.params_key n3.Nz.params)

let test_normalize_distinct_shapes () =
  let n1 = Nz.normalize sql_base and n4 = Nz.normalize sql_other in
  Alcotest.(check bool)
    "different shapes, different fingerprints" true
    (n1.Nz.fingerprint <> n4.Nz.fingerprint)

(* --- the cache through the server API --- *)

let test_hit_identical_plan () =
  let server = new_server () in
  let r1 = ok_reply server sql_base in
  let r2 = ok_reply server sql_variant in
  Alcotest.check result_t "first request misses" Sv.Missed r1.Sv.r_result;
  Alcotest.check result_t "variant is an exact hit" Sv.Hit r2.Sv.r_result;
  (* the cached plan serializes byte-for-byte like a fresh optimization *)
  let cold = Dxl.Dxl_plan.to_string (cold_plan sql_base) in
  Alcotest.(check string) "hit DXL = cold DXL" cold (Lazy.force r2.Sv.r_dxl);
  let d = Prov.Plan_diff.diff r2.Sv.r_plan (cold_plan sql_base) in
  Alcotest.(check bool) "structural diff is empty" true d.Prov.Plan_diff.d_identical

let test_rebind () =
  let server = new_server () in
  ignore (ok_reply server sql_base);
  let r = ok_reply server sql_changed in
  Alcotest.check result_t "changed constant rebinds" Sv.Rebound r.Sv.r_result;
  (* the rebound plan carries the new constant and the cached shape *)
  let d = Prov.Plan_diff.diff r.Sv.r_plan (cold_plan sql_changed) in
  Alcotest.(check bool)
    "rebound plan has the fresh plan's shape" true
    d.Prov.Plan_diff.d_structural;
  Alcotest.(check bool)
    "new constant substituted into the plan" true
    (let dxl = Lazy.force r.Sv.r_dxl in
     let has sub =
       let n = String.length sub and m = String.length dxl in
       let rec go i = i + n <= m && (String.sub dxl i n = sub || go (i + 1)) in
       go 0
     in
     has "int:11" && not (has "int:10"));
  (* rebound plans are never cached: the same request rebinds again *)
  let r' = ok_reply server sql_changed in
  Alcotest.check result_t "rebind is not cached" Sv.Rebound r'.Sv.r_result

let test_rebind_ambiguity_misses () =
  let server = new_server () in
  let sql_two = "SELECT a, b FROM t1 WHERE b = 10 AND a = 10" in
  (* changing only one of two equal constants is ambiguous: the cache must
     optimize fresh rather than guess which literal to substitute *)
  let sql_two' = "SELECT a, b FROM t1 WHERE b = 11 AND a = 10" in
  ignore (ok_reply server sql_two);
  let r = ok_reply server sql_two' in
  Alcotest.check result_t "ambiguous rebind is a miss" Sv.Missed r.Sv.r_result;
  (* ...and the miss added its own variant: the same text now hits *)
  let r' = ok_reply server sql_two' in
  Alcotest.check result_t "second time is an exact hit" Sv.Hit r'.Sv.r_result

(* --- the cache directly: collisions and LRU --- *)

let test_fingerprint_collision () =
  let cache = Pc.create () in
  let plan = cold_plan sql_base in
  let add text = Pc.add cache ~fp:"forged" ~norm_text:text ~params:[] ~catalog_version:0 ~stats_version:0 plan in
  let find text =
    Pc.find cache ~fp:"forged" ~norm_text:text ~params:[] ~catalog_version:0
      ~stats_version:0
  in
  add "shape-a";
  (* a different shape behind the same fingerprint must never be served *)
  (match find "shape-b" with
  | Pc.Miss -> ()
  | _ -> Alcotest.fail "collision served a foreign plan");
  (* insert under the collision keeps the resident shape *)
  add "shape-b";
  (match find "shape-a" with
  | Pc.Hit _ -> ()
  | _ -> Alcotest.fail "resident shape evicted by colliding insert");
  let s = Pc.stats cache in
  Alcotest.(check int) "two collisions counted" 2 s.Pc.collisions

let test_lru_eviction () =
  let cache = Pc.create ~capacity:2 () in
  let plan = cold_plan sql_base in
  let add fp = Pc.add cache ~fp ~norm_text:fp ~params:[] ~catalog_version:0 ~stats_version:0 plan in
  let find fp =
    Pc.find cache ~fp ~norm_text:fp ~params:[] ~catalog_version:0
      ~stats_version:0
  in
  add "q1";
  add "q2";
  (* touch q1 so q2 becomes least-recently-used *)
  (match find "q1" with
  | Pc.Hit _ -> ()
  | _ -> Alcotest.fail "q1 should hit");
  add "q3";
  (match find "q2" with
  | Pc.Miss -> ()
  | _ -> Alcotest.fail "q2 should have been evicted (LRU)");
  (match (find "q1", find "q3") with
  | Pc.Hit _, Pc.Hit _ -> ()
  | _ -> Alcotest.fail "q1 and q3 should both be resident");
  let s = Pc.stats cache in
  Alcotest.(check int) "one eviction" 1 s.Pc.evictions;
  Alcotest.(check int) "capacity respected" 2 s.Pc.entries

(* --- snapshot versioning and invalidation --- *)

let test_invalidation () =
  let server = new_server () in
  ignore (ok_reply server sql_base);
  let r = ok_reply server sql_base in
  Alcotest.check result_t "warm" Sv.Hit r.Sv.r_result;
  (* a stats refresh stales the plan: the next request re-optimizes *)
  let dropped, (cat, st) = Sv.invalidate server `Stats in
  Alcotest.(check int) "one entry dropped" 1 dropped;
  Alcotest.(check (pair int int)) "stats bump" (0, 1) (cat, st);
  let r = ok_reply server sql_base in
  Alcotest.check result_t "stale plan not served" Sv.Missed r.Sv.r_result;
  Alcotest.(check (pair int int))
    "reply carries the new versions" (0, 1)
    (r.Sv.r_catalog_version, r.Sv.r_stats_version);
  let r = ok_reply server sql_base in
  Alcotest.check result_t "warm again under the new versions" Sv.Hit
    r.Sv.r_result;
  (* a catalog change advances both counters *)
  let dropped, (cat, st) = Sv.invalidate server `Catalog in
  Alcotest.(check int) "entry dropped again" 1 dropped;
  Alcotest.(check (pair int int)) "catalog bump stales stats too" (1, 2)
    (cat, st)

let test_version_threading () =
  let s = Lazy.force Fixtures.small in
  let source = Catalog.Source.create s.Fixtures.provider in
  Catalog.Source.bump_stats source;
  let snapshot = Catalog.Source.snapshot source in
  let accessor =
    Catalog.Accessor.of_snapshot ~snapshot ~cache:(Catalog.Md_cache.create ())
      ()
  in
  Alcotest.(check (pair int int))
    "accessor binds the snapshot versions" (0, 1)
    (Catalog.Accessor.md_versions accessor);
  let td = Option.get (Catalog.Accessor.bind_table accessor "t1") in
  let st = Catalog.Accessor.base_stats accessor td in
  Alcotest.(check int) "base stats stamped with the stats version" 1
    (Stats.Relstats.version st);
  let query = Sqlfront.Binder.bind_sql accessor sql_base in
  let report =
    Orca.Optimizer.optimize ~config:(Lazy.force Fixtures.orca_config) accessor
      query
  in
  Alcotest.(check (pair int int))
    "optimizer report records the versions" (0, 1)
    report.Orca.Optimizer.md_versions

let test_relstats_version_ops () =
  let st = Stats.Relstats.make ~version:3 ~rows:100.0 [] in
  Alcotest.(check int) "make carries the version" 3 (Stats.Relstats.version st);
  let st' = Stats.Relstats.scale st 0.5 in
  Alcotest.(check int) "scale preserves the version" 3
    (Stats.Relstats.version st');
  Alcotest.(check int) "set_version" 7
    (Stats.Relstats.version (Stats.Relstats.set_version st 7))

(* --- the line protocol --- *)

let read_all_lines fd =
  let ic = Unix.in_channel_of_descr fd in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let test_protocol_session () =
  let server = new_server () in
  let req_r, req_w = Unix.pipe () and resp_r, resp_w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr req_w in
  output_string oc "!ping\n";
  output_string oc (sql_base ^ "\n");
  output_string oc (sql_base ^ "\n");
  output_string oc "!plan on\n";
  output_string oc (sql_base ^ "\n");
  output_string oc "!invalidate stats\n";
  output_string oc "!stats\n";
  output_string oc "!bogus\n";
  output_string oc "!quit\n";
  close_out oc;
  let ic = Unix.in_channel_of_descr req_r in
  let soc = Unix.out_channel_of_descr resp_w in
  Sv.serve_channels server ic soc;
  close_out soc;
  (match read_all_lines resp_r with
  | [ pong; first; second; plan_on; with_plan; inval; stats; bogus; bye ] ->
      let has sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check string) "ping" {|{"ok":true,"pong":true}|} pong;
      Alcotest.(check bool) "first misses" true (has {|"cache":"miss"|} first);
      Alcotest.(check bool) "second hits" true (has {|"cache":"hit"|} second);
      Alcotest.(check string) "plan on" {|{"ok":true,"plan":true}|} plan_on;
      Alcotest.(check bool) "plan included on demand" true
        (has {|"plan":"|} with_plan);
      Alcotest.(check bool) "plan off by default" false (has {|"plan":"|} second);
      Alcotest.(check bool) "invalidate reports the drop" true
        (has {|"invalidated":"stats","dropped":1|} inval);
      Alcotest.(check bool) "stats exposes the counters" true
        (has {|"hits":|} stats && has {|"hit_rate":|} stats);
      Alcotest.(check bool) "unknown control command errors" true
        (has {|"ok":false|} bogus);
      Alcotest.(check bool) "quit acknowledged" true (has {|"bye":true|} bye)
  | lines -> Alcotest.failf "expected 9 response lines, got %d" (List.length lines));
  Unix.close req_r;
  Unix.close resp_r

(* --- concurrency --- *)

let test_concurrent_sessions () =
  let server = new_server () in
  let nthreads = 8 and per_thread = 25 in
  let sqls = [| sql_base; sql_variant; sql_changed; sql_other |] in
  let failures = ref 0 in
  let lock = Mutex.create () in
  let worker i =
    for j = 0 to per_thread - 1 do
      let sql = sqls.((i + j) mod Array.length sqls) in
      match Sv.optimize_sql server sql with
      | Ok _ -> ()
      | Error _ ->
          Mutex.lock lock;
          incr failures;
          Mutex.unlock lock
    done
  in
  let threads = List.init nthreads (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no request failed" 0 !failures;
  let s = Sv.stats server in
  Alcotest.(check int)
    "every request counted" (nthreads * per_thread)
    s.Sv.s_requests;
  let c = s.Sv.s_cache in
  Alcotest.(check int)
    "every probe accounted for" (nthreads * per_thread)
    (c.Pc.hits + c.Pc.rebinds + c.Pc.misses)

let test_unix_socket_sessions () =
  let server = new_server () in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "orca-serve-test-%d.sock" (Unix.getpid ()))
  in
  let nclients = 3 in
  let listener =
    Thread.create
      (fun () -> Sv.serve_unix ~max_sessions:nclients server ~path ())
      ()
  in
  (* wait for the socket to appear *)
  let rec wait n =
    if n = 0 then Alcotest.fail "listener never bound its socket"
    else if not (Sys.file_exists path) then (Thread.delay 0.02; wait (n - 1))
  in
  wait 250;
  let client i =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    let oc = Unix.out_channel_of_descr fd in
    let ic = Unix.in_channel_of_descr fd in
    output_string oc (sql_base ^ "\n");
    output_string oc ((if i mod 2 = 0 then sql_variant else sql_changed) ^ "\n");
    output_string oc "!quit\n";
    flush oc;
    let l1 = input_line ic in
    let l2 = input_line ic in
    let l3 = input_line ic in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    List.for_all
      (fun l -> String.length l > 0 && String.sub l 0 10 = {|{"ok":true|})
      [ l1; l2; l3 ]
  in
  let oks = ref 0 in
  let lock = Mutex.create () in
  let clients =
    List.init nclients (fun i ->
        Thread.create
          (fun () ->
            if client i then begin
              Mutex.lock lock;
              incr oks;
              Mutex.unlock lock
            end)
          ())
  in
  List.iter Thread.join clients;
  Thread.join listener;
  Alcotest.(check int) "every session served" nclients !oks;
  Alcotest.(check bool) "socket removed on exit" false (Sys.file_exists path);
  let s = Sv.stats server in
  Alcotest.(check int) "all socket requests counted" (2 * nclients)
    s.Sv.s_requests

(* --- observability (lib/sre wiring) --- *)

let has sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_trace_in_replies () =
  let server = new_server () in
  let r1 = ok_reply server sql_base in
  let r2 = ok_reply server sql_variant in
  Alcotest.(check string) "API requests trace in session 0" "s0-r1"
    r1.Sv.r_trace;
  Alcotest.(check string) "request ids advance" "s0-r2" r2.Sv.r_trace;
  (* a protocol session owns its own sid and rid stream *)
  let s = Sv.open_session server in
  Alcotest.(check int) "first explicit session is sid 1" 1 (Sv.session_id s);
  let r3 =
    match Sv.optimize_sql ~session:s server sql_base with
    | Ok r -> r
    | Error e -> Alcotest.failf "session request failed: %s" e
  in
  Alcotest.(check string) "session request traces under its sid" "s1-r1"
    r3.Sv.r_trace;
  Sv.close_session server s;
  (* the trace id is echoed in the protocol reply JSON *)
  Alcotest.(check bool) "trace echoed in the reply line" true
    (has {|"trace":"s0-r1"|} (Sv.json_of_reply ~include_plan:false r1));
  (* ... and the session's miss was recorded in the flight ring under its
     trace id (r1's miss was the server's only one: r2/r3 hit the cache) *)
  (match List.rev (Telemetry.Recorder.entries ()) with
  | last :: _ ->
      Alcotest.(check string) "flight entry labeled with the trace id"
        "s0-r1" last.Telemetry.Recorder.e_label
  | [] -> Alcotest.fail "miss did not reach the flight recorder")

let test_request_events () =
  let server = new_server () in
  let r1 = ok_reply server sql_base in
  let r2 = ok_reply server sql_variant in
  ignore (Sv.invalidate server `Stats);
  let es = Sre.Events.entries (Sv.events server) in
  let finishes =
    List.filter (fun e -> e.Sre.Events.ev_kind = "request_finish") es
  in
  Alcotest.(check int) "one terminal event per request" 2
    (List.length finishes);
  Alcotest.(check (list (option string)))
    "terminal events carry their traces"
    [ Some r1.Sv.r_trace; Some r2.Sv.r_trace ]
    (List.map (fun e -> e.Sre.Events.ev_trace) finishes);
  let starts =
    List.filter (fun e -> e.Sre.Events.ev_kind = "request_start") es
  in
  Alcotest.(check bool) "request_start records the fingerprint" true
    (List.for_all
       (fun e ->
         List.exists
           (fun (k, v) ->
             k = "fingerprint" && v = Sre.Events.S r1.Sv.r_fingerprint)
           e.Sre.Events.ev_fields)
       starts);
  let outcome e =
    List.exists (fun (k, v) -> k = "cache" && v = Sre.Events.S e)
  in
  (match List.map (fun e -> e.Sre.Events.ev_fields) finishes with
  | [ f1; f2 ] ->
      Alcotest.(check bool) "miss then hit recorded" true
        (outcome "miss" f1 && outcome "hit" f2)
  | _ -> Alcotest.fail "unreachable");
  Alcotest.(check bool) "invalidation logged at warn" true
    (List.exists
       (fun e ->
         e.Sre.Events.ev_kind = "invalidate"
         && e.Sre.Events.ev_level = Sre.Events.Warn)
       es)

let test_error_events_and_slo () =
  let server = new_server () in
  ignore (ok_reply server sql_base);
  (match Sv.optimize_sql server "SELECT nope FROM missing_table" with
  | Ok _ -> Alcotest.fail "bogus query optimized"
  | Error _ -> ());
  let es = Sre.Events.entries (Sv.events server) in
  Alcotest.(check bool) "failed request leaves a request_error event" true
    (List.exists
       (fun e ->
         e.Sre.Events.ev_kind = "request_error"
         && e.Sre.Events.ev_level = Sre.Events.Error)
       es);
  let r = Sre.Slo.report (Sv.slo server) in
  Alcotest.(check int) "both requests in the SLO window" 2 r.Sre.Slo.r_requests;
  Alcotest.(check int) "the failure counted against availability" 1
    r.Sre.Slo.r_errors;
  let st = Sv.stats server in
  Alcotest.(check int) "stats counts the error" 1 st.Sv.s_errors;
  Alcotest.(check bool) "lifetime latency quantiles populated" true
    (st.Sv.s_p50_ms > 0.0 && st.Sv.s_p99_ms >= st.Sv.s_p50_ms)

(* unescape a JSON string literal's body (the reply fields are produced by
   the server's own escaper: quote, backslash, \n\r\t and \uXXXX) *)
let json_unescape s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    (if s.[!i] <> '\\' then Buffer.add_char buf s.[!i]
     else begin
       incr i;
       match s.[!i] with
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'u' ->
           let code = int_of_string ("0x" ^ String.sub s (!i + 1) 4) in
           i := !i + 4;
           Buffer.add_char buf (Char.chr (code land 0xff))
       | c -> Buffer.add_char buf c
     end);
    incr i
  done;
  Buffer.contents buf

(* run one scripted protocol session; returns the response lines *)
let run_session server lines =
  let req_r, req_w = Unix.pipe () and resp_r, resp_w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr req_w in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc;
  let ic = Unix.in_channel_of_descr req_r in
  let soc = Unix.out_channel_of_descr resp_w in
  Sv.serve_channels server ic soc;
  close_out soc;
  let out = read_all_lines resp_r in
  Unix.close req_r;
  Unix.close resp_r;
  out

let test_metrics_endpoint () =
  let server = new_server () in
  match run_session server [ sql_base; "!metrics"; "!quit" ] with
  | [ _; metrics; _ ] ->
      Alcotest.(check bool) "server-side lint is clean" true
        (has {|"lint_errors":0|} metrics);
      (* extract the escaped exposition and lint it client-side too *)
      let key = {|"metrics":"|} in
      let start =
        let rec find i =
          if i + String.length key > String.length metrics then
            Alcotest.fail "no metrics field in the reply"
          else if String.sub metrics i (String.length key) = key then
            i + String.length key
          else find (i + 1)
        in
        find 0
      in
      let stop = String.rindex metrics '"' in
      let prom = json_unescape (String.sub metrics start (stop - start)) in
      Alcotest.(check (list string))
        "exposition passes the Prometheus linter" []
        (Telemetry.Expose.lint_prometheus prom);
      Alcotest.(check bool) "serve counters exposed" true
        (has "orca_serve_requests_total" prom)
  | lines -> Alcotest.failf "expected 3 reply lines, got %d" (List.length lines)

let test_health_slo_endpoints () =
  let server = new_server () in
  match
    run_session server [ sql_base; "!health"; "!slo"; "!stats"; "!quit" ]
  with
  | [ _; health; slo; stats; _ ] ->
      List.iter
        (fun (name, line) ->
          Alcotest.(check bool) (name ^ " is one JSON line") true
            (String.length line > 0
            && line.[0] = '{'
            && line.[String.length line - 1] = '}'
            && has {|"ok":true|} line))
        [ ("health", health); ("slo", slo); ("stats", stats) ];
      Alcotest.(check bool) "health reports ready" true
        (has {|"status":"ready"|} health);
      Alcotest.(check bool) "health carries its checks" true
        (has {|"checks":[{"name":"error-rate"|} health);
      Alcotest.(check bool) "slo carries the objectives and burn" true
        (has {|"latency_burn":|} slo && has {|"window_s":300|} slo);
      (* the enriched !stats satellite: uptime, quantiles, sessions *)
      List.iter
        (fun f ->
          Alcotest.(check bool) ("stats has " ^ f) true (has ("\"" ^ f ^ "\":") stats))
        [
          "uptime_s"; "p50_ms"; "p95_ms"; "p99_ms"; "sessions_open";
          "sessions_total"; "per_session";
        ];
      Alcotest.(check bool) "per-session accounting rendered" true
        (has {|"per_session":[{"session":0,"requests":0,"errors":0},{"session":1,"requests":1|} stats)
  | lines -> Alcotest.failf "expected 5 reply lines, got %d" (List.length lines)

let test_protocol_stays_line_parseable () =
  (* the stdout-cleanliness satellite: with the event log sinking to a
     file, a full session transcript must remain one well-formed JSON
     object per line — events never interleave with protocol replies *)
  let server = new_server () in
  let sink_path = Filename.temp_file "orca-serve-events" ".jsonl" in
  let sink = open_out sink_path in
  Sre.Events.set_sink (Sv.events server) (Some sink);
  let replies =
    run_session server
      [
        "!ping"; sql_base; sql_variant; sql_changed; "!invalidate stats";
        sql_base; "!metrics"; "!health"; "!slo"; "!stats"; "!quit";
      ]
  in
  Sre.Events.set_sink (Sv.events server) None;
  close_out sink;
  Alcotest.(check int) "one reply line per request line" 11
    (List.length replies);
  List.iter
    (fun line ->
      Alcotest.(check bool)
        ("well-formed single-line reply: " ^ line)
        true
        (String.length line > 0
        && line.[0] = '{'
        && line.[String.length line - 1] = '}'
        && has {|"ok":|} line
        && not (has {|"event":|} line)))
    replies;
  let ic = open_in sink_path in
  let sink_lines = ref [] in
  (try
     while true do
       sink_lines := input_line ic :: !sink_lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove sink_path;
  Alcotest.(check bool) "events landed in the sink instead" true
    (List.length !sink_lines > 0
    && List.for_all
         (fun l -> String.length l > 0 && has {|"event":|} l && l.[0] = '{')
         !sink_lines)

let test_concurrent_session_accounting () =
  let server = new_server () in
  let nthreads = 8 and per_thread = 25 in
  let sqls = [| sql_base; sql_variant; sql_changed; sql_other |] in
  let traces = Array.make (nthreads * per_thread) "" in
  let failures = ref 0 in
  let lock = Mutex.create () in
  let worker i =
    let session = Sv.open_session server in
    for j = 0 to per_thread - 1 do
      let sql = sqls.((i + j) mod Array.length sqls) in
      match Sv.optimize_sql ~session server sql with
      | Ok r -> traces.((i * per_thread) + j) <- r.Sv.r_trace
      | Error _ ->
          Mutex.lock lock;
          incr failures;
          Mutex.unlock lock
    done;
    Sv.close_session server session
  in
  let threads = List.init nthreads (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no request failed" 0 !failures;
  let s = Sv.stats server in
  Alcotest.(check int) "every request counted globally"
    (nthreads * per_thread) s.Sv.s_requests;
  (* per-session counters sum exactly to the global count; the API
     pseudo-session fielded nothing *)
  Alcotest.(check int) "sessions registered" (nthreads + 1)
    s.Sv.s_sessions_total;
  Alcotest.(check int) "per-session counts sum to the total"
    (nthreads * per_thread)
    (List.fold_left (fun acc (_, r, _) -> acc + r) 0 s.Sv.s_per_session);
  List.iter
    (fun (sid, reqs, errs) ->
      if sid = 0 then
        Alcotest.(check (pair int int)) "API session idle" (0, 0) (reqs, errs)
      else begin
        Alcotest.(check int)
          (Printf.sprintf "session %d fielded its own requests" sid)
          per_thread reqs;
        Alcotest.(check int) "no errors" 0 errs
      end)
    s.Sv.s_per_session;
  (* trace ids are globally unique across the concurrent sessions *)
  let tbl = Hashtbl.create 256 in
  Array.iter (fun tr -> Hashtbl.replace tbl tr ()) traces;
  Alcotest.(check int) "trace ids unique" (nthreads * per_thread)
    (Hashtbl.length tbl);
  (* and the event log agrees: exactly one terminal event per request *)
  let es = Sre.Events.entries (Sv.events server) in
  let terminal =
    List.filter
      (fun e ->
        e.Sre.Events.ev_kind = "request_finish"
        || e.Sre.Events.ev_kind = "request_error")
      es
  in
  Alcotest.(check int) "terminal events sum to s_requests"
    s.Sv.s_requests (List.length terminal);
  Alcotest.(check int) "every session opened and closed" nthreads
    (List.length
       (List.filter (fun e -> e.Sre.Events.ev_kind = "session_close") es))

let test_eviction_event () =
  let server =
    Sv.of_provider
      ~config:(Lazy.force Fixtures.orca_config)
      ~capacity:2
      (Lazy.force Fixtures.small).Fixtures.provider
  in
  ignore (ok_reply server sql_base);
  ignore (ok_reply server sql_other);
  ignore (ok_reply server "SELECT b FROM t2 WHERE b = 4");
  let s = Sv.stats server in
  Alcotest.(check int) "an entry was evicted" 1 s.Sv.s_cache.Pc.evictions;
  Alcotest.(check bool) "the eviction left an event with the fingerprint"
    true
    (List.exists
       (fun e ->
         e.Sre.Events.ev_kind = "evict"
         && List.exists (fun (k, _) -> k = "fingerprint") e.Sre.Events.ev_fields)
       (Sre.Events.entries (Sv.events server)))

let test_flight_recorder_wiring () =
  let dir = Filename.temp_file "orca-serve-flight" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Telemetry.Recorder.configure ~slow_ms:(Some 0.0) ~dump_dir:(Some dir) ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Recorder.configure ~slow_ms:None ~dump_dir:None ();
      Array.iter (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let server = new_server () in
      let r = ok_reply server sql_base in
      (* every request beats a 0 ms threshold: the miss must have been
         recaptured as an AMPERe dump attributed to this trace *)
      let dumps = Sys.readdir dir in
      Alcotest.(check int) "one flight dump emitted" 1 (Array.length dumps);
      Alcotest.(check bool) "dump named for the flight recorder" true
        (has "ampere-flight-" dumps.(0));
      let ic = open_in (Filename.concat dir dumps.(0)) in
      let len = in_channel_length ic in
      let dump = really_input_string ic len in
      close_in ic;
      Alcotest.(check bool) "dump traceflags carry the trace id" true
        (has r.Sv.r_trace dump))

let test_sre_plan_identity () =
  (* the acceptance criterion: observability fully on (trace ids, events,
     SLO) versus dark must not change a single plan byte *)
  let dark =
    Sv.of_provider
      ~config:(Lazy.force Fixtures.orca_config)
      ~events:(Sre.Events.create ~enabled:false ())
      (Lazy.force Fixtures.small).Fixtures.provider
  in
  let lit = new_server () in
  List.iter
    (fun sql ->
      let a = ok_reply dark sql and b = ok_reply lit sql in
      Alcotest.(check string)
        ("identical DXL for " ^ sql)
        (Lazy.force a.Sv.r_dxl) (Lazy.force b.Sv.r_dxl))
    [ sql_base; sql_other; "SELECT a, b FROM t1 WHERE b = 10 AND a = 10" ];
  Alcotest.(check int) "the dark server logged nothing" 0
    (Sre.Events.total (Sv.events dark));
  Alcotest.(check bool) "the lit server logged the work" true
    (Sre.Events.total (Sv.events lit) > 0)

let suite =
  [
    Alcotest.test_case "normalize: case/whitespace share a shape" `Quick
      test_normalize_shape;
    Alcotest.test_case "normalize: constants become parameters" `Quick
      test_normalize_params_differ;
    Alcotest.test_case "normalize: distinct shapes, distinct fingerprints"
      `Quick test_normalize_distinct_shapes;
    Alcotest.test_case "cache hit is byte-identical to fresh optimization"
      `Quick test_hit_identical_plan;
    Alcotest.test_case "changed constant takes the rebind path" `Quick
      test_rebind;
    Alcotest.test_case "ambiguous rebind optimizes fresh" `Quick
      test_rebind_ambiguity_misses;
    Alcotest.test_case "fingerprint collision never served" `Quick
      test_fingerprint_collision;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction;
    Alcotest.test_case "invalidation on version bumps" `Quick test_invalidation;
    Alcotest.test_case "versions threaded through accessor/stats/report"
      `Quick test_version_threading;
    Alcotest.test_case "relstats version algebra" `Quick
      test_relstats_version_ops;
    Alcotest.test_case "line-protocol session" `Quick test_protocol_session;
    Alcotest.test_case "concurrent sessions share the cache" `Quick
      test_concurrent_sessions;
    Alcotest.test_case "unix-socket listener serves concurrent clients" `Quick
      test_unix_socket_sessions;
    Alcotest.test_case "trace ids echoed in replies and flight entries" `Quick
      test_trace_in_replies;
    Alcotest.test_case "request lifecycle lands in the event log" `Quick
      test_request_events;
    Alcotest.test_case "errors reach the event log, SLO and stats" `Quick
      test_error_events_and_slo;
    Alcotest.test_case "!metrics passes the Prometheus linter" `Quick
      test_metrics_endpoint;
    Alcotest.test_case "!health, !slo and enriched !stats" `Quick
      test_health_slo_endpoints;
    Alcotest.test_case "protocol stream stays line-parseable under sre" `Quick
      test_protocol_stays_line_parseable;
    Alcotest.test_case "concurrent sessions account exactly" `Quick
      test_concurrent_session_accounting;
    Alcotest.test_case "LRU eviction emits an event" `Quick test_eviction_event;
    Alcotest.test_case "server misses feed the flight recorder" `Quick
      test_flight_recorder_wiring;
    Alcotest.test_case "plans byte-identical with sre on vs off" `Quick
      test_sre_plan_identity;
  ]

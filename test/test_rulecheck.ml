open Ir
module Memo = Memolib.Memo
module Mexpr = Memolib.Mexpr
module Diagnostic = Verify.Diagnostic

(* Tests for lib/rulecheck: the suite must be clean on the shipped rules and
   cost model, and each injected broken fixture must be caught by its own
   distinct diagnostic id. *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let has_diag ?severity id diags =
  List.exists
    (fun (d : Diagnostic.t) ->
      d.Diagnostic.rule = id
      && match severity with None -> true | Some s -> d.Diagnostic.severity = s)
    diags

let count_diag id diags =
  List.length
    (List.filter (fun (d : Diagnostic.t) -> d.Diagnostic.rule = id) diags)

let test_suite_clean () =
  let report = Rulecheck.run ~seeds:2 () in
  Alcotest.(check int) "no errors" 0 (Rulecheck.error_count report);
  Alcotest.(check int) "no warnings" 0 (Rulecheck.warning_count report);
  Alcotest.(check bool) "rules audited" true (report.Rulecheck.rules_checked >= 20);
  Alcotest.(check bool) "alternatives checked" true
    (report.Rulecheck.alternatives > 0)

let test_cost_model_clean () =
  Alcotest.(check int) "default cost model lints clean" 0
    (List.length (Rulecheck.check_cost_model Cost.Cost_model.default))

let test_bad_join_commute () =
  let report =
    Rulecheck.check_rules ~seeds:1 [ Rulecheck.Broken.bad_join_commute ]
  in
  Alcotest.(check bool) "equiv mismatch caught" true
    (has_diag ~severity:Diagnostic.Error "rule/equiv-mismatch"
       report.Rulecheck.diags)

let test_lying_shape_mask () =
  let report =
    Rulecheck.check_rules ~seeds:1 [ Rulecheck.Broken.lying_shape_mask ]
  in
  let diags = report.Rulecheck.diags in
  Alcotest.(check bool) "shape escape caught" true
    (has_diag ~severity:Diagnostic.Error "rule/shape-escape" diags);
  (* both declared shapes (Select, Limit) never fire *)
  Alcotest.(check int) "dead declared shapes" 2
    (count_diag "rule/shape-dead" diags)

let test_memo_mutator () =
  let report = Rulecheck.check_rules ~seeds:1 [ Rulecheck.Broken.memo_mutator ] in
  Alcotest.(check bool) "memo mutation caught" true
    (has_diag ~severity:Diagnostic.Error "rule/memo-mutation"
       report.Rulecheck.diags)

let test_bad_cost_model () =
  let diags = Rulecheck.check_cost_model Rulecheck.Broken.bad_cost_model in
  Alcotest.(check bool) "non-monotone caught" true
    (has_diag "cost/non-monotone" diags)

let test_engine_enforcement () =
  (* the engine's own debug checksum (rule_checks) rejects a mutating rule *)
  let memo = Memo.create () in
  let root =
    Memo.insert memo (Mexpr.logical (Expr.L_get Rulecheck.Model.t1) [])
  in
  Memo.set_root memo (Memo.find memo root.Memo.ge_group);
  let engine =
    Search.Engine.create ~rule_checks:true
      ~ruleset:(Xform.Ruleset.of_rules [ Rulecheck.Broken.memo_mutator ])
      ~model:Cost.Cost_model.default
      ~factory:(Colref.Factory.create ~start:1000 ())
      ~base:(fun _ -> Stats.Relstats.set_rows Stats.Relstats.empty 100.0)
      memo
  in
  Alcotest.(check bool) "contract violation raised" true
    (try
       Search.Engine.explore engine;
       false
     with Search.Engine.Rule_contract_violation _ -> true)

let test_json () =
  let report = Rulecheck.check_rules ~seeds:1 [ Rulecheck.Broken.memo_mutator ] in
  let json = Rulecheck.to_json report in
  Alcotest.(check bool) "json has error count" true
    (contains ~sub:"\"errors\":" json);
  Alcotest.(check bool) "json lists the diagnostic" true
    (contains ~sub:"rule/memo-mutation" json)

let suite =
  [
    Alcotest.test_case "suite clean on shipped rules" `Slow test_suite_clean;
    Alcotest.test_case "default cost model clean" `Quick test_cost_model_clean;
    Alcotest.test_case "bad join commute caught" `Quick test_bad_join_commute;
    Alcotest.test_case "lying shape mask caught" `Quick test_lying_shape_mask;
    Alcotest.test_case "memo mutator caught" `Quick test_memo_mutator;
    Alcotest.test_case "bad cost model caught" `Quick test_bad_cost_model;
    Alcotest.test_case "engine rule_checks enforcement" `Quick
      test_engine_enforcement;
    Alcotest.test_case "json report shape" `Quick test_json;
  ]

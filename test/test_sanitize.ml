(* Tests for the concurrency sanitizer (lib/sanitize): trace recording, the
   structural race detector, the wait-for-graph deadlock analyzer, the
   injected-bug fixtures, and schedule fuzzing on the real optimizer. *)

module Sch = Gpos.Scheduler
module Tr = Gpos.Trace
module San = Sanitize.Sanitizer
module D = Verify.Diagnostic

let access obj write = Tr.emit (Tr.Access { obj; write })

let with_lock name f =
  Tr.emit (Tr.Lock_acquired { lock = name });
  f ();
  Tr.emit (Tr.Lock_released { lock = name })

let rules ds = List.map (fun (d : D.t) -> d.D.rule) ds
let has_rule r ds = List.mem r (rules ds)

let errors_of ds = D.errors ds

(* A root that spawns [children] once, then runs [after] on its re-run. *)
let once_then ?(after = fun () -> ()) children =
  let stage = ref 0 in
  fun () ->
    incr stage;
    if !stage = 1 then Sch.Wait_for children
    else begin
      after ();
      Sch.Finished
    end

let leaf body () =
  body ();
  Sch.Finished

(* --- race detector on real scheduler traces --- *)

let test_spawn_edge_no_race () =
  (* parent writes before spawning readers: ordered by the spawn edge *)
  let sched = Sch.create () in
  let root =
    let stage = ref 0 in
    fun () ->
      incr stage;
      if !stage = 1 then begin
        access "cfg" true;
        Sch.Wait_for
          (List.init 3 (fun _ ->
               { Sch.run = leaf (fun () -> access "cfg" false); goal = None }))
      end
      else Sch.Finished
  in
  let _, diags = San.check (fun () -> Sch.run sched root) in
  Alcotest.(check (list string)) "no findings" [] (rules (errors_of diags))

let test_join_edge_no_race () =
  (* children write, parent reads after they all complete: join edges *)
  let sched = Sch.create () in
  let _, diags =
    San.check (fun () ->
        Sch.run sched
          (once_then
             ~after:(fun () -> access "result" false)
             (List.init 3 (fun i ->
                  {
                    Sch.run = leaf (fun () -> access (Printf.sprintf "r%d" i) true);
                    goal = None;
                  }))))
  in
  Alcotest.(check (list string)) "no findings" [] (rules (errors_of diags))

let test_sibling_write_race () =
  (* the injected-bug fixture: an unguarded Memo-style mutation made by two
     sibling jobs. The recorded schedule is sequential (workers = 1), but
     the structural happens-before graph leaves the siblings unordered, so
     the race must still be caught. *)
  let sched = Sch.create () in
  let _, diags =
    San.check (fun () ->
        Sch.run sched
          (once_then
             (List.init 2 (fun _ ->
                  {
                    Sch.run = leaf (fun () -> access "ctx:fixture.best" true);
                    goal = None;
                  }))))
  in
  Alcotest.(check bool) "data race detected" true
    (has_rule "sanitize/data-race" (errors_of diags))

let test_lock_suppresses_race () =
  (* same unordered siblings, but both accesses hold the same lock *)
  let sched = Sch.create () in
  let _, diags =
    San.check (fun () ->
        Sch.run sched
          (once_then
             (List.init 2 (fun _ ->
                  {
                    Sch.run =
                      leaf (fun () ->
                          with_lock "memo" (fun () -> access "shared" true));
                    goal = None;
                  }))))
  in
  Alcotest.(check (list string)) "no findings" [] (rules (errors_of diags))

let test_goal_release_orders () =
  (* holder writes, a parked parent reads after the goal is released: the
     goal-queue edge orders them, no lock needed *)
  let sched = Sch.create () in
  let holder =
    once_then
      ~after:(fun () -> access "y" true)
      [ { Sch.run = leaf (fun () -> ()); goal = None } ]
  in
  let parker =
    once_then
      ~after:(fun () -> access "y" false)
      [ { Sch.run = leaf (fun () -> ()); goal = Some "g" } ]
  in
  let _, diags =
    San.check (fun () ->
        Sch.run sched
          (once_then
             [
               { Sch.run = holder; goal = Some "g" };
               { Sch.run = parker; goal = None };
             ]))
  in
  Alcotest.(check (list string)) "no findings" [] (rules (errors_of diags))

let test_lock_inversion_warning () =
  let sched = Sch.create () in
  let _, diags =
    San.check (fun () ->
        Sch.run sched
          (once_then
             [
               {
                 Sch.run =
                   leaf (fun () ->
                       Tr.emit (Tr.Lock_acquired { lock = "a" });
                       Tr.emit (Tr.Lock_acquired { lock = "b" });
                       Tr.emit (Tr.Lock_released { lock = "b" });
                       Tr.emit (Tr.Lock_released { lock = "a" }));
                 goal = None;
               };
               {
                 Sch.run =
                   leaf (fun () ->
                       Tr.emit (Tr.Lock_acquired { lock = "b" });
                       Tr.emit (Tr.Lock_acquired { lock = "a" });
                       Tr.emit (Tr.Lock_released { lock = "a" });
                       Tr.emit (Tr.Lock_released { lock = "b" }));
                 goal = None;
               };
             ]))
  in
  Alcotest.(check bool) "inversion flagged" true
    (has_rule "sanitize/lock-inversion" diags)

(* --- deadlock analyzer on synthetic traces --- *)

let entries evs =
  List.mapi
    (fun i ev -> { Sanitize.Trace_log.seq = i; domain = 0; running = None; ev })
    evs

let test_synthetic_goal_cycle () =
  (* jobs 1 and 2 hold goals a and b and each park on the other's goal: the
     classic goal-queue cycle (must be flagged; a live scheduler would
     simply hang on it, hence the synthetic fixture) *)
  let trace =
    entries
      [
        Tr.Job_created { jid = 1; parent = None; goal = Some "a" };
        Tr.Goal_acquired { goal = "a"; jid = 1 };
        Tr.Job_created { jid = 2; parent = None; goal = Some "b" };
        Tr.Goal_acquired { goal = "b"; jid = 2 };
        Tr.Job_start { jid = 1 };
        Tr.Job_created { jid = 3; parent = Some 1; goal = Some "b" };
        Tr.Goal_absorbed { goal = "b"; parent = 1; child = 3; finished = false };
        Tr.Job_suspended { jid = 1; children = [] };
        Tr.Job_start { jid = 2 };
        Tr.Job_created { jid = 4; parent = Some 2; goal = Some "a" };
        Tr.Goal_absorbed { goal = "a"; parent = 2; child = 4; finished = false };
        Tr.Job_suspended { jid = 2; children = [] };
      ]
  in
  let diags = San.analyze trace in
  Alcotest.(check bool) "cycle flagged" true
    (has_rule "sanitize/goal-cycle" (errors_of diags))

let test_synthetic_lost_waiter () =
  (* job 2 parks on goal a; the holder finishes without ever releasing it *)
  let trace =
    entries
      [
        Tr.Job_created { jid = 1; parent = None; goal = Some "a" };
        Tr.Goal_acquired { goal = "a"; jid = 1 };
        Tr.Job_created { jid = 2; parent = None; goal = None };
        Tr.Job_start { jid = 2 };
        Tr.Job_created { jid = 3; parent = Some 2; goal = Some "a" };
        Tr.Goal_absorbed { goal = "a"; parent = 2; child = 3; finished = false };
        Tr.Job_suspended { jid = 2; children = [] };
        Tr.Job_start { jid = 1 };
        Tr.Job_finished { jid = 1 };
      ]
  in
  let diags = San.analyze trace in
  Alcotest.(check bool) "lost waiter flagged" true
    (has_rule "sanitize/lost-waiter" (errors_of diags))

let test_synthetic_stuck_pending () =
  (* job 1 suspends on child 2; the child finishes but the parent is never
     re-enqueued: its pending count can never reach 0 again *)
  let trace =
    entries
      [
        Tr.Job_created { jid = 1; parent = None; goal = None };
        Tr.Job_start { jid = 1 };
        Tr.Job_created { jid = 2; parent = Some 1; goal = None };
        Tr.Job_suspended { jid = 1; children = [ 2 ] };
        Tr.Job_start { jid = 2 };
        Tr.Job_finished { jid = 2 };
      ]
  in
  let diags = San.analyze trace in
  Alcotest.(check bool) "stuck pending flagged" true
    (has_rule "sanitize/stuck-pending" (errors_of diags))

let test_clean_scheduler_trace_clean () =
  (* a healthy drained run produces zero findings end to end *)
  let sched = Sch.create () in
  let _, diags =
    San.check (fun () ->
        Sch.run sched
          (once_then
             (List.init 4 (fun _ ->
                  { Sch.run = leaf (fun () -> ()); goal = Some "shared" }))))
  in
  Alcotest.(check (list string)) "no findings at all" [] (rules diags)

(* --- the real optimizer under the sanitizer --- *)

let sanitized_config ?fuzz_seed ~workers () =
  let c =
    Orca.Orca_config.with_workers
      (Orca.Orca_config.with_segments Orca.Orca_config.default Fixtures.nsegs)
      workers
  in
  let c = Orca.Orca_config.with_sanitize c in
  match fuzz_seed with
  | None -> c
  | Some s -> Orca.Orca_config.with_fuzz_seed c s

let optimize_with config sql =
  let accessor = Fixtures.small_accessor () in
  let query = Sqlfront.Binder.bind_sql accessor sql in
  Orca.Optimizer.optimize ~config accessor query

let fixture_sql =
  "SELECT t1.a, count(*) AS c FROM t1, t2 WHERE t1.a = t2.b GROUP BY t1.a \
   ORDER BY c DESC, t1.a LIMIT 10"

let test_optimizer_sequential_clean () =
  let report = optimize_with (sanitized_config ~workers:1 ()) fixture_sql in
  Alcotest.(check (list string))
    "no error diagnostics" []
    (rules (errors_of report.Orca.Optimizer.diagnostics))

let test_optimizer_parallel_clean () =
  let report = optimize_with (sanitized_config ~workers:4 ()) fixture_sql in
  Alcotest.(check (list string))
    "no error diagnostics at workers=4" []
    (rules (errors_of report.Orca.Optimizer.diagnostics))

let plan_sig (r : Orca.Optimizer.report) =
  (Ir.Plan_ops.to_string r.Orca.Optimizer.plan,
   r.Orca.Optimizer.plan.Ir.Expr.pcost)

let test_fuzzed_schedules_reproduce_plan () =
  (* every fuzz seed permutes the costing schedule yet must produce exactly
     the sequential plan and cost (deterministic tie-breaking) *)
  let plain =
    Orca.Orca_config.with_segments Orca.Orca_config.default Fixtures.nsegs
  in
  let baseline = plan_sig (optimize_with plain fixture_sql) in
  for seed = 1 to 8 do
    let fuzzed =
      plan_sig
        (optimize_with (Orca.Orca_config.with_fuzz_seed plain seed) fixture_sql)
    in
    Alcotest.(check (list string))
      (Printf.sprintf "seed %d matches sequential run" seed)
      []
      (rules
         (San.compare_runs
            ~label:(Printf.sprintf "seed %d" seed)
            ~baseline ~candidate:fuzzed))
  done

let test_parallel_reproduces_plan () =
  let plain =
    Orca.Orca_config.with_segments Orca.Orca_config.default Fixtures.nsegs
  in
  let baseline = plan_sig (optimize_with plain fixture_sql) in
  let par =
    plan_sig (optimize_with (Orca.Orca_config.with_workers plain 4) fixture_sql)
  in
  Alcotest.(check (list string))
    "workers=4 matches workers=1" []
    (rules (San.compare_runs ~label:"workers=4" ~baseline ~candidate:par))

let test_divergence_reported () =
  let d =
    San.compare_runs ~label:"fixture" ~baseline:("plan-a", 10.0)
      ~candidate:("plan-b", 11.0)
  in
  Alcotest.(check int) "plan and cost divergence" 2 (List.length d);
  Alcotest.(check bool) "rule id" true
    (has_rule "sanitize/schedule-divergence" d)

let suite =
  [
    Alcotest.test_case "spawn edge orders accesses" `Quick test_spawn_edge_no_race;
    Alcotest.test_case "join edge orders accesses" `Quick test_join_edge_no_race;
    Alcotest.test_case "sibling write race detected" `Quick test_sibling_write_race;
    Alcotest.test_case "common lock suppresses race" `Quick test_lock_suppresses_race;
    Alcotest.test_case "goal release orders accesses" `Quick test_goal_release_orders;
    Alcotest.test_case "lock inversion warning" `Quick test_lock_inversion_warning;
    Alcotest.test_case "synthetic goal cycle" `Quick test_synthetic_goal_cycle;
    Alcotest.test_case "synthetic lost waiter" `Quick test_synthetic_lost_waiter;
    Alcotest.test_case "synthetic stuck pending" `Quick test_synthetic_stuck_pending;
    Alcotest.test_case "clean trace has no findings" `Quick
      test_clean_scheduler_trace_clean;
    Alcotest.test_case "optimizer sequential clean" `Quick
      test_optimizer_sequential_clean;
    Alcotest.test_case "optimizer parallel clean" `Quick
      test_optimizer_parallel_clean;
    Alcotest.test_case "fuzzed schedules reproduce plan" `Quick
      test_fuzzed_schedules_reproduce_plan;
    Alcotest.test_case "parallel reproduces plan" `Quick
      test_parallel_reproduces_plan;
    Alcotest.test_case "divergence reported" `Quick test_divergence_reported;
  ]

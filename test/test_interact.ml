open Ir
module Mexpr = Memolib.Mexpr
module Rule = Xform.Rule
module Diagnostic = Verify.Diagnostic
module L = Logical_ops

(* Tests for lib/interact: the analysis must be clean on the shipped rule
   set, each broken fixture must be caught by its own distinct interact/*
   diagnostic id, the shape-mask lattice must obey its laws, and strata
   scheduling must reproduce the default plans byte-for-byte. *)

let has_diag ?severity ?node id diags =
  List.exists
    (fun (d : Diagnostic.t) ->
      d.Diagnostic.rule = id
      && (match severity with
         | None -> true
         | Some s -> d.Diagnostic.severity = s)
      && match node with None -> true | Some n -> d.Diagnostic.node = n)
    diags

let default_report = lazy (Interact.run ~seeds:2 ())

let rr name (report : Interact.report) =
  List.find
    (fun (r : Interact.rule_report) ->
      r.Interact.rr_rule.Rule.name = name)
    report.Interact.rules

let test_default_clean () =
  let report = Lazy.force default_report in
  Alcotest.(check int) "no errors" 0 (Interact.error_count report);
  Alcotest.(check int) "no warnings" 0 (Interact.warning_count report);
  Alcotest.(check int) "all rules analyzed" 23
    (List.length report.Interact.rules);
  Alcotest.(check bool) "fixpoint converged" false
    report.Interact.fixpoint_overflowed;
  Alcotest.(check bool) "has cyclic but bounded SCCs" true
    (report.Interact.n_cyclic > 0)

let test_default_strata_shape () =
  (* the known condensation: select pushdowns strictly before the select/agg
     splitters, which come strictly before the join orbit; each cyclic pair
     shares a stratum *)
  let report = Lazy.force default_report in
  let stratum n = (rr n report).Interact.rr_stratum in
  Alcotest.(check int) "JC and JA share a stratum (one SCC)"
    (stratum "JoinCommutativity")
    (stratum "JoinAssociativity");
  Alcotest.(check int) "pushdown pair shares a stratum"
    (stratum "SelectPushdownOuterJoin")
    (stratum "SelectPushdownGbAgg");
  Alcotest.(check bool) "pushdowns before SelectMergeJoin" true
    (stratum "SelectPushdownOuterJoin" < stratum "SelectMergeJoin");
  Alcotest.(check bool) "SelectMergeJoin before the join orbit" true
    (stratum "SelectMergeJoin" < stratum "JoinCommutativity");
  (* every rule reachable, every exploration rule fired *)
  List.iter
    (fun (r : Interact.rule_report) ->
      Alcotest.(check bool)
        (r.Interact.rr_rule.Rule.name ^ " reachable")
        true r.Interact.rr_reachable)
    report.Interact.rules

let test_unbounded_cycle () =
  let report = Interact.analyze ~seeds:1 ~bound:300 Interact.Broken.cycle_pair in
  Alcotest.(check bool) "unbounded cycle caught" true
    (has_diag ~severity:Diagnostic.Error "interact/unbounded-cycle"
       report.Interact.diags);
  (* the fixture pair itself declares its produces honestly *)
  Alcotest.(check bool) "no produces escape" false
    (has_diag "interact/produces-undeclared" report.Interact.diags)

let test_bounded_cycles_not_flagged () =
  (* the join orbit (commutativity + associativity) is cyclic but closed by
     duplicate detection: no diagnostic *)
  let report = Lazy.force default_report in
  Alcotest.(check bool) "join orbit not flagged" false
    (has_diag "interact/unbounded-cycle" report.Interact.diags)

let test_lying_produces () =
  let report = Interact.analyze ~seeds:1 [ Interact.Broken.lying_produces ] in
  Alcotest.(check bool) "escaped shapes are an error" true
    (has_diag ~severity:Diagnostic.Error "interact/produces-undeclared"
       report.Interact.diags);
  Alcotest.(check bool) "dead declared shape is a warning" true
    (has_diag ~severity:Diagnostic.Warning "interact/produces-dead"
       report.Interact.diags)

let test_shadowed_rule () =
  let report = Interact.analyze ~seeds:1 [ Interact.Broken.shadowed_apply ] in
  Alcotest.(check bool) "shadowed rule caught" true
    (has_diag ~severity:Diagnostic.Warning ~node:"ShadowedApplyRule"
       "interact/unreachable-rule" report.Interact.diags)

let test_promise_inversion () =
  let report = Interact.analyze ~seeds:1 Interact.Broken.inversion_pair in
  Alcotest.(check bool) "promise inversion caught" true
    (has_diag ~severity:Diagnostic.Warning ~node:"InversionConsumer"
       "interact/promise-inversion" report.Interact.diags);
  Alcotest.(check bool) "feeder itself not flagged" false
    (has_diag ~node:"InversionFeeder" "interact/promise-inversion"
       report.Interact.diags)

let test_mask_defaulted () =
  let report = Interact.analyze ~seeds:1 [ Interact.Broken.defaulted_mask ] in
  Alcotest.(check bool) "defaulted mask caught" true
    (has_diag ~severity:Diagnostic.Warning ~node:"DefaultedMask"
       "interact/mask-defaulted" report.Interact.diags)

(* --- producer inference round-trips the edge shapes ---------------------
   Apply, SetOp and the CTE triple never appear in exploration rule outputs
   today; ad-hoc rules prove the inference abstracts them correctly. *)

let edge_rule name shapes op children =
  Rule.make ~name ~kind:Rule.Exploration ~shapes:[ L.S_select ]
    ~produces:shapes
    (fun _ctx _memo ge ->
      match Rule.logical_op ge with
      | Some (Expr.L_select _) -> (
          match ge.Memolib.Memo.ge_children with
          | [ g ] ->
              [ Mexpr.logical_of_groups op (List.map (fun _ -> g) children) ]
          | _ -> [])
      | _ -> [])

let test_edge_shape_roundtrip () =
  let rules =
    [
      edge_rule "MintApply" [ L.S_apply ]
        (Expr.L_apply (Expr.Apply_exists, []))
        [ (); () ];
      edge_rule "MintSet" [ L.S_set ]
        (Expr.L_set (Expr.Union_all, []))
        [ (); () ];
      edge_rule "MintCTEConsumer" [ L.S_cte_consumer ]
        (Expr.L_cte_consumer (7, []))
        [];
    ]
  in
  let report = Interact.analyze ~seeds:1 rules in
  List.iter
    (fun (r : Interact.rule_report) ->
      Alcotest.(check string)
        (r.Interact.rr_rule.Rule.name ^ " observed = declared")
        (L.mask_to_string
           (Option.get r.Interact.rr_rule.Rule.produces))
        (L.mask_to_string r.Interact.rr_observed))
    report.Interact.rules;
  Alcotest.(check bool) "no produces diagnostics" false
    (has_diag "interact/produces-undeclared" report.Interact.diags
    || has_diag "interact/produces-dead" report.Interact.diags)

(* --- growth bound -------------------------------------------------------- *)

let test_static_bound_monotone () =
  let report = Lazy.force default_report in
  Alcotest.(check bool) "positive constants" true
    (report.Interact.c_nonjoin > 0 && report.Interact.p_max > 0);
  let b = Interact.static_bound report in
  Alcotest.(check bool) "monotone in join count" true
    (b 1 <= b 2 && b 2 < b 3 && b 3 < b 8);
  (* J(n) = 2^n - 2: the bushy orbit *)
  Alcotest.(check (float 1e-9)) "join orbit n=4" 14.0 (Interact.join_orbit 4);
  Alcotest.(check (float 1e-9)) "leaves have no orbit" 1.0
    (Interact.join_orbit 1)

(* --- strata scheduling reproduces the default plans ---------------------- *)

let test_strata_plan_identity () =
  let report = Lazy.force default_report in
  let strata = Interact.strata report in
  Alcotest.(check int) "one stratum per rule" 23 (List.length strata);
  List.iter
    (fun sql ->
      let plan config =
        let accessor = Fixtures.small_accessor () in
        let query = Sqlfront.Binder.bind_sql accessor sql in
        let r = Orca.Optimizer.optimize ~config accessor query in
        Dxl.Dxl_plan.to_string r.Orca.Optimizer.plan
      in
      let base = Lazy.force Fixtures.orca_config in
      Alcotest.(check string)
        ("byte-identical plan: " ^ sql)
        (plan base)
        (plan (Orca.Orca_config.with_strata base strata)))
    [
      "SELECT a, b FROM t1 WHERE b < 50";
      "SELECT t1.a, t2.b FROM t1, t2 WHERE t1.a = t2.b AND t2.a < 100";
      "SELECT a, SUM(b) AS s FROM t1 GROUP BY a";
      "SELECT x.a FROM t1 x, t1 y, t2 z WHERE x.a = y.a AND y.b = z.b";
    ]

(* --- qcheck: the shape-mask lattice laws --------------------------------- *)

let mask_gen = QCheck.int_range 0 L.all_shapes_mask

let prop_union_inter_laws =
  QCheck.Test.make ~count:200 ~name:"mask union/inter lattice laws"
    QCheck.(triple mask_gen mask_gen mask_gen)
    (fun (a, b, c) ->
      L.mask_union a b = L.mask_union b a
      && L.mask_inter a b = L.mask_inter b a
      && L.mask_union a (L.mask_union b c) = L.mask_union (L.mask_union a b) c
      && L.mask_inter a (L.mask_inter b c) = L.mask_inter (L.mask_inter a b) c
      && L.mask_union a a = a
      && L.mask_inter a a = a
      && L.mask_inter a (L.mask_union a b) = a
      && L.mask_union a (L.mask_inter a b) = a)

let prop_subset_diff_laws =
  QCheck.Test.make ~count:200 ~name:"mask subset/diff laws"
    QCheck.(pair mask_gen mask_gen)
    (fun (a, b) ->
      L.mask_subset a (L.mask_union a b)
      && L.mask_subset (L.mask_inter a b) a
      && L.mask_inter (L.mask_diff a b) b = 0
      && L.mask_union (L.mask_diff a b) (L.mask_inter a b) = a
      && (L.mask_subset a b = (L.mask_diff a b = 0)))

let prop_mask_string_roundtrip =
  QCheck.Test.make ~count:200 ~name:"shapes_of_mask inverts shape_mask"
    mask_gen
    (fun m ->
      L.shape_mask (L.shapes_of_mask m) = m
      && List.for_all (fun s -> L.mask_mem s m) (L.shapes_of_mask m))

(* union-fold over any mask sequence is a monotone fixpoint: each step only
   grows, and it converges within one pass per distinct bit *)
let prop_union_fixpoint_monotone =
  QCheck.Test.make ~count:100 ~name:"union fixpoint monotone and convergent"
    QCheck.(list_of_size (Gen.int_range 0 20) mask_gen)
    (fun ms ->
      let rec go prev = function
        | [] -> true
        | m :: rest ->
            let next = L.mask_union prev m in
            L.mask_subset prev next
            && L.mask_subset m next
            && (* idempotent at the fixpoint: re-unioning changes nothing *)
            L.mask_union next m = next
            && go next rest
      in
      go 0 ms)

let suite =
  [
    Alcotest.test_case "default rule set clean" `Slow test_default_clean;
    Alcotest.test_case "default strata topology" `Slow
      test_default_strata_shape;
    Alcotest.test_case "unbounded cycle caught" `Quick test_unbounded_cycle;
    Alcotest.test_case "bounded cycles not flagged" `Slow
      test_bounded_cycles_not_flagged;
    Alcotest.test_case "lying produces caught" `Quick test_lying_produces;
    Alcotest.test_case "shadowed rule caught" `Quick test_shadowed_rule;
    Alcotest.test_case "promise inversion caught" `Quick
      test_promise_inversion;
    Alcotest.test_case "defaulted mask caught" `Quick test_mask_defaulted;
    Alcotest.test_case "edge shapes round-trip inference" `Quick
      test_edge_shape_roundtrip;
    Alcotest.test_case "static growth bound" `Slow test_static_bound_monotone;
    Alcotest.test_case "strata plans byte-identical" `Slow
      test_strata_plan_identity;
    QCheck_alcotest.to_alcotest prop_union_inter_laws;
    QCheck_alcotest.to_alcotest prop_subset_diff_laws;
    QCheck_alcotest.to_alcotest prop_mask_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_union_fixpoint_monotone;
  ]

(* Tests for the GPOS substrate: PRNG determinism and the job scheduler
   (dependencies, re-entrancy, goal queues, parallel execution, failures). *)

let test_prng_deterministic () =
  let a = Gpos.Prng.create 42 and b = Gpos.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Gpos.Prng.int a 1000) (Gpos.Prng.int b 1000)
  done

let test_prng_bounds () =
  let rng = Gpos.Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Gpos.Prng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13);
    let f = Gpos.Prng.float rng in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_prng_split_independent () =
  let rng = Gpos.Prng.create 1 in
  let a = Gpos.Prng.split rng "a" and b = Gpos.Prng.split rng "b" in
  let va = List.init 10 (fun _ -> Gpos.Prng.int a 1000) in
  let vb = List.init 10 (fun _ -> Gpos.Prng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (va <> vb)

let test_prng_zipf_skew () =
  let rng = Gpos.Prng.create 5 in
  let counts = Array.make 10 0 in
  for _ = 1 to 5000 do
    let v = Gpos.Prng.zipf rng ~n:10 ~theta:1.0 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(5))

let test_scheduler_sequential () =
  let sched = Gpos.Scheduler.create () in
  let log = ref [] in
  let leaf name () =
    log := name :: !log;
    Gpos.Scheduler.Finished
  in
  let root =
    let stage = ref 0 in
    fun () ->
      incr stage;
      match !stage with
      | 1 ->
          Gpos.Scheduler.Wait_for
            [
              { Gpos.Scheduler.run = leaf "a"; goal = None };
              { Gpos.Scheduler.run = leaf "b"; goal = None };
            ]
      | _ ->
          log := "root" :: !log;
          Gpos.Scheduler.Finished
  in
  Gpos.Scheduler.run sched root;
  (* parent resumes only after both children *)
  Alcotest.(check (list string)) "order" [ "root"; "b"; "a" ] !log

let test_scheduler_deep_dependencies () =
  let sched = Gpos.Scheduler.create () in
  let counter = ref 0 in
  (* chain of depth 50: each job spawns one child then increments *)
  let rec make depth =
    let stage = ref 0 in
    fun () ->
      incr stage;
      if !stage = 1 && depth > 0 then
        Gpos.Scheduler.Wait_for
          [ { Gpos.Scheduler.run = make (depth - 1); goal = None } ]
      else begin
        incr counter;
        Gpos.Scheduler.Finished
      end
  in
  Gpos.Scheduler.run sched (make 50);
  Alcotest.(check int) "all ran" 51 !counter

let test_scheduler_goal_dedup () =
  let sched = Gpos.Scheduler.create () in
  let expensive_runs = ref 0 in
  let expensive () =
    incr expensive_runs;
    Gpos.Scheduler.Finished
  in
  let root =
    let stage = ref 0 in
    fun () ->
      incr stage;
      if !stage = 1 then
        Gpos.Scheduler.Wait_for
          (List.init 10 (fun _ ->
               { Gpos.Scheduler.run = expensive; goal = Some "shared-goal" }))
      else Gpos.Scheduler.Finished
  in
  Gpos.Scheduler.run sched root;
  Alcotest.(check int) "goal ran once" 1 !expensive_runs;
  let _, _, goal_hits = Gpos.Scheduler.stats sched in
  Alcotest.(check int) "nine absorbed" 9 goal_hits

let test_scheduler_exception () =
  let sched = Gpos.Scheduler.create () in
  let boom () = failwith "boom" in
  let root =
    let stage = ref 0 in
    fun () ->
      incr stage;
      if !stage = 1 then
        Gpos.Scheduler.Wait_for [ { Gpos.Scheduler.run = boom; goal = None } ]
      else Gpos.Scheduler.Finished
  in
  Alcotest.check_raises "propagates" (Failure "boom") (fun () ->
      Gpos.Scheduler.run sched root);
  (* the scheduler is reusable after a failure *)
  let ok = ref false in
  Gpos.Scheduler.run sched (fun () ->
      ok := true;
      Gpos.Scheduler.Finished);
  Alcotest.(check bool) "reusable" true !ok

let test_scheduler_parallel () =
  let sched = Gpos.Scheduler.create ~workers:4 () in
  let total = 200 in
  let counter = Atomic.make 0 in
  let work () =
    Atomic.incr counter;
    Gpos.Scheduler.Finished
  in
  let root =
    let stage = ref 0 in
    fun () ->
      incr stage;
      if !stage = 1 then
        Gpos.Scheduler.Wait_for
          (List.init total (fun _ -> { Gpos.Scheduler.run = work; goal = None }))
      else Gpos.Scheduler.Finished
  in
  Gpos.Scheduler.run sched root;
  Alcotest.(check int) "all parallel jobs ran" total (Atomic.get counter)

(* --- goal-queue edge cases (workers = 1) --- *)

let test_goal_already_finished () =
  (* a child spawned with a goal that already finished earlier in the run is
     absorbed immediately instead of re-running the work *)
  let sched = Gpos.Scheduler.create () in
  let runs = ref 0 in
  let work () =
    incr runs;
    Gpos.Scheduler.Finished
  in
  let root =
    let stage = ref 0 in
    fun () ->
      incr stage;
      match !stage with
      | 1 | 2 ->
          Gpos.Scheduler.Wait_for
            [ { Gpos.Scheduler.run = work; goal = Some "g" } ]
      | _ -> Gpos.Scheduler.Finished
  in
  Gpos.Scheduler.run sched root;
  Alcotest.(check int) "work ran once" 1 !runs;
  let _, _, goal_hits = Gpos.Scheduler.stats sched in
  Alcotest.(check int) "second child absorbed" 1 goal_hits

let test_nested_same_goal () =
  (* a job holding a goal spawns a child with the same goal: parking the
     parent on its own goal queue would deadlock (the goal finishes only
     after the parent's subtree does), so the child must be absorbed and
     resolved against the ancestor instead *)
  let sched = Gpos.Scheduler.create () in
  let inner_runs = ref 0 in
  let outer =
    let stage = ref 0 in
    fun () ->
      incr stage;
      if !stage = 1 then
        Gpos.Scheduler.Wait_for
          [
            {
              Gpos.Scheduler.run =
                (fun () ->
                  incr inner_runs;
                  Gpos.Scheduler.Finished);
              goal = Some "g";
            };
          ]
      else Gpos.Scheduler.Finished
  in
  let root =
    let stage = ref 0 in
    fun () ->
      incr stage;
      if !stage = 1 then
        Gpos.Scheduler.Wait_for
          [ { Gpos.Scheduler.run = outer; goal = Some "g" } ]
      else Gpos.Scheduler.Finished
  in
  Gpos.Scheduler.run sched root;
  (* termination IS the test; the nested child is covered by the ancestor *)
  Alcotest.(check int) "inner absorbed into ancestor goal" 0 !inner_runs

let test_wait_for_empty_reruns () =
  (* Wait_for [] means "re-run me": the job must be re-enqueued, and the
     run must terminate once it finally finishes *)
  let sched = Gpos.Scheduler.create () in
  let n = ref 0 in
  let job () =
    incr n;
    if !n < 5 then Gpos.Scheduler.Wait_for [] else Gpos.Scheduler.Finished
  in
  Gpos.Scheduler.run sched job;
  Alcotest.(check int) "re-ran until finished" 5 !n

let test_failure_clears_goal_table () =
  (* a failing run abandons a parent parked on a goal queue; the goal table
     must be cleared so a later run reusing the same goal key cannot be
     absorbed into the dead entry and wedge forever *)
  let sched = Gpos.Scheduler.create () in
  let holder =
    let stage = ref 0 in
    fun () ->
      incr stage;
      if !stage = 1 then
        Gpos.Scheduler.Wait_for
          [ { Gpos.Scheduler.run = (fun () -> failwith "boom"); goal = None } ]
      else Gpos.Scheduler.Finished
  in
  let parker =
    let stage = ref 0 in
    fun () ->
      incr stage;
      if !stage = 1 then
        Gpos.Scheduler.Wait_for
          [
            {
              Gpos.Scheduler.run = (fun () -> Gpos.Scheduler.Finished);
              goal = Some "g";
            };
          ]
      else Gpos.Scheduler.Finished
  in
  let root =
    let stage = ref 0 in
    fun () ->
      incr stage;
      if !stage = 1 then
        Gpos.Scheduler.Wait_for
          [
            { Gpos.Scheduler.run = holder; goal = Some "g" };
            { Gpos.Scheduler.run = parker; goal = None };
          ]
      else Gpos.Scheduler.Finished
  in
  Alcotest.check_raises "propagates" (Failure "boom") (fun () ->
      Gpos.Scheduler.run sched root);
  let ran = ref false in
  let reuse =
    let stage = ref 0 in
    fun () ->
      incr stage;
      if !stage = 1 then
        Gpos.Scheduler.Wait_for
          [
            {
              Gpos.Scheduler.run =
                (fun () ->
                  ran := true;
                  Gpos.Scheduler.Finished);
              goal = Some "g";
            };
          ]
      else Gpos.Scheduler.Finished
  in
  Gpos.Scheduler.run sched reuse;
  Alcotest.(check bool) "goal key usable after failed run" true !ran

let test_fuzz_deterministic () =
  (* same fuzz seed -> same schedule; the fuzzer is reproducible *)
  let order seed =
    let sched = Gpos.Scheduler.create ~fuzz:(Gpos.Prng.create seed) () in
    let log = ref [] in
    let leaf i () =
      log := i :: !log;
      Gpos.Scheduler.Finished
    in
    let root =
      let stage = ref 0 in
      fun () ->
        incr stage;
        if !stage = 1 then
          Gpos.Scheduler.Wait_for
            (List.init 8 (fun i ->
                 { Gpos.Scheduler.run = leaf i; goal = None }))
        else Gpos.Scheduler.Finished
    in
    Gpos.Scheduler.run sched root;
    List.rev !log
  in
  Alcotest.(check (list int)) "seed 7 reproducible" (order 7) (order 7);
  Alcotest.(check (list int)) "seed 8 reproducible" (order 8) (order 8)

let test_run_root () =
  let sched = Gpos.Scheduler.create () in
  let result = Gpos.Scheduler.run_root sched (fun store -> store 42) in
  Alcotest.(check (option int)) "result" (Some 42) result

let test_clock () =
  let _, ms = Gpos.Clock.time (fun () -> Sys.opaque_identity (List.init 100 Fun.id)) in
  Alcotest.(check bool) "non-negative" true (ms >= 0.0)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng zipf skew" `Quick test_prng_zipf_skew;
    Alcotest.test_case "scheduler order" `Quick test_scheduler_sequential;
    Alcotest.test_case "scheduler deep chain" `Quick test_scheduler_deep_dependencies;
    Alcotest.test_case "scheduler goal dedup" `Quick test_scheduler_goal_dedup;
    Alcotest.test_case "scheduler exception" `Quick test_scheduler_exception;
    Alcotest.test_case "scheduler parallel" `Quick test_scheduler_parallel;
    Alcotest.test_case "goal already finished" `Quick test_goal_already_finished;
    Alcotest.test_case "nested same goal" `Quick test_nested_same_goal;
    Alcotest.test_case "Wait_for [] re-runs" `Quick test_wait_for_empty_reruns;
    Alcotest.test_case "failure clears goal table" `Quick
      test_failure_clears_goal_table;
    Alcotest.test_case "fuzz deterministic" `Quick test_fuzz_deterministic;
    Alcotest.test_case "run_root" `Quick test_run_root;
    Alcotest.test_case "clock" `Quick test_clock;
  ]

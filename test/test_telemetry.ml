(* lib/telemetry: histogram algebra (qcheck), counter saturation, the
   Prometheus/JSON expositions (golden-filed under the deterministic
   clock), the linter, the snapshot-diff regression sentinel, and the
   end-to-end flight recorder (slow-query trigger -> ring entry + AMPERe
   dump embedding the obs trace). *)

open Fixtures

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

module M = Telemetry.Metrics
module E = Telemetry.Expose
module R = Telemetry.Recorder

(* --- histogram algebra (property-based) --- *)

(* random snapshots with a handful of occupied buckets *)
let hsnap_gen : M.hsnap QCheck.Gen.t =
  QCheck.Gen.(
    list_size (int_range 0 8) (pair (int_range 0 (M.nbuckets - 1)) (int_range 1 50))
    >|= fun cells ->
    let buckets = Array.make M.nbuckets 0 in
    let count = ref 0 and sum = ref 0.0 in
    List.iter
      (fun (i, c) ->
        buckets.(i) <- buckets.(i) + c;
        count := !count + c;
        sum := !sum +. (float_of_int c *. M.bucket_value i))
      cells;
    { M.hs_count = !count; hs_sum = !sum; hs_buckets = buckets })

let hsnap_arb =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "hsnap{count=%d}" s.M.hs_count)
    hsnap_gen

let hsnap_equal a b =
  a.M.hs_count = b.M.hs_count
  && Float.abs (a.M.hs_sum -. b.M.hs_sum) <= 1e-6 *. (1.0 +. Float.abs a.M.hs_sum)
  && a.M.hs_buckets = b.M.hs_buckets

let prop_merge_commutative =
  QCheck.Test.make ~count:200 ~name:"histogram merge is commutative"
    (QCheck.pair hsnap_arb hsnap_arb)
    (fun (a, b) -> hsnap_equal (M.merge a b) (M.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~count:200 ~name:"histogram merge is associative"
    (QCheck.triple hsnap_arb hsnap_arb hsnap_arb)
    (fun (a, b, c) ->
      hsnap_equal (M.merge (M.merge a b) c) (M.merge a (M.merge b c)))

let prop_quantile_monotone =
  QCheck.Test.make ~count:200 ~name:"quantile is monotone in q"
    (QCheck.pair hsnap_arb (QCheck.pair (QCheck.float_range 0.0 1.0) (QCheck.float_range 0.0 1.0)))
    (fun (s, (q1, q2)) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      M.quantile s lo <= M.quantile s hi)

(* The estimate for the q-quantile must land within one bucket width
   (factor 2^(1/8)) of the exact empirical quantile, for observations
   inside the bucketed range. *)
let prop_quantile_rank_error =
  QCheck.Test.make ~count:100 ~name:"quantile rank-error bound"
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 1 200)
          (QCheck.float_range 0.001 1000.0))
       (QCheck.float_range 0.01 1.0))
    (fun (values, q) ->
      let h = M.histogram (M.create ()) ~help:"t" "t" in
      List.iter (M.observe h) values;
      let est = M.quantile (M.hsnap h) q in
      let sorted = List.sort compare values in
      let n = List.length sorted in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let exact = List.nth sorted (rank - 1) in
      let gamma = Float.pow 2.0 (1.0 /. 8.0) in
      est >= exact /. gamma && est <= exact *. gamma)

let test_counter_saturation () =
  let c = M.counter (M.create ()) ~help:"t" "t" in
  M.add c (max_int - 1);
  M.inc c;
  Alcotest.(check int) "pinned at max_int" max_int (M.counter_value c);
  M.inc c;
  Alcotest.(check int) "no wraparound" max_int (M.counter_value c);
  M.add c max_int;
  Alcotest.(check int) "saturating add" max_int (M.counter_value c);
  M.add c (-5);
  Alcotest.(check int) "negative delta ignored" max_int (M.counter_value c)

let test_observe_edge_cases () =
  let h = M.histogram (M.create ()) ~help:"t" "t" in
  M.observe h Float.nan;
  Alcotest.(check int) "NaN dropped" 0 (M.hsnap h).M.hs_count;
  M.observe h (-3.0);
  let s = M.hsnap h in
  Alcotest.(check int) "negative clamps to bucket 0" 1 s.M.hs_buckets.(0);
  Alcotest.(check (float 1e-9)) "negative clamps sum to 0" 0.0 s.M.hs_sum

(* --- registry semantics --- *)

let test_registry () =
  let reg = M.create () in
  let c1 = M.counter reg ~help:"a counter" "c" in
  let c2 = M.counter reg ~help:"a counter" "c" in
  M.inc c1;
  Alcotest.(check int) "idempotent registration" 1 (M.counter_value c2);
  (* same name, different labels: a distinct series *)
  let c3 = M.counter reg ~labels:[ ("k", "v") ] ~help:"a counter" "c" in
  Alcotest.(check int) "labelled series separate" 0 (M.counter_value c3);
  Alcotest.check_raises "kind mismatch raises"
    (Gpos.Gpos_error.Error
       ( Gpos.Gpos_error.Internal,
         "telemetry: c re-registered with a different kind" ))
    (fun () -> ignore (M.gauge reg ~help:"a gauge" "c"));
  M.reset reg;
  Alcotest.(check int) "reset zeroes in place" 0 (M.counter_value c1);
  M.inc c1;
  Alcotest.(check int) "handles survive reset" 1 (M.counter_value c1)

let test_fingerprint () =
  let fp = M.fingerprint in
  Alcotest.(check string)
    "literals and case normalized"
    (fp "SELECT a FROM t WHERE b = 42")
    (fp "select A from T where B = 99");
  Alcotest.(check bool)
    "different shapes differ" false
    (fp "SELECT a FROM t" = fp "SELECT a, b FROM t");
  Alcotest.(check int) "16 hex chars" 16 (String.length (fp "SELECT 1"))

(* --- expositions, golden-filed under the deterministic clock --- *)

(* Each Clock.now call advances the fake clock by 1: the counter/gauge/
   histogram registrations make no clock calls, the snapshot reads once
   (ts=0) and the recorder entry reads once (ts=1 on a second snapshot's
   clock; here the entry is recorded first so e_ts=0 and snap_ts=1). *)
let golden_setup () =
  let reg = M.create () in
  let c = M.counter reg ~help:"Queries optimized." "t_queries_total" in
  M.add c 3;
  let g = M.gauge reg ~help:"Peak heap (MB)." "t_heap_mb" in
  M.set g 12.5;
  let h =
    M.histogram reg ~labels:[ ("phase", "search") ] ~help:"Phase time (ms)."
      "t_phase_ms"
  in
  M.observe h 0.5;
  M.observe h 0.5;
  M.observe h 100.0;
  reg

let golden_json =
  "{\"telemetry\":\"orca\",\"ts\":1,\n\
  \ \"metrics\":[\n\
  \  {\"name\":\"t_heap_mb\",\"labels\":{},\"type\":\"gauge\",\"value\":12.5},\n\
  \  {\"name\":\"t_phase_ms\",\"labels\":{\"phase\":\"search\"},\"type\":\"histogram\",\"count\":3,\"sum\":101,\"p50\":0.49029288,\"p95\":96.7852783,\"p99\":96.7852783,\"buckets\":[[0.512,2],[101.070329,1]]},\n\
  \  {\"name\":\"t_queries_total\",\"labels\":{},\"type\":\"counter\",\"value\":3}\n\
  \ ],\n\
  \ \"flight\":[\n\
  \  {\"seq\":1,\"ts\":0,\"label\":\"q1\",\"fingerprint\":\"deadbeef00000000\",\"ms\":42.5,\"groups\":10,\"gexprs\":40,\"cost\":123.25,\"status\":\"slow\",\"phases\":[[\"search\",40],[\"preprocess\",2]],\"dump\":\"d.xml\"}\n\
  \ ]}\n"

let test_json_golden () =
  Gpos.Clock.with_fake ~start:0.0 ~step:1.0 (fun () ->
      let reg = golden_setup () in
      let rec_ = R.create () in
      let entry =
        R.record ~recorder:rec_ ~label:"q1" ~fingerprint:"deadbeef00000000"
          ~ms:42.5 ~groups:10 ~gexprs:40 ~cost:123.25
          ~phases:[ ("search", 40.0); ("preprocess", 2.0) ]
          ~status:R.Slow ~dump:"d.xml" ()
      in
      ignore entry;
      let json =
        E.to_json ~flight:(R.entries ~recorder:rec_ ()) (M.snapshot reg)
      in
      Alcotest.(check string) "golden JSON snapshot" golden_json json)

let test_prometheus_golden_and_lint () =
  let reg = golden_setup () in
  let prom = E.to_prometheus (M.snapshot reg) in
  Alcotest.(check (list string)) "lint clean" [] (E.lint_prometheus prom);
  List.iter
    (fun affix ->
      Alcotest.(check bool) ("contains " ^ affix) true (contains ~affix prom))
    [
      "# TYPE t_queries_total counter";
      "t_queries_total 3";
      "# TYPE t_heap_mb gauge";
      "t_heap_mb 12.5";
      "# TYPE t_phase_ms histogram";
      "t_phase_ms_bucket{phase=\"search\",le=\"+Inf\"} 3";
      "t_phase_ms_sum{phase=\"search\"} 101";
      "t_phase_ms_count{phase=\"search\"} 3";
    ]

let test_lint_catches_errors () =
  let problems s = E.lint_prometheus s in
  Alcotest.(check bool) "sample without TYPE" true
    (problems "foo_total 3\n" <> []);
  Alcotest.(check bool) "bad metric name" true
    (problems "# TYPE 9bad counter\n9bad 1\n" <> []);
  Alcotest.(check bool) "negative counter" true
    (problems "# TYPE a_total counter\na_total -1\n" <> []);
  Alcotest.(check bool) "duplicate series" true
    (problems "# TYPE a counter\na 1\na 2\n" <> []);
  Alcotest.(check bool) "non-cumulative buckets" true
    (problems
       "# TYPE h histogram\n\
        h_bucket{le=\"1\"} 5\n\
        h_bucket{le=\"2\"} 3\n\
        h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"
    <> []);
  Alcotest.(check bool) "+Inf disagrees with _count" true
    (problems
       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n"
    <> []);
  Alcotest.(check bool) "missing trailing newline" true
    (problems "# TYPE a counter\na 1" <> [])

(* --- the diff sentinel --- *)

let snap_of_registry reg = E.to_json (M.snapshot reg)

let test_diff_sentinel () =
  let mk v =
    let reg = M.create () in
    let c = M.counter reg ~help:"t" "t_total" in
    M.add c v;
    reg
  in
  let parse s =
    match E.parse_snapshot s with
    | Ok p -> p
    | Error m -> Alcotest.fail ("parse: " ^ m)
  in
  (* within the absolute floor of 10: 100 vs 105 passes at tolerance 0.25 *)
  let b = parse (snap_of_registry (mk 100)) in
  let f = parse (snap_of_registry (mk 105)) in
  Alcotest.(check bool) "within tolerance" true (E.diff_ok (E.diff ~baseline:b ~fresh:f ()));
  (* way out: 100 vs 1000 fails *)
  let f2 = parse (snap_of_registry (mk 1000)) in
  let checks = E.diff ~baseline:b ~fresh:f2 () in
  Alcotest.(check bool) "regression detected" false (E.diff_ok checks);
  Alcotest.(check bool) "rendered as FAIL" true
    (contains ~affix:"FAIL t_total" (E.render_diff checks));
  (* a per-key override loosens it *)
  Alcotest.(check bool) "override widens tolerance" true
    (E.diff_ok (E.diff ~overrides:[ ("t_total", 10.0) ] ~baseline:b ~fresh:f2 ()));
  (* metric missing from the fresh snapshot fails *)
  let empty = parse (snap_of_registry (M.create ())) in
  Alcotest.(check bool) "missing metric fails" false
    (E.diff_ok (E.diff ~baseline:b ~fresh:empty ()))

(* --- the recorder ring --- *)

let test_recorder_ring () =
  let r = R.create ~capacity:4 () in
  for i = 1 to 6 do
    ignore
      (R.record ~recorder:r ~label:(Printf.sprintf "q%d" i) ~fingerprint:"f"
         ~ms:(float_of_int i) ~groups:1 ~gexprs:1 ~cost:1.0 ~phases:[]
         ~status:R.Ok ())
  done;
  Alcotest.(check int) "total counts everything" 6 (R.total ~recorder:r ());
  let es = R.entries ~recorder:r () in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length es);
  Alcotest.(check (list string))
    "oldest evicted, oldest-first order" [ "q3"; "q4"; "q5"; "q6" ]
    (List.map (fun e -> e.R.e_label) es);
  Alcotest.(check (list int))
    "seq monotone" [ 3; 4; 5; 6 ]
    (List.map (fun e -> e.R.e_seq) es);
  Alcotest.(check (list (pair string (float 1e-9))))
    "top_phases takes the largest 3"
    [ ("c", 9.0); ("a", 5.0); ("d", 2.0) ]
    (R.top_phases [ ("a", 5.0); ("b", 1.0); ("c", 9.0); ("d", 2.0) ])

(* --- the flight recorder end to end --- *)

let flight_dir =
  lazy
    (let dir = Filename.concat (Filename.get_temp_dir_name ()) "orca-flight-test" in
     if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
     dir)

let test_flight_slow_trigger () =
  let dir = Lazy.force flight_dir in
  R.clear ();
  R.configure ~slow_ms:(Some 0.0) ~dump_dir:(Some dir) ();
  Fun.protect
    ~finally:(fun () -> R.configure ~slow_ms:None ~dump_dir:None ())
    (fun () ->
      let accessor = small_accessor () in
      let sql = "SELECT t1.a, count(*) AS c FROM t1, t2 WHERE t1.a = t2.b GROUP BY t1.a" in
      let query = Sqlfront.Binder.bind_sql accessor sql in
      let report =
        Orca.Flight.optimize
          ~config:(Lazy.force orca_config)
          ~label:"flight-test" ~make_accessor:small_accessor query
      in
      (* every query is over a 0ms threshold: ring entry marked slow *)
      let entry =
        match List.rev (R.entries ()) with
        | e :: _ -> e
        | [] -> Alcotest.fail "no flight entry recorded"
      in
      Alcotest.(check string) "status" "slow" (R.status_string entry.R.e_status);
      Alcotest.(check string) "label" "flight-test" entry.R.e_label;
      Alcotest.(check bool) "phases recorded" true (entry.R.e_phases <> []);
      Alcotest.(check (float 1e-6))
        "cost matches the report" report.Orca.Optimizer.plan.Ir.Expr.pcost
        entry.R.e_cost;
      (* ... and an AMPERe dump was emitted, embedding the obs trace of the
         re-run plus the trigger reason *)
      let dump =
        match entry.R.e_dump with
        | Some d -> d
        | None -> Alcotest.fail "no AMPERe dump path in the flight entry"
      in
      Alcotest.(check bool) "dump file exists" true (Sys.file_exists dump);
      let ic = open_in_bin dump in
      let xml = really_input_string ic (in_channel_length ic) in
      close_in ic;
      List.iter
        (fun affix ->
          Alcotest.(check bool) ("dump contains " ^ affix) true (contains ~affix xml))
        [ "dxl:ObsTrace"; "dxl:Plan"; "flight-reason"; "slow" ];
      (* the dump doubles as a regression case: replay reproduces the plan *)
      let d = Orca.Ampere.load dump in
      match Orca.Ampere.verify ~config:(Lazy.force orca_config) d with
      | Orca.Ampere.Replay_match -> ()
      | Orca.Ampere.Replay_plan_diff m -> Alcotest.fail ("replay diff: " ^ m)
      | Orca.Ampere.Replay_failed m -> Alcotest.fail ("replay failed: " ^ m))

let test_flight_ok_entry () =
  R.clear ();
  (* threshold disabled: the query still lands in the ring, status ok,
     and no dump is attempted *)
  let accessor = small_accessor () in
  let query = Sqlfront.Binder.bind_sql accessor "SELECT t1.a FROM t1" in
  let _report =
    Orca.Flight.optimize
      ~config:(Lazy.force orca_config)
      ~label:"ok-test" ~make_accessor:small_accessor query
  in
  match List.rev (R.entries ()) with
  | e :: _ ->
      Alcotest.(check string) "status" "ok" (R.status_string e.R.e_status);
      Alcotest.(check bool) "no dump" true (e.R.e_dump = None)
  | [] -> Alcotest.fail "no flight entry recorded"

(* --- telemetry must not affect planning --- *)

let test_plan_identity_on_off () =
  let optimize telemetry sql =
    let accessor = small_accessor () in
    let query = Sqlfront.Binder.bind_sql accessor sql in
    let config =
      Orca.Orca_config.with_telemetry (Lazy.force orca_config) telemetry
    in
    (Orca.Optimizer.optimize ~config accessor query).Orca.Optimizer.plan
  in
  List.iter
    (fun sql ->
      let p_on = optimize true sql and p_off = optimize false sql in
      Alcotest.(check string)
        ("plan identical with telemetry off: " ^ sql)
        (Dxl.Dxl_plan.to_string p_on)
        (Dxl.Dxl_plan.to_string p_off))
    [
      "SELECT t1.a FROM t1 WHERE t1.b < 50";
      "SELECT t1.a, count(*) AS c FROM t1, t2 WHERE t1.a = t2.b GROUP BY t1.a \
       ORDER BY c DESC LIMIT 5";
    ]

(* optimizing under the default config populates the standard metrics *)
let test_std_instrumentation () =
  let before = M.counter_value Telemetry.Std.queries in
  let accessor = small_accessor () in
  let query = Sqlfront.Binder.bind_sql accessor "SELECT t1.a FROM t1" in
  let _ = Orca.Optimizer.optimize ~config:(Lazy.force orca_config) accessor query in
  Alcotest.(check int)
    "orca_queries_total incremented" (before + 1)
    (M.counter_value Telemetry.Std.queries);
  let snap = M.snapshot M.default in
  let prom = E.to_prometheus snap in
  Alcotest.(check (list string))
    "default registry exposition lints clean" [] (E.lint_prometheus prom);
  Alcotest.(check bool) "memo metrics populated" true
    (contains ~affix:"orca_memo_groups_total" prom)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_merge_associative;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
    QCheck_alcotest.to_alcotest prop_quantile_rank_error;
    Alcotest.test_case "counter saturation" `Quick test_counter_saturation;
    Alcotest.test_case "observe edge cases" `Quick test_observe_edge_cases;
    Alcotest.test_case "registry semantics" `Quick test_registry;
    Alcotest.test_case "query fingerprint" `Quick test_fingerprint;
    Alcotest.test_case "JSON snapshot golden" `Quick test_json_golden;
    Alcotest.test_case "prometheus exposition + lint" `Quick
      test_prometheus_golden_and_lint;
    Alcotest.test_case "lint catches seeded errors" `Quick
      test_lint_catches_errors;
    Alcotest.test_case "diff sentinel" `Quick test_diff_sentinel;
    Alcotest.test_case "recorder ring" `Quick test_recorder_ring;
    Alcotest.test_case "flight recorder slow trigger" `Quick
      test_flight_slow_trigger;
    Alcotest.test_case "flight recorder ok entry" `Quick test_flight_ok_entry;
    Alcotest.test_case "plan identity telemetry on/off" `Quick
      test_plan_identity_on_off;
    Alcotest.test_case "std instrumentation" `Quick test_std_instrumentation;
  ]

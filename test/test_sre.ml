(* Tests for lib/sre: trace-id generation, the structured event log (ring
   bounds, level filtering, zero-cost-when-disabled, golden JSON under the
   fake clock, file sink), the rolling-window SLO monitor (hand-computed
   burn rates, window rotation and gap reset) and the readiness policy. *)

module Tr = Sre.Trace
module Ev = Sre.Events
module Slo = Sre.Slo
module H = Sre.Health

(* --- tracing --- *)

let test_trace_ids () =
  let g = Tr.make_gen () in
  let api = Tr.api_session g in
  Alcotest.(check int) "api session is sid 0" 0 api.Tr.sid;
  let s1 = Tr.open_session g and s2 = Tr.open_session g in
  Alcotest.(check int) "first session is sid 1" 1 s1.Tr.sid;
  Alcotest.(check int) "second session is sid 2" 2 s2.Tr.sid;
  Alcotest.(check string) "render" "s3-r17" (Tr.render ~sid:3 ~rid:17);
  Alcotest.(check string) "first request" "s1-r1" (Tr.next s1);
  Alcotest.(check string) "rids are per-session" "s2-r1" (Tr.next s2);
  Alcotest.(check string) "rids advance" "s1-r2" (Tr.next s1);
  Alcotest.(check string) "api traces" "s0-r1" (Tr.next api)

let test_trace_ids_concurrent () =
  let g = Tr.make_gen () in
  let s = Tr.api_session g in
  let n = 4 and per = 200 in
  let out = Array.make (n * per) "" in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            for j = 0 to per - 1 do
              out.((i * per) + j) <- Tr.next s
            done)
          ())
  in
  List.iter Thread.join threads;
  let tbl = Hashtbl.create (n * per) in
  Array.iter (fun id -> Hashtbl.replace tbl id ()) out;
  Alcotest.(check int)
    "every concurrently allocated trace id is unique" (n * per)
    (Hashtbl.length tbl)

(* --- the event log --- *)

let test_events_ring () =
  let t = Ev.create ~capacity:4 () in
  for i = 1 to 10 do
    Ev.emit t ~kind:"tick" [ ("i", Ev.I i) ]
  done;
  Alcotest.(check int) "total counts every emission" 10 (Ev.total t);
  let es = Ev.entries t in
  Alcotest.(check int) "ring retains capacity entries" 4 (List.length es);
  Alcotest.(check (list int))
    "oldest first, newest retained" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Ev.ev_seq) es)

let test_events_levels () =
  let t = Ev.create ~level:Ev.Warn () in
  Alcotest.(check bool) "debug is off" false (Ev.on t Ev.Debug);
  Alcotest.(check bool) "info is off" false (Ev.on t Ev.Info);
  Alcotest.(check bool) "warn is on" true (Ev.on t Ev.Warn);
  Alcotest.(check bool) "error is on" true (Ev.on t Ev.Error);
  Ev.emit t ~level:Ev.Debug ~kind:"drop" [];
  Ev.emit t ~level:Ev.Info ~kind:"drop" [];
  Ev.emit t ~level:Ev.Error ~kind:"keep" [];
  Alcotest.(check int) "below-threshold events dropped" 1 (Ev.total t);
  match Ev.entries t with
  | [ e ] -> Alcotest.(check string) "kept the error" "keep" e.Ev.ev_kind
  | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es)

let test_events_disabled () =
  let t = Ev.create ~enabled:false () in
  Alcotest.(check bool) "disabled log is off at every level" false
    (Ev.on t Ev.Error);
  for _ = 1 to 100 do
    Ev.emit t ~kind:"noise" []
  done;
  Alcotest.(check int) "disabled emit records nothing" 0 (Ev.total t);
  Alcotest.(check (list string)) "no entries" []
    (List.map (fun e -> e.Ev.ev_kind) (Ev.entries t))

let test_events_golden_json () =
  Gpos.Clock.with_fake ~start:5.0 ~step:0.0 (fun () ->
      let t = Ev.create () in
      Ev.emit t ~trace:"s1-r1" ~kind:"unit-test"
        [
          ("s", Ev.S "x\"y");
          ("i", Ev.I 42);
          ("f", Ev.F 1.5);
          ("b", Ev.B true);
        ];
      Ev.emit t ~level:Ev.Warn ~kind:"plain" [];
      match Ev.entries t with
      | [ a; b ] ->
          Alcotest.(check string) "full entry"
            {|{"seq":1,"ts":5.000000,"level":"info","event":"unit-test","trace":"s1-r1","s":"x\"y","i":42,"f":1.5,"b":true}|}
            (Ev.entry_to_json a);
          Alcotest.(check string) "traceless entry"
            {|{"seq":2,"ts":5.000000,"level":"warn","event":"plain"}|}
            (Ev.entry_to_json b);
          Alcotest.(check string) "json lines join them"
            (Ev.entry_to_json a ^ "\n" ^ Ev.entry_to_json b ^ "\n")
            (Ev.to_json_lines t)
      | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es))

let test_events_sink () =
  let path = Filename.temp_file "orca-sre-events" ".jsonl" in
  let t = Ev.create () in
  let oc = open_out path in
  Ev.set_sink t (Some oc);
  Ev.emit t ~kind:"one" [ ("n", Ev.I 1) ];
  Ev.emit t ~kind:"two" [ ("n", Ev.I 2) ];
  Ev.set_sink t None;
  close_out oc;
  Ev.emit t ~kind:"after-detach" [];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  match List.rev !lines with
  | [ l1; l2 ] ->
      let has sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "first event mirrored" true
        (has {|"event":"one"|} l1);
      Alcotest.(check bool) "second event mirrored" true
        (has {|"event":"two"|} l2);
      Alcotest.(check bool) "sink lines are whole JSON objects" true
        (String.length l1 > 0
        && l1.[0] = '{'
        && l1.[String.length l1 - 1] = '}')
  | ls ->
      Alcotest.failf "expected 2 sink lines (detach honored), got %d"
        (List.length ls)

(* --- the SLO monitor --- *)

let close_to = Alcotest.float 1e-9

let test_slo_report () =
  Gpos.Clock.with_fake ~start:0.0 ~step:0.0 (fun () ->
      let t = Slo.create () in
      (* 100 requests: 95 fast+ok, 3 slow+ok, 2 fast+failed *)
      for _ = 1 to 95 do
        Slo.observe t ~ms:10.0 ~ok:true
      done;
      for _ = 1 to 3 do
        Slo.observe t ~ms:500.0 ~ok:true
      done;
      for _ = 1 to 2 do
        Slo.observe t ~ms:10.0 ~ok:false
      done;
      let r = Slo.report t in
      Alcotest.(check int) "requests" 100 r.Slo.r_requests;
      Alcotest.(check int) "errors" 2 r.Slo.r_errors;
      Alcotest.(check int) "good excludes slow and failed" 95 r.Slo.r_good;
      Alcotest.check close_to "availability" 0.98 r.Slo.r_availability;
      Alcotest.check close_to "attainment" 0.95 r.Slo.r_attainment;
      (* bad 5% against a 1% budget; bad 2% against a 0.1% budget *)
      Alcotest.check (Alcotest.float 1e-6) "latency burn" 5.0
        r.Slo.r_latency_burn;
      Alcotest.check (Alcotest.float 1e-6) "availability burn" 20.0
        r.Slo.r_availability_burn;
      Alcotest.(check bool) "latency objective violated" false r.Slo.r_latency_ok;
      Alcotest.(check bool) "unhealthy" false (Slo.healthy r);
      Alcotest.(check bool) "p99 reflects the slow tail" true
        (r.Slo.r_p99_ms > 100.0 && r.Slo.r_p50_ms < 100.0))

let test_slo_empty_window () =
  Gpos.Clock.with_fake (fun () ->
      let r = Slo.report (Slo.create ()) in
      Alcotest.check close_to "availability of silence" 1.0 r.Slo.r_availability;
      Alcotest.check close_to "attainment of silence" 1.0 r.Slo.r_attainment;
      Alcotest.check close_to "no burn" 0.0 r.Slo.r_latency_burn;
      Alcotest.(check bool) "healthy" true (Slo.healthy r))

let tight_objectives =
  {
    Slo.slo_window_s = 2.0;
    slo_intervals = 2;
    slo_latency_ms = 100.0;
    slo_latency_target = 0.99;
    slo_availability_target = 0.999;
  }

let test_slo_rotation () =
  (* 1 s intervals, 2-interval window; the fake clock advances 1 s per
     [Clock.now] call, so every call lands in a fresh interval *)
  Gpos.Clock.with_fake ~start:0.0 ~step:1.0 (fun () ->
      let t = Slo.create ~objectives:tight_objectives () in
      Slo.observe t ~ms:1.0 ~ok:true;
      (* now=1: interval rolls *)
      Slo.observe t ~ms:1.0 ~ok:true;
      (* now=2: rolls again, overwriting the first interval's slot *)
      let r = Slo.report t in
      (* now=3: the report's own rotation ages the first observation out *)
      Alcotest.(check int) "window forgot the aged-out interval" 1
        r.Slo.r_requests)

let test_slo_gap_reset () =
  Gpos.Clock.with_fake ~start:0.0 ~step:10.0 (fun () ->
      let t = Slo.create ~objectives:tight_objectives () in
      Slo.observe t ~ms:1.0 ~ok:true;
      (* the next clock reading is 10 s later: a gap past the whole window
         resets the ring in one step *)
      let r = Slo.report t in
      Alcotest.(check int) "everything aged out across the gap" 0
        r.Slo.r_requests)

let test_slo_json_single_line () =
  Gpos.Clock.with_fake (fun () ->
      let t = Slo.create () in
      Slo.observe t ~ms:1.0 ~ok:true;
      let s = Slo.to_json (Slo.report t) in
      Alcotest.(check bool) "single-line object" true
        (String.length s > 2
        && s.[0] = '{'
        && s.[String.length s - 1] = '}'
        && not (String.contains s '\n'));
      let has sub =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      List.iter
        (fun f -> Alcotest.(check bool) f true (has ("\"" ^ f ^ "\":")))
        [
          "window_s";
          "latency_slo_ms";
          "requests";
          "availability";
          "attainment";
          "p99_ms";
          "latency_burn";
          "availability_burn";
          "latency_ok";
        ])

(* --- readiness --- *)

let base_input =
  {
    H.h_uptime_s = 12.0;
    h_sessions_open = 1;
    h_sessions_total = 3;
    h_requests = 100;
    h_errors = 1;
    h_snapshot_age_s = 5.0;
    h_catalog_version = 0;
    h_stats_version = 2;
    h_cache_entries = 10;
    h_cache_capacity = 256;
    h_slo = None;
  }

let check_of v name =
  match List.find_opt (fun c -> c.H.c_name = name) v.H.checks with
  | Some c -> c
  | None -> Alcotest.failf "no %s check in the verdict" name

let test_health_ready () =
  let v = H.evaluate base_input in
  Alcotest.(check bool) "ready" true v.H.ready;
  Alcotest.(check bool) "error-rate passes" true
    (check_of v "error-rate").H.c_ok;
  Alcotest.(check bool) "occupancy passes" true
    (check_of v "cache-occupancy").H.c_ok;
  (* an idle server (no requests yet) is ready, not 0/0-degraded *)
  let idle = H.evaluate { base_input with H.h_requests = 0; h_errors = 0 } in
  Alcotest.(check bool) "idle server is ready" true idle.H.ready

let test_health_degraded () =
  let errs = H.evaluate { base_input with H.h_errors = 20 } in
  Alcotest.(check bool) "20% errors degrade" false errs.H.ready;
  Alcotest.(check bool) "the error-rate check names the failure" false
    (check_of errs "error-rate").H.c_ok;
  let full = H.evaluate { base_input with H.h_cache_entries = 250 } in
  Alcotest.(check bool) "a near-full cache degrades" false full.H.ready;
  let tighter =
    H.evaluate ~max_error_rate:0.005 { base_input with H.h_errors = 1 }
  in
  Alcotest.(check bool) "thresholds are tunable" false tighter.H.ready

let test_health_slo_checks () =
  Gpos.Clock.with_fake (fun () ->
      let slo = Slo.create () in
      for _ = 1 to 10 do
        Slo.observe slo ~ms:1.0 ~ok:false
      done;
      let v =
        H.evaluate { base_input with H.h_slo = Some (Slo.report slo) }
      in
      Alcotest.(check bool) "violated SLO degrades readiness" false v.H.ready;
      Alcotest.(check bool) "slo-availability check fails" false
        (check_of v "slo-availability").H.c_ok;
      let json = H.to_json base_input (H.evaluate base_input) in
      Alcotest.(check bool) "health JSON is one line" true
        (not (String.contains json '\n') && json.[0] = '{');
      let has sub =
        let n = String.length sub and m = String.length json in
        let rec go i =
          i + n <= m && (String.sub json i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "status rendered" true (has {|"status":"ready"|});
      Alcotest.(check bool) "checks array rendered" true (has {|"checks":[|}))

let suite =
  [
    Alcotest.test_case "trace ids: sessions and requests" `Quick test_trace_ids;
    Alcotest.test_case "trace ids: unique under contention" `Quick
      test_trace_ids_concurrent;
    Alcotest.test_case "event ring: bounded, ordered, counted" `Quick
      test_events_ring;
    Alcotest.test_case "event levels filter" `Quick test_events_levels;
    Alcotest.test_case "disabled event log records nothing" `Quick
      test_events_disabled;
    Alcotest.test_case "event JSON is stable under the fake clock" `Quick
      test_events_golden_json;
    Alcotest.test_case "event sink mirrors and detaches" `Quick
      test_events_sink;
    Alcotest.test_case "slo report: hand-computed burn rates" `Quick
      test_slo_report;
    Alcotest.test_case "slo report: empty window is healthy" `Quick
      test_slo_empty_window;
    Alcotest.test_case "slo window rotation forgets old intervals" `Quick
      test_slo_rotation;
    Alcotest.test_case "slo clock gap resets the window" `Quick
      test_slo_gap_reset;
    Alcotest.test_case "slo JSON is one line with every field" `Quick
      test_slo_json_single_line;
    Alcotest.test_case "health: ready on good vitals" `Quick test_health_ready;
    Alcotest.test_case "health: degraded vitals fail their checks" `Quick
      test_health_degraded;
    Alcotest.test_case "health: SLO verdicts and JSON shape" `Quick
      test_health_slo_checks;
  ]

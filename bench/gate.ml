(* Benchmark regression gate for the committed baselines (CI `perf-gate` and
   `accuracy-gate` jobs).

   Default mode compares a freshly produced opt-speed JSON report against the
   committed baseline (BENCH_opt.json) and exits nonzero when a metric
   regresses. With --accuracy it instead compares per-operator-class Q-error
   reports (BENCH_accuracy.json, from `orca_cli accuracy --suite --json`);
   with --serve it compares the optimizer-service reports of `bench serve`
   (BENCH_serve.json): deterministic request/cache counters both ways,
   hit_rate and qps from below, latency quantiles from above.

   Two metric classes:
   - search-shape counters (memo sizes, rule firings, cache hit counts):
     deterministic per code version, gated in BOTH directions with a
     per-metric tolerance — an unexplained swing means the search changed
     and the baseline must be regenerated deliberately;
   - speedup_geomean: timing-derived, gated from below only (running
     faster than the baseline is never a regression). Raw wall-times
     (on_ms_total/off_ms_total) are reported but never gated: they measure
     the CI machine, not the code.
   - p50_ms/p95_ms/p99_ms: on-config latency quantiles from the telemetry
     histogram, gated from above only with their own --q-tolerance
     (default 1.0, i.e. 2x; CI passes a larger value since quantiles mix
     machine speed with search shape). Missing quantile fields in either
     report are fatal: regenerate the baseline with the current bench.

   identity_violations must be 0 in the fresh report, full stop.

   A metric's tolerance can be overridden per key with repeatable
   --override NAME=TOL arguments (e.g. --override misses=0.5), taking
   precedence over --tolerance for that metric in every mode. Missing
   fields are always fatal: a baseline lacking a gated field predates the
   current bench and must be regenerated deliberately.

   The parser below covers exactly the JSON subset bench/main.ml emits; no
   external dependencies. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some (('"' | '\\' | '/') as c) -> Buffer.add_char buf c; advance (); loop ()
          | Some 'u' ->
              (* enough for our reports: keep the escape verbatim *)
              Buffer.add_string buf "\\u"; advance (); loop ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number '%s'" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let num_field obj name =
  match member name obj with
  | Some (Num f) -> f
  | _ -> failwith (Printf.sprintf "missing numeric field %S in summary" name)

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match member "summary" (parse_json s) with
  | Some summary -> summary
  | None -> failwith (Printf.sprintf "%s: no \"summary\" object" path)

(* Counters gated both ways: a swing beyond tolerance in either direction
   means the search shape changed and the committed baseline is stale. *)
let shape_metrics =
  [
    "queries";
    "groups";
    "gexprs";
    "rule_fired";
    "rule_prefiltered";
    "base_reuses";
    "winner_skips";
    "ops_interned";
    "intern_hits";
  ]

(* --- the serve gate (--serve) ---

   `bench serve` runs a fixed-seed request mix, so every request/cache
   counter is deterministic per code version: gated in both directions like
   the opt-speed shape metrics. hit_rate and qps must not drop (from below;
   qps with the generous --q-tolerance since it measures the machine);
   p50/p95/p99 must not blow up (from above, --q-tolerance). A nonzero
   identity_violations — a cache hit that was not byte-identical to a cold
   optimization of the same request — is an unconditional failure. *)

let serve_shape_metrics =
  [
    "requests";
    "shapes";
    "errors";
    "hits";
    "rebinds";
    "misses";
    "evictions";
    "collisions";
    "identity_checks";
  ]

let serve_gate ~check ~tol ~q_tolerance baseline fresh =
  let iv = num_field fresh "identity_violations" in
  check "identity_violations"
    ~base:(num_field baseline "identity_violations")
    ~got:iv ~ok:(iv = 0.0) "(must be 0)";
  List.iter
    (fun name ->
      let base = num_field baseline name and got = num_field fresh name in
      let t = tol name in
      let lo = base *. (1.0 -. t) and hi = base *. (1.0 +. t) in
      check name ~base ~got
        ~ok:(got >= lo && got <= hi)
        (Printf.sprintf "(allowed %.6g..%.6g)" lo hi))
    serve_shape_metrics;
  let base_hr = num_field baseline "hit_rate"
  and got_hr = num_field fresh "hit_rate" in
  let floor_hr = base_hr *. (1.0 -. tol "hit_rate") in
  check "hit_rate" ~base:base_hr ~got:got_hr ~ok:(got_hr >= floor_hr)
    (Printf.sprintf "(must stay >= %.4g; higher is fine)" floor_hr);
  let base_qps = num_field baseline "qps" and got_qps = num_field fresh "qps" in
  let floor_qps = base_qps /. (1.0 +. q_tolerance) in
  check "qps" ~base:base_qps ~got:got_qps ~ok:(got_qps >= floor_qps)
    (Printf.sprintf "(must stay >= %.4g; higher is fine)" floor_qps);
  List.iter
    (fun name ->
      let base = num_field baseline name and got = num_field fresh name in
      let ceiling = base *. (1.0 +. q_tolerance) in
      check name ~base ~got ~ok:(got <= ceiling)
        (Printf.sprintf "(must stay <= %.4g; lower is fine)" ceiling))
    [ "p50_ms"; "p95_ms"; "p99_ms" ];
  (* the SLO block (bench serve's rolling-window report): attainment and
     availability from below; burn rates from above, except that a run
     still inside its error budget (burn <= 1.0) never fails — a 0-burn
     baseline would otherwise make any nonzero burn fatal on a slow
     runner. A summary without the block is a stale baseline. *)
  (match (member "slo" baseline, member "slo" fresh) with
  | Some b, Some f ->
      List.iter
        (fun name ->
          let base = num_field b name and got = num_field f name in
          let floor = base *. (1.0 -. q_tolerance) in
          check ("slo." ^ name) ~base ~got ~ok:(got >= floor)
            (Printf.sprintf "(must stay >= %.4g; higher is fine)" floor))
        [ "availability"; "attainment" ];
      List.iter
        (fun name ->
          let base = num_field b name and got = num_field f name in
          let ceiling = Float.max (base *. (1.0 +. q_tolerance)) 1.0 in
          check ("slo." ^ name) ~base ~got ~ok:(got <= ceiling)
            (Printf.sprintf "(must stay <= %.4g; within budget is fine)"
               ceiling))
        [ "latency_burn"; "availability_burn" ]
  | None, _ ->
      failwith
        "baseline summary has no \"slo\" block: regenerate BENCH_serve.json"
  | _, None -> failwith "fresh summary has no \"slo\" block");
  Printf.printf
    "(wall times: wall_ms %.1f -> %.1f; informational only)\n"
    (num_field baseline "wall_ms") (num_field fresh "wall_ms")

(* --- the accuracy gate (--accuracy) ---

   Classes are matched by name between the baseline and the fresh report.
   The geomean Q-error is gated from above only — estimating *better* than
   the baseline is never a regression — while observed node counts are a
   deterministic shape metric gated in both directions. A class present on
   one side only means the plan shapes changed: the baseline is stale and
   must be regenerated deliberately. *)

let str_field obj name =
  match member name obj with
  | Some (Str s) -> s
  | _ -> failwith (Printf.sprintf "missing string field %S in class entry" name)

let acc_classes summary =
  match member "classes" summary with
  | Some (Arr cs) -> List.map (fun c -> (str_field c "class", c)) cs
  | _ -> failwith "accuracy report: no \"classes\" array in summary"

let accuracy_gate ~check ~tolerance baseline fresh =
  let bclasses = acc_classes baseline and fclasses = acc_classes fresh in
  let bq = num_field baseline "queries" and fq = num_field fresh "queries" in
  check "queries" ~base:bq ~got:fq ~ok:(bq = fq) "(must match exactly)";
  List.iter
    (fun (name, bc) ->
      match List.assoc_opt name fclasses with
      | None ->
          check (name ^ ".geomean") ~base:(num_field bc "geomean") ~got:nan
            ~ok:false "(class missing from fresh report)"
      | Some fc ->
          let bg = num_field bc "geomean" and fg = num_field fc "geomean" in
          let ceiling = bg *. (1.0 +. tolerance) in
          check (name ^ ".geomean") ~base:bg ~got:fg ~ok:(fg <= ceiling)
            (Printf.sprintf "(must stay <= %.4g; lower is fine)" ceiling);
          let bn = num_field bc "nodes" and fn = num_field fc "nodes" in
          let lo = bn *. (1.0 -. tolerance)
          and hi = bn *. (1.0 +. tolerance) in
          check (name ^ ".nodes") ~base:bn ~got:fn
            ~ok:(fn >= lo && fn <= hi)
            (Printf.sprintf "(allowed %.6g..%.6g)" lo hi))
    bclasses;
  List.iter
    (fun (name, fc) ->
      if not (List.mem_assoc name bclasses) then
        check (name ^ ".geomean") ~base:nan ~got:(num_field fc "geomean")
          ~ok:false "(class not in baseline; regenerate it)")
    fclasses

let () =
  let baseline_path = ref "" in
  let fresh_path = ref "" in
  let tolerance = ref 0.25 in
  let q_tolerance = ref 1.0 in
  let accuracy = ref false in
  let serve = ref false in
  let overrides = ref [] in
  let usage =
    "gate [--accuracy | --serve] --baseline BENCH_opt.json --fresh fresh.json \
     [--tolerance 0.25] [--q-tolerance 1.0] [--override NAME=TOL]..."
  in
  let rec parse_args = function
    | [] -> ()
    | "--baseline" :: v :: rest -> baseline_path := v; parse_args rest
    | "--fresh" :: v :: rest -> fresh_path := v; parse_args rest
    | "--accuracy" :: rest -> accuracy := true; parse_args rest
    | "--serve" :: rest -> serve := true; parse_args rest
    | "--override" :: v :: rest -> (
        match String.index_opt v '=' with
        | Some i -> (
            let name = String.sub v 0 i in
            let tol = String.sub v (i + 1) (String.length v - i - 1) in
            match float_of_string_opt tol with
            | Some f when f >= 0.0 && name <> "" ->
                overrides := (name, f) :: !overrides;
                parse_args rest
            | _ -> prerr_endline ("gate: bad --override " ^ v); exit 2)
        | None -> prerr_endline ("gate: bad --override " ^ v); exit 2)
    | "--tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f > 0.0 -> tolerance := f; parse_args rest
        | _ -> prerr_endline ("gate: bad --tolerance " ^ v); exit 2)
    | "--q-tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f > 0.0 -> q_tolerance := f; parse_args rest
        | _ -> prerr_endline ("gate: bad --q-tolerance " ^ v); exit 2)
    | a :: _ ->
        prerr_endline ("gate: unknown argument " ^ a);
        prerr_endline usage;
        exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !accuracy && !serve then begin
    prerr_endline "gate: --accuracy and --serve are mutually exclusive";
    exit 2
  end;
  if !baseline_path = "" then
    baseline_path :=
      if !accuracy then "BENCH_accuracy.json"
      else if !serve then "BENCH_serve.json"
      else "BENCH_opt.json";
  if !fresh_path = "" then begin
    prerr_endline usage;
    exit 2
  end;
  let baseline = load !baseline_path and fresh = load !fresh_path in
  let failures = ref 0 in
  let check name ~base ~got ~ok reason =
    let status = if ok then "ok  " else "FAIL" in
    if not ok then incr failures;
    Printf.printf "%s  %-28s baseline=%-12g fresh=%-12g %s\n" status name base
      got reason
  in
  (* per-metric tolerance: --override NAME=TOL wins over --tolerance *)
  let tol name =
    match List.assoc_opt name !overrides with
    | Some t -> t
    | None -> !tolerance
  in
  if !serve then begin
    serve_gate ~check ~tol ~q_tolerance:!q_tolerance baseline fresh;
    if !failures > 0 then begin
      Printf.printf "serve gate: %d metric(s) out of tolerance\n" !failures;
      exit 1
    end
    else Printf.printf "serve gate: all metrics within tolerance\n";
    exit 0
  end;
  if !accuracy then begin
    accuracy_gate ~check ~tolerance:!tolerance baseline fresh;
    if !failures > 0 then begin
      Printf.printf "accuracy gate: %d metric(s) out of tolerance\n" !failures;
      exit 1
    end
    else Printf.printf "accuracy gate: all metrics within tolerance\n";
    exit 0
  end;
  (* identity is not a tolerance question *)
  let iv = num_field fresh "identity_violations" in
  check "identity_violations"
    ~base:(num_field baseline "identity_violations")
    ~got:iv ~ok:(iv = 0.0) "(must be 0)";
  List.iter
    (fun name ->
      let base = num_field baseline name and got = num_field fresh name in
      let t = tol name in
      let lo = base *. (1.0 -. t) and hi = base *. (1.0 +. t) in
      check name ~base ~got
        ~ok:(got >= lo && got <= hi)
        (Printf.sprintf "(allowed %.6g..%.6g)" lo hi))
    shape_metrics;
  let base_g = num_field baseline "speedup_geomean"
  and got_g = num_field fresh "speedup_geomean" in
  let floor_g = base_g *. (1.0 -. tol "speedup_geomean") in
  check "speedup_geomean" ~base:base_g ~got:got_g
    ~ok:(got_g >= floor_g)
    (Printf.sprintf "(must stay >= %.4g; higher is fine)" floor_g);
  (* quantiles: ceiling only — faster is never a regression. num_field
     raises if a report lacks them, which is the point: a baseline without
     quantiles predates the telemetry histogram and must be regenerated. *)
  List.iter
    (fun name ->
      let base = num_field baseline name and got = num_field fresh name in
      let ceiling = base *. (1.0 +. !q_tolerance) in
      check name ~base ~got ~ok:(got <= ceiling)
        (Printf.sprintf "(must stay <= %.4g; lower is fine)" ceiling))
    [ "p50_ms"; "p95_ms"; "p99_ms" ];
  Printf.printf "(wall times: on_ms_total %.1f -> %.1f, off_ms_total %.1f -> %.1f; informational only)\n"
    (num_field baseline "on_ms_total") (num_field fresh "on_ms_total")
    (num_field baseline "off_ms_total") (num_field fresh "off_ms_total");
  if !failures > 0 then begin
    Printf.printf "perf gate: %d metric(s) out of tolerance\n" !failures;
    exit 1
  end
  else Printf.printf "perf gate: all metrics within tolerance\n"

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7), plus optimizer ablations and Bechamel micro-benchmarks.

     dune exec bench/main.exe            -- all experiments
     dune exec bench/main.exe -- fig12   -- one experiment
     dune exec bench/main.exe -- fig12 --sf 0.4 --segs 8 --workers 4

   Experiments: fig12 opt-stats fig13 fig14 fig15 taqo par-opt stages ablate
   running-example profile opt-speed serve micro. Figures are printed as rows
   (query id, times, ratio); EXPERIMENTS.md records paper-vs-measured for
   each. An unknown experiment name or a non-positive --sf/--segs/--workers
   is a usage error (exit 2). *)

open Ir

let sf = ref 0.25
let nsegs = ref 8
let workers = ref 1
let hawq_mem = ref (64.0 *. 1024.0 *. 1024.0)

(* calibrated so that roughly a third of Impala's executed queries exceed
   the per-node budget (the starred bars of Fig. 13) and Presto exceeds it
   on every query it can plan *)
let impala_mem () = 600_000.0 *. !sf
let presto_mem () = 500.0 *. !sf

(* simulated-time budget standing in for the paper's 10000s timeout *)
let timeout_factor = 1000.0

let line = String.make 76 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

(* --- shared environment --- *)

type bench_env = {
  db : Tpcds.Datagen.db;
  env : Engines.Engine.env;
  cluster : Exec.Cluster.t; (* HAWQ/GPDB-style cluster: ample memory *)
}

let the_env : bench_env option ref = ref None

let get_env () =
  match !the_env with
  | Some e -> e
  | None ->
      Printf.printf "generating mini-TPC-DS data (sf=%.2f, %d segments)...\n%!"
        !sf !nsegs;
      let db = Tpcds.Datagen.generate ~sf:!sf () in
      let env = Engines.Engine.create_env ~nsegs:!nsegs db in
      let cluster = Engines.Engine.cluster_for env ~mem_per_seg:!hawq_mem in
      let e = { db; env; cluster } in
      the_env := Some e;
      e

let orca_config () =
  Orca.Orca_config.with_workers
    (Orca.Orca_config.with_segments Orca.Orca_config.default !nsegs)
    !workers

let bind_query (e : bench_env) sql =
  let accessor =
    Catalog.Accessor.create ~provider:e.env.Engines.Engine.provider
      ~cache:e.env.Engines.Engine.cache ()
  in
  (accessor, Sqlfront.Binder.bind_sql accessor sql)

let optimize_orca (e : bench_env) sql =
  let accessor, query = bind_query e sql in
  Orca.Optimizer.optimize ~config:(orca_config ()) accessor query

let plan_legacy (e : bench_env) sql =
  let accessor, query = bind_query e sql in
  Planner.Legacy_planner.plan_sql
    ~config:
      {
        Planner.Legacy_planner.segments = !nsegs;
        dp_limit = 5;
        broadcast_inner = false;
      }
    accessor query

let execute (e : bench_env) plan =
  let _, metrics = Exec.Executor.run e.cluster plan in
  metrics.Exec.Metrics.sim_seconds

(* ============================= Figure 12 ============================== *)

(* Orca vs the legacy Planner over the full 111-query workload: per-query
   speed-up ratio of simulated execution times, with the paper's timeout
   semantics (ratios capped at 1000x). *)
let fig12 () =
  let e = get_env () in
  header
    "Figure 12 -- speed-up ratio of Orca vs Planner (mini-TPC-DS, all 111 \
     queries)";
  let results = ref [] in
  List.iter
    (fun (q : Tpcds.Queries.def) ->
      try
        let report = optimize_orca e q.Tpcds.Queries.sql in
        let orca_t = execute e report.Orca.Optimizer.plan in
        let pplan = plan_legacy e q.Tpcds.Queries.sql in
        let planner_t = execute e pplan in
        let timeout = timeout_factor *. Float.max orca_t 1e-6 in
        let capped = planner_t > timeout in
        let ratio =
          if capped then timeout_factor
          else planner_t /. Float.max orca_t 1e-9
        in
        results := (q, orca_t, planner_t, ratio, capped) :: !results
      with ex ->
        Printf.printf "q%-3d failed: %s\n" q.Tpcds.Queries.qid
          (Gpos.Gpos_error.to_string ex))
    (Lazy.force Tpcds.Queries.all);
  let results = List.rev !results in
  Printf.printf "%-5s %-17s %12s %12s %10s\n" "query" "family" "orca(s)"
    "planner(s)" "speed-up";
  List.iter
    (fun ((q : Tpcds.Queries.def), ot, pt, ratio, capped) ->
      Printf.printf "%-5d %-17s %12.5f %12.5f %9.1fx%s\n" q.Tpcds.Queries.qid
        q.Tpcds.Queries.family ot pt ratio
        (if capped then " (timeout)" else ""))
    results;
  (* §7.2.2 summary rows *)
  let n = List.length results in
  let same_or_better =
    List.length (List.filter (fun (_, _, _, r, _) -> r >= 0.98) results)
  in
  let capped_count =
    List.length (List.filter (fun (_, _, _, _, c) -> c) results)
  in
  let suite_orca =
    List.fold_left (fun a (_, o, _, _, _) -> a +. o) 0.0 results
  in
  let suite_planner =
    List.fold_left (fun a (_, _, p, _, _) -> a +. p) 0.0 results
  in
  let big_wins =
    List.length (List.filter (fun (_, _, _, r, _) -> r >= 10.0) results)
  in
  header "Section 7.2.2 summary (paper: 80% same-or-better, 5x suite, 14 capped)";
  let ratios = List.sort compare (List.map (fun (_, _, _, r, _) -> r) results) in
  let median = List.nth ratios (List.length ratios / 2) in
  let geo =
    exp
      (List.fold_left (fun a r -> a +. log (Float.max r 1e-9)) 0.0 ratios
      /. float_of_int (List.length ratios))
  in
  Printf.printf "queries with Orca same or better       : %d / %d (%.0f%%)\n"
    same_or_better n
    (100.0 *. float_of_int same_or_better /. float_of_int n);
  Printf.printf "whole-suite speed-up (sum of times)     : %.1fx\n"
    (suite_planner /. Float.max suite_orca 1e-9);
  Printf.printf "median / geometric-mean speed-up        : %.1fx / %.1fx\n"
    median geo;
  Printf.printf "queries at the %.0fx timeout cap        : %d\n" timeout_factor
    capped_count;
  Printf.printf "queries with >= 10x speed-up            : %d\n" big_wins

(* ======================= optimization statistics ======================= *)

let opt_stats () =
  let e = get_env () in
  header
    "Optimization time and memory (paper §7.2.2: ~4s mean, ~200MB at 10TB \
     scale)";
  let times = ref [] and groups = ref [] and gexprs = ref [] in
  let heap = ref 0.0 in
  List.iter
    (fun (q : Tpcds.Queries.def) ->
      try
        let report = optimize_orca e q.Tpcds.Queries.sql in
        times := report.Orca.Optimizer.opt_time_ms :: !times;
        groups := report.Orca.Optimizer.groups :: !groups;
        gexprs := report.Orca.Optimizer.gexprs :: !gexprs;
        heap := Float.max !heap report.Orca.Optimizer.peak_heap_mb
      with _ -> ())
    (Lazy.force Tpcds.Queries.all);
  let ts = List.sort compare !times in
  let n = List.length ts in
  let mean = List.fold_left ( +. ) 0.0 ts /. float_of_int n in
  let median = List.nth ts (n / 2) in
  let p95 = List.nth ts (n * 95 / 100) in
  let avg_int l =
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  Printf.printf "queries optimized        : %d\n" n;
  Printf.printf "mean optimization time   : %.1f ms\n" mean;
  Printf.printf "median / p95             : %.1f / %.1f ms\n" median p95;
  Printf.printf "mean memo groups         : %.1f\n" (avg_int !groups);
  Printf.printf "mean group expressions   : %.1f\n" (avg_int !gexprs);
  Printf.printf "peak OCaml heap          : %.1f MB\n" !heap

(* ========================= Figures 13, 14, 15 ========================= *)

let engine_specs () =
  [
    Engines.Engine.hawq ~mem_per_seg:!hawq_mem;
    Engines.Engine.impala ~mem_per_seg:(impala_mem ());
    Engines.Engine.presto ~mem_per_seg:(presto_mem ());
    Engines.Engine.stinger ~mem_per_seg:!hawq_mem;
  ]

let run_engines () =
  let e = get_env () in
  let specs = engine_specs () in
  List.map
    (fun spec ->
      ( spec,
        List.map
          (fun q -> Engines.Engine.run spec e.env q)
          (Lazy.force Tpcds.Queries.all) ))
    specs

let engine_results = ref None

let get_engine_results () =
  match !engine_results with
  | Some r -> r
  | None ->
      let r = run_engines () in
      engine_results := Some r;
      r

let speedup_figure ~title ~(baseline : Engines.Engine.name) () =
  let results = get_engine_results () in
  let find name =
    List.find (fun (s, _) -> s.Engines.Engine.ename = name) results |> snd
  in
  let hawq = find Engines.Engine.HAWQ and other = find baseline in
  header title;
  Printf.printf "%-5s %-17s %12s %12s %10s\n" "query" "family" "HAWQ(s)"
    (Engines.Engine.name_to_string baseline ^ "(s)")
    "speed-up";
  let ratios = ref [] in
  List.iter2
    (fun (h : Engines.Engine.result) (o : Engines.Engine.result) ->
      let q = Tpcds.Queries.get h.Engines.Engine.qid in
      match (h.Engines.Engine.status, o.Engines.Engine.status) with
      | Engines.Engine.S_ok, Engines.Engine.S_ok ->
          let ht = Option.get h.Engines.Engine.sim_seconds in
          let ot = Option.get o.Engines.Engine.sim_seconds in
          let r = ot /. Float.max ht 1e-9 in
          ratios := r :: !ratios;
          Printf.printf "%-5d %-17s %12.5f %12.5f %9.1fx\n"
            h.Engines.Engine.qid q.Tpcds.Queries.family ht ot r
      | Engines.Engine.S_ok, Engines.Engine.S_oom ->
          Printf.printf "%-5d %-17s %12.5f %12s %10s\n" h.Engines.Engine.qid
            q.Tpcds.Queries.family
            (Option.get h.Engines.Engine.sim_seconds)
            "OOM(*)" "-"
      | _ -> ())
    hawq other;
  (match !ratios with
  | [] -> ()
  | rs ->
      let geo =
        exp (List.fold_left (fun a r -> a +. log r) 0.0 rs /. float_of_int (List.length rs))
      in
      let mean = List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs) in
      Printf.printf "\ncommonly-executed queries: %d; mean speed-up %.1fx (geometric %.1fx)\n"
        (List.length rs) mean geo)

let fig13 () =
  speedup_figure
    ~title:
      "Figure 13 -- HAWQ(Orca) vs Impala simulation (paper: 6x average, \
       starred queries out of memory)"
    ~baseline:Engines.Engine.Impala ()

let fig14 () =
  speedup_figure
    ~title:"Figure 14 -- HAWQ(Orca) vs Stinger simulation (paper: 21x average)"
    ~baseline:Engines.Engine.Stinger ()

let fig15 () =
  let results = get_engine_results () in
  header
    "Figure 15 -- TPC-DS query support (paper: optimize 111/31/12/19, \
     execute 111/20/0/19)";
  Printf.printf "%-10s %12s %12s\n" "system" "optimization" "execution";
  List.iter
    (fun ((spec : Engines.Engine.spec), rs) ->
      let optimized =
        List.length
          (List.filter
             (fun (r : Engines.Engine.result) ->
               match r.Engines.Engine.status with
               | Engines.Engine.S_unsupported _ | Engines.Engine.S_opt_failed _
                 ->
                   false
               | _ -> true)
             rs)
      in
      let executed =
        List.length
          (List.filter
             (fun (r : Engines.Engine.result) ->
               r.Engines.Engine.status = Engines.Engine.S_ok)
             rs)
      in
      Printf.printf "%-10s %12d %12d\n"
        (Engines.Engine.name_to_string spec.Engines.Engine.ename)
        optimized executed)
    results

(* =============================== TAQO ================================ *)

let taqo () =
  let e = get_env () in
  header "TAQO (paper §6.2, Fig. 11) -- cost model vs actual cost ordering";
  let queries = [ 1; 9; 27; 55; 64; 82 ] in
  List.iter
    (fun qid ->
      let q = Tpcds.Queries.get qid in
      try
        let report = optimize_orca e q.Tpcds.Queries.sql in
        let outcome =
          Orca.Taqo.run ~n:14 report ~execute:(fun p -> execute e p)
        in
        Printf.printf
          "q%-3d %-15s plans-in-space=%10.0f sampled=%2d score=%+.3f \
           chosen-plan-rank=%d\n"
          qid q.Tpcds.Queries.family outcome.Orca.Taqo.plans_in_space
          (List.length outcome.Orca.Taqo.points)
          outcome.Orca.Taqo.score outcome.Orca.Taqo.best_rank;
        List.iteri
          (fun i (p : Orca.Taqo.point) ->
            if i < 6 then
              Printf.printf "      est=%12.1f  actual=%10.6fs\n"
                p.Orca.Taqo.estimated p.Orca.Taqo.actual)
          (List.sort
             (fun (a : Orca.Taqo.point) b ->
               Float.compare a.Orca.Taqo.estimated b.Orca.Taqo.estimated)
             outcome.Orca.Taqo.points)
      with ex ->
        Printf.printf "q%-3d failed: %s\n" qid (Gpos.Gpos_error.to_string ex))
    queries

(* ======================= parallel optimization ======================== *)

let par_opt () =
  let e = get_env () in
  header "Parallel query optimization (paper §4.2) -- workers vs latency";
  Printf.printf
    "host exposes %d CPU core(s) (Domain.recommended_domain_count); with one\n\
     core, multi-worker runs can only add scheduling overhead -- see\n\
     EXPERIMENTS.md.\n\n"
    (Domain.recommended_domain_count ());
  (* a wide join whose exploration produces a large job graph *)
  let wide =
    "SELECT i_brand, count(*) AS c FROM store_sales, store_returns, item, \
     customer, customer_address, date_dim, store WHERE ss_item_sk = \
     sr_item_sk AND ss_ticket_number = sr_ticket_number AND ss_item_sk = \
     i_item_sk AND ss_customer_sk = c_customer_sk AND c_current_addr_sk = \
     ca_address_sk AND ss_sold_date_sk = d_date_sk AND ss_store_sk = \
     s_store_sk AND d_year = 2000 GROUP BY i_brand ORDER BY c DESC LIMIT 5"
  in
  let sqls = [ wide; (Tpcds.Queries.get 5).Tpcds.Queries.sql ] in
  List.iter
    (fun workers ->
      let t0 = Gpos.Clock.now () in
      let jobs = ref 0 in
      List.iter
        (fun sql ->
          let accessor, query = bind_query e sql in
          let config =
            Orca.Orca_config.with_workers (orca_config ()) workers
          in
          let report = Orca.Optimizer.optimize ~config accessor query in
          jobs := !jobs + report.Orca.Optimizer.jobs_created)
        sqls;
      Printf.printf "workers=%d  total=%7.1f ms  scheduler jobs=%d\n" workers
        (Gpos.Clock.ms_since t0) !jobs)
    [ 1; 2; 4; 8 ];
  (* The intra-query jobs above are microseconds long, so the global job
     queue dominates (see EXPERIMENTS.md). The same scheduler does scale
     once jobs are coarse: below, each job is one whole-query optimization
     (concurrent sessions sharing the MD cache, paper §5). *)
  Printf.printf
    "\ncoarse-grained: one job per query, 24 optimizations per run\n";
  let batch =
    List.concat_map
      (fun qid -> [ (Tpcds.Queries.get qid).Tpcds.Queries.sql ])
      [ 1; 5; 9; 13; 17; 21; 25; 29; 33; 37; 41; 45;
        49; 53; 57; 61; 65; 69; 73; 77; 81; 85; 89; 93 ]
  in
  let base_ms = ref 0.0 in
  List.iter
    (fun workers ->
      let sched = Gpos.Scheduler.create ~workers () in
      let t0 = Gpos.Clock.now () in
      let jobs =
        List.map
          (fun sql () ->
            let accessor, query = bind_query e sql in
            ignore (Orca.Optimizer.optimize ~config:(orca_config ()) accessor query);
            Gpos.Scheduler.Finished)
          batch
      in
      let spawned = ref false in
      Gpos.Scheduler.run sched
        (fun () ->
          if !spawned then Gpos.Scheduler.Finished
          else begin
            spawned := true;
            Gpos.Scheduler.Wait_for
              (List.map (fun run -> { Gpos.Scheduler.run; goal = None }) jobs)
          end);
      let ms = Gpos.Clock.ms_since t0 in
      if workers = 1 then base_ms := ms;
      Printf.printf "workers=%d  total=%7.1f ms  speed-up=%.2fx\n" workers ms
        (!base_ms /. Float.max 1e-9 ms))
    [ 1; 2; 4; 8 ]

(* ========================= multi-stage opt =========================== *)

let stages () =
  let e = get_env () in
  header "Multi-stage optimization (paper §4.1) -- staged vs full rule set";
  let sqls = [ 95; 21; 61; 71; 5 ] in
  List.iter
    (fun qid ->
      let q = Tpcds.Queries.get qid in
      let run config label =
        let accessor, query = bind_query e q.Tpcds.Queries.sql in
        let report = Orca.Optimizer.optimize ~config accessor query in
        Printf.printf
          "q%-3d %-12s opt=%7.1f ms  cost=%12.1f  stage=%s  groups=%d\n" qid
          label report.Orca.Optimizer.opt_time_ms
          report.Orca.Optimizer.plan.Expr.pcost
          report.Orca.Optimizer.stage_name report.Orca.Optimizer.groups
      in
      run (orca_config ()) "single";
      run
        (Orca.Orca_config.with_stages (orca_config ())
           (Xform.Ruleset.two_stage ~timeout_ms:200.0 ~cost_threshold:5000.0 ()))
        "two-stage")
    sqls

(* ============================= ablations ============================== *)

(* Toggle the §7.2.2 feature list off one at a time and measure the damage
   on queries sensitive to each feature. *)
let ablate () =
  let e = get_env () in
  header "Ablations -- the §7.2.2 features, disabled one at a time";
  let run_config config sql =
    let accessor, query = bind_query e sql in
    let report = Orca.Optimizer.optimize ~config accessor query in
    execute e report.Orca.Optimizer.plan
  in
  let compare_sql label config name sql =
    try
      let base = run_config (orca_config ()) sql in
      let without = run_config config sql in
      Printf.printf "%-22s %-4s  with=%10.6fs  without=%10.6fs  (%.1fx)\n"
        label name base without (without /. Float.max base 1e-9)
    with ex ->
      Printf.printf "%-22s %-4s  %s\n" label name (Gpos.Gpos_error.to_string ex)
  in
  let compare_feature label config qids =
    List.iter
      (fun qid ->
        let q = Tpcds.Queries.get qid in
        compare_sql label config (Printf.sprintf "q%d" qid) q.Tpcds.Queries.sql)
      qids
  in
  compare_feature "join-ordering"
    (Orca.Orca_config.without_rules (orca_config ())
       [ "JoinCommutativity"; "JoinAssociativity" ])
    [ 1; 5; 71 ];
  (* multi-stage aggregation pays off when groups are few and the input is
     not already distributed on the grouping key *)
  List.iter
    (fun (name, sql) ->
      compare_sql "multi-stage-agg"
        (Orca.Orca_config.without_rules (orca_config ()) [ "SplitGbAgg" ])
        name sql)
    [
      ( "agg1",
        "SELECT ss_store_sk, count(*) AS c, sum(ss_ext_sales_price) AS s FROM \
         store_sales GROUP BY ss_store_sk ORDER BY c DESC LIMIT 10" );
      ( "agg2",
        "SELECT ss_promo_sk, avg(ss_net_profit) AS p FROM store_sales GROUP \
         BY ss_promo_sk ORDER BY p DESC LIMIT 10" );
    ];
  compare_feature "partition-elimination"
    (Orca.Orca_config.without_rules (orca_config ()) [ "Select2Scan" ])
    [ 95; 96 ];
  (* decorrelation off makes these queries unsupported, like engines that
     lack the feature; report that *)
  compare_feature "decorrelation"
    (Orca.Orca_config.without_decorrelation (orca_config ()))
    [ 13; 17 ];
  List.iter
    (fun qid ->
      let q = Tpcds.Queries.get qid in
      compare_sql "column-pruning"
        (Orca.Orca_config.without_column_pruning (orca_config ()))
        (Printf.sprintf "q%d" qid) q.Tpcds.Queries.sql)
    [ 5; 61; 75 ];
  (* dynamic partition elimination is an executor-side feature: compare
     scanned rows and time with it on and off *)
  List.iter
    (fun (name, sql) ->
      try
        let report = optimize_orca e sql in
        let _, m_on =
          Exec.Executor.run ~dpe:true e.cluster report.Orca.Optimizer.plan
        in
        let _, m_off =
          Exec.Executor.run ~dpe:false e.cluster report.Orca.Optimizer.plan
        in
        Printf.printf
          "%-22s %-4s  with=%10.6fs  without=%10.6fs  (%.1fx, %d parts \
           pruned at run time, %.0f vs %.0f rows scanned)\n"
          "dynamic-part-elim" name m_on.Exec.Metrics.sim_seconds
          m_off.Exec.Metrics.sim_seconds
          (m_off.Exec.Metrics.sim_seconds
          /. Float.max 1e-9 m_on.Exec.Metrics.sim_seconds)
          m_on.Exec.Metrics.partitions_pruned_dynamically
          m_on.Exec.Metrics.rows_scanned m_off.Exec.Metrics.rows_scanned
      with ex ->
        Printf.printf "%-22s %-4s  %s\n" "dynamic-part-elim" name
          (Gpos.Gpos_error.to_string ex))
    [
      (* the predicate is on the dimension (d_year), so static elimination
         cannot touch the fact; only the join's observed values can *)
      ( "dpe1",
        "SELECT count(*) AS c FROM store_sales, date_dim WHERE \
         ss_sold_date_sk = d_date_sk AND d_year = 2000" );
      ( "dpe2",
        "SELECT i_category, sum(ws_ext_sales_price) AS s FROM web_sales, \
         date_dim, item WHERE ws_sold_date_sk = d_date_sk AND ws_item_sk = \
         i_item_sk AND d_year = 1999 AND d_moy = 6 GROUP BY i_category ORDER \
         BY s DESC LIMIT 5" );
    ]

(* ====================== observability profile ======================== *)

let profile_json = ref None

(* Per-query optimizer/executor profile over the whole workload, with a
   machine-readable JSON dump (--profile-json PATH, conventionally
   BENCH_profile.json) for tracking optimizer behaviour across commits. *)
let profile () =
  let e = get_env () in
  header
    "Observability profile (lib/obs) -- per-query optimizer/executor counters";
  let rows = ref [] in
  List.iter
    (fun (q : Tpcds.Queries.def) ->
      try
        let accessor, query = bind_query e q.Tpcds.Queries.sql in
        let config = Orca.Orca_config.with_obs (orca_config ()) in
        let report = Orca.Optimizer.optimize ~config accessor query in
        let _res, m = Exec.Executor.run e.cluster report.Orca.Optimizer.plan in
        rows := (q, report, m) :: !rows
      with ex ->
        Printf.printf "q%-3d failed: %s\n" q.Tpcds.Queries.qid
          (Gpos.Gpos_error.to_string ex))
    (Lazy.force Tpcds.Queries.all);
  let rows = List.rev !rows in
  Printf.printf "%-5s %9s %7s %7s %7s %9s %10s %11s\n" "query" "opt(ms)"
    "groups" "gexprs" "xforms" "jobs" "sim(s)" "scanned";
  List.iter
    (fun ((q : Tpcds.Queries.def), (r : Orca.Optimizer.report), m) ->
      Printf.printf "%-5d %9.2f %7d %7d %7d %9d %10.5f %11.0f\n"
        q.Tpcds.Queries.qid r.Orca.Optimizer.opt_time_ms r.Orca.Optimizer.groups
        r.Orca.Optimizer.gexprs r.Orca.Optimizer.xforms
        r.Orca.Optimizer.jobs_created m.Exec.Metrics.sim_seconds
        m.Exec.Metrics.rows_scanned)
    rows;
  let sum f = List.fold_left (fun a x -> a +. f x) 0.0 rows in
  Printf.printf
    "\ntotal: %d queries, %.1f ms optimization, %.4f s simulated execution\n"
    (List.length rows)
    (sum (fun (_, r, _) -> r.Orca.Optimizer.opt_time_ms))
    (sum (fun (_, _, m) -> m.Exec.Metrics.sim_seconds));
  match !profile_json with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 8192 in
      let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      pf "{\"sf\":%g,\"segments\":%d,\"workers\":%d,\"queries\":[\n" !sf !nsegs
        !workers;
      List.iteri
        (fun i ((q : Tpcds.Queries.def), (r : Orca.Optimizer.report), m) ->
          let kv =
            Exec.Metrics.to_kv m
            |> List.map (fun (k, v) -> Printf.sprintf "\"%s\":%g" k v)
            |> String.concat ","
          in
          pf
            "%s{\"qid\":%d,\"family\":%S,\"opt_ms\":%.3f,\"groups\":%d,\
             \"gexprs\":%d,\"contexts\":%d,\"xforms\":%d,\"jobs_created\":%d,\
             \"jobs_run\":%d,%s}"
            (if i = 0 then "" else ",\n")
            q.Tpcds.Queries.qid q.Tpcds.Queries.family
            r.Orca.Optimizer.opt_time_ms r.Orca.Optimizer.groups
            r.Orca.Optimizer.gexprs r.Orca.Optimizer.contexts
            r.Orca.Optimizer.xforms r.Orca.Optimizer.jobs_created
            r.Orca.Optimizer.jobs_run kv)
        rows;
      pf "\n],\"totals\":{\"queries\":%d,\"opt_ms\":%.3f,\"sim_seconds\":%g}}\n"
        (List.length rows)
        (sum (fun (_, r, _) -> r.Orca.Optimizer.opt_time_ms))
        (sum (fun (_, _, m) -> m.Exec.Metrics.sim_seconds));
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "profile JSON written to %s\n" path

(* ==================== optimization speed (opt-speed) ================== *)

let opt_json = ref None

(* The hot-path speedup benchmark: every TPC-DS query optimized twice — once
   with the caches on (the default config) and once with [without_speedups]
   (structural dedup, no stats memo, no rule pre-filter, no winner reuse) —
   timing both and proving the chosen plan and its cost identical. A third
   pass with observability on collects the machine-independent counters
   (Memo sizes, rule pre-filter skips, base-cost reuses) that the CI perf
   gate compares across commits; wall times are recorded in the JSON but not
   gated across machines (see bench/gate.ml). *)
let opt_speed () =
  let e = get_env () in
  header
    "opt-speed -- optimization wall time, caches on vs off (identity-checked)";
  let cfg_on = orca_config () in
  let cfg_off = Orca.Orca_config.without_speedups cfg_on in
  let cfg_obs = Orca.Orca_config.with_obs cfg_on in
  (* per-query on-config latencies go through the same log-bucketed
     histogram production telemetry uses, so the p50/p95/p99 written to
     the JSON carry the documented ~4.4% rank-error bound *)
  let lat_reg = Telemetry.Metrics.create () in
  let lat_hist =
    Telemetry.Metrics.histogram lat_reg
      ~help:"opt-speed on-config latency (ms)" "bench_opt_on_ms"
  in
  let rows = ref [] in
  let mismatches = ref [] in
  List.iter
    (fun (q : Tpcds.Queries.def) ->
      let qid = q.Tpcds.Queries.qid in
      let opt config =
        let accessor, query = bind_query e q.Tpcds.Queries.sql in
        Orca.Optimizer.optimize ~config accessor query
      in
      (* best-of-3 wall time per configuration: optimization runs in the
         low-millisecond range where GC pauses and OS scheduling dominate a
         single sample *)
      let opt_min config =
        let best = ref (opt config) in
        for _ = 2 to 3 do
          let r = opt config in
          if
            r.Orca.Optimizer.opt_time_ms
            < !best.Orca.Optimizer.opt_time_ms
          then best := r
        done;
        !best
      in
      try
        let r_on = opt_min cfg_on in
        let r_off = opt_min cfg_off in
        (* identity: the speedups must not change the plan, its cost, or the
           shape of the search (same Memo growth) *)
        let dxl_on = Dxl.Dxl_plan.to_string r_on.Orca.Optimizer.plan in
        let dxl_off = Dxl.Dxl_plan.to_string r_off.Orca.Optimizer.plan in
        if dxl_on <> dxl_off then
          mismatches :=
            Printf.sprintf "q%d: plan DXL differs" qid :: !mismatches;
        if
          r_on.Orca.Optimizer.plan.Expr.pcost
          <> r_off.Orca.Optimizer.plan.Expr.pcost
        then
          mismatches :=
            Printf.sprintf "q%d: cost %f <> %f" qid
              r_on.Orca.Optimizer.plan.Expr.pcost
              r_off.Orca.Optimizer.plan.Expr.pcost
            :: !mismatches;
        if
          r_on.Orca.Optimizer.groups <> r_off.Orca.Optimizer.groups
          || r_on.Orca.Optimizer.gexprs <> r_off.Orca.Optimizer.gexprs
        then
          mismatches :=
            Printf.sprintf "q%d: memo differs (%d/%d groups, %d/%d gexprs)"
              qid r_on.Orca.Optimizer.groups r_off.Orca.Optimizer.groups
              r_on.Orca.Optimizer.gexprs r_off.Orca.Optimizer.gexprs
            :: !mismatches;
        Telemetry.Metrics.observe lat_hist r_on.Orca.Optimizer.opt_time_ms;
        let r_obs = opt cfg_obs in
        let obs = Option.get r_obs.Orca.Optimizer.obs in
        let fired, prefiltered =
          List.fold_left
            (fun (f, p) (r : Obs.Report.rule_stat) ->
              (f + r.Obs.Report.r_fired, p + r.Obs.Report.r_prefiltered))
            (0, 0) obs.Obs.Report.rules
        in
        rows := (q, r_on, r_off, obs, fired, prefiltered) :: !rows
      with ex ->
        Printf.printf "q%-3d failed: %s\n" qid (Gpos.Gpos_error.to_string ex))
    (Lazy.force Tpcds.Queries.all);
  let rows = List.rev !rows in
  Printf.printf "%-5s %9s %9s %8s %7s %7s %7s %7s %7s\n" "query" "on(ms)"
    "off(ms)" "speedup" "groups" "gexprs" "prefilt" "reuse" "wskip";
  List.iter
    (fun ((q : Tpcds.Queries.def), r_on, r_off, obs, _fired, prefiltered) ->
      let on = r_on.Orca.Optimizer.opt_time_ms in
      let off = r_off.Orca.Optimizer.opt_time_ms in
      Printf.printf "%-5d %9.2f %9.2f %7.2fx %7d %7d %7d %7d %7d\n"
        q.Tpcds.Queries.qid on off
        (off /. Float.max on 1e-9)
        r_on.Orca.Optimizer.groups r_on.Orca.Optimizer.gexprs prefiltered
        obs.Obs.Report.cost.Obs.Report.c_base_reuses
        obs.Obs.Report.cost.Obs.Report.c_winner_skips)
    rows;
  let sum f = List.fold_left (fun a x -> a + f x) 0 rows in
  let sumf f = List.fold_left (fun a x -> a +. f x) 0.0 rows in
  let on_total =
    sumf (fun (_, r, _, _, _, _) -> r.Orca.Optimizer.opt_time_ms)
  in
  let off_total =
    sumf (fun (_, _, r, _, _, _) -> r.Orca.Optimizer.opt_time_ms)
  in
  let n = List.length rows in
  let geomean =
    exp
      (sumf (fun (_, r_on, r_off, _, _, _) ->
           log
             (Float.max 1e-9
                (r_off.Orca.Optimizer.opt_time_ms
                /. Float.max 1e-9 r_on.Orca.Optimizer.opt_time_ms)))
      /. float_of_int (max 1 n))
  in
  let groups = sum (fun (_, r, _, _, _, _) -> r.Orca.Optimizer.groups) in
  let gexprs = sum (fun (_, r, _, _, _, _) -> r.Orca.Optimizer.gexprs) in
  let fired = sum (fun (_, _, _, _, f, _) -> f) in
  let prefiltered = sum (fun (_, _, _, _, _, p) -> p) in
  let base_reuses =
    sum (fun (_, _, _, o, _, _) -> o.Obs.Report.cost.Obs.Report.c_base_reuses)
  in
  let winner_skips =
    sum (fun (_, _, _, o, _, _) ->
        o.Obs.Report.cost.Obs.Report.c_winner_skips)
  in
  let interned =
    sum (fun (_, _, _, o, _, _) ->
        o.Obs.Report.memo.Obs.Report.m_ops_interned)
  in
  let intern_hits =
    sum (fun (_, _, _, o, _, _) -> o.Obs.Report.memo.Obs.Report.m_intern_hits)
  in
  let lat = Telemetry.Metrics.hsnap lat_hist in
  let p50 = Telemetry.Metrics.quantile lat 0.50 in
  let p95 = Telemetry.Metrics.quantile lat 0.95 in
  let p99 = Telemetry.Metrics.quantile lat 0.99 in
  Printf.printf
    "\ntotal: %d queries  on=%.1f ms  off=%.1f ms  (%.2fx total, %.2fx \
     geomean)\n"
    n on_total off_total
    (off_total /. Float.max 1e-9 on_total)
    geomean;
  Printf.printf "on-config latency quantiles: p50=%.2f p95=%.2f p99=%.2f ms\n"
    p50 p95 p99;
  Printf.printf
    "rule applications: %d fired, %d pre-filtered (%.1f%% skipped)\n" fired
    prefiltered
    (100.0
    *. float_of_int prefiltered
    /. float_of_int (max 1 (fired + prefiltered)));
  Printf.printf
    "base-cost reuses: %d  winner-spawn skips: %d  interning: %d ops, %d \
     hits\n"
    base_reuses winner_skips interned intern_hits;
  (match !mismatches with
  | [] -> Printf.printf "identity: all %d plans and costs byte-identical\n" n
  | ms ->
      Printf.printf "IDENTITY VIOLATIONS:\n";
      List.iter (Printf.printf "  %s\n") (List.rev ms));
  (match !opt_json with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 8192 in
      let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      pf
        "{\"experiment\":\"opt-speed\",\"sf\":%g,\"segments\":%d,\"workers\":%d,\n"
        !sf !nsegs !workers;
      pf "\"queries\":[\n";
      List.iteri
        (fun i ((q : Tpcds.Queries.def), r_on, r_off, obs, f, p) ->
          pf
            "%s{\"qid\":%d,\"on_ms\":%.3f,\"off_ms\":%.3f,\"groups\":%d,\
             \"gexprs\":%d,\"rule_fired\":%d,\"rule_prefiltered\":%d,\
             \"base_reuses\":%d,\"winner_skips\":%d}"
            (if i = 0 then "" else ",\n")
            q.Tpcds.Queries.qid r_on.Orca.Optimizer.opt_time_ms
            r_off.Orca.Optimizer.opt_time_ms r_on.Orca.Optimizer.groups
            r_on.Orca.Optimizer.gexprs f p
            obs.Obs.Report.cost.Obs.Report.c_base_reuses
            obs.Obs.Report.cost.Obs.Report.c_winner_skips)
        rows;
      pf "\n],\n";
      pf
        "\"summary\":{\"queries\":%d,\"identity_violations\":%d,\
         \"on_ms_total\":%.3f,\"off_ms_total\":%.3f,\
         \"speedup_geomean\":%.4f,\"p50_ms\":%.4f,\"p95_ms\":%.4f,\
         \"p99_ms\":%.4f,\"groups\":%d,\"gexprs\":%d,\
         \"rule_fired\":%d,\"rule_prefiltered\":%d,\"base_reuses\":%d,\
         \"winner_skips\":%d,\"ops_interned\":%d,\"intern_hits\":%d}}\n"
        n
        (List.length !mismatches)
        on_total off_total geomean p50 p95 p99 groups gexprs fired prefiltered
        base_reuses winner_skips interned intern_hits;
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "opt-speed JSON written to %s\n" path);
  if !mismatches <> [] then exit 1

(* ====================== serve (optimizer-as-a-service) ================ *)

let serve_requests = ref 2000
let serve_events = ref None (* --events PATH: dump the event-log ring *)

(* Whitespace-only mangling: the token stream — and therefore the normalized
   text, fingerprint and parameter vector — is unchanged, so the request must
   be an exact cache hit. *)
let respace st sql =
  let buf = Buffer.create (String.length sql + 16) in
  String.iter
    (fun c ->
      if c = ' ' && Random.State.bool st then Buffer.add_string buf "  "
      else Buffer.add_char buf c)
    sql;
  Buffer.add_string buf "   ";
  Buffer.contents buf

(* Replace the last bare integer literal (outside string literals, not part
   of an identifier or float) with value+1: a same-shape request whose
   parameter vector differs in one position — the cache's rebind path.
   Returns [None] when the query has no such literal. *)
let perturb_int sql =
  let n = String.length sql in
  let ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '.'
  in
  let best = ref None in
  let i = ref 0 and in_str = ref false in
  while !i < n do
    let c = sql.[!i] in
    if !in_str then begin
      if c = '\'' then in_str := false;
      incr i
    end
    else if c = '\'' then begin
      in_str := true;
      incr i
    end
    else if c >= '0' && c <= '9' then begin
      let s = !i in
      while !i < n && sql.[!i] >= '0' && sql.[!i] <= '9' do
        incr i
      done;
      let pre_ok = s = 0 || not (ident_char sql.[s - 1]) in
      let post_ok = !i >= n || not (ident_char sql.[!i]) in
      if pre_ok && post_ok then best := Some (s, !i - s)
    end
    else incr i
  done;
  match !best with
  | None -> None
  | Some (s, len) -> (
      match int_of_string_opt (String.sub sql s len) with
      | None -> None
      | Some v ->
          Some
            (String.sub sql 0 s
            ^ string_of_int (v + 1)
            ^ String.sub sql (s + len) (n - s - len)))

(* Optimizer-as-a-service throughput: a resident {!Server.t} fields a seeded
   deterministic mix of requests over the supported TPC-DS queries — mostly
   verbatim repeats and whitespace variants (exact cache hits), plus a slice
   of constant-perturbed texts exercising the rebind path. A sample of hit
   replies is audited byte-for-byte against an independent cold optimization
   of the same request text: a cached plan that differs from fresh
   optimization is an identity violation and fails the run. The counters are
   machine-independent (fixed PRNG seed); qps and the latency quantiles
   measure the machine and are gated generously (see bench/gate.ml --serve). *)
let serve_bench () =
  let e = get_env () in
  header
    "serve -- resident optimizer service: plan-cache hit rate and throughput";
  let server =
    Server.of_provider ~config:(orca_config ()) e.env.Engines.Engine.provider
  in
  (* cold pass over the suite: every supported query becomes a shape; its
     first optimization is the cache's resident plan *)
  let pool = ref [] in
  let unsupported = ref 0 in
  List.iter
    (fun (q : Tpcds.Queries.def) ->
      match Server.optimize_sql server q.Tpcds.Queries.sql with
      | Ok _ -> pool := (q.Tpcds.Queries.qid, q.Tpcds.Queries.sql) :: !pool
      | Error _ -> incr unsupported)
    (Lazy.force Tpcds.Queries.all);
  let shapes = Array.of_list (List.rev !pool) in
  let nshapes = Array.length shapes in
  Printf.printf "warm-up: %d shapes cached (%d unsupported)\n%!" nshapes
    !unsupported;
  (* the cold pass (with its unsupported-query rejects) is warm-up, not
     service: restart the SLO window so the report covers the measured mix *)
  Sre.Slo.reset (Server.slo server);
  (* measured phase: fixed seed, so the hit/rebind/miss counts are
     deterministic across machines and gated as shape metrics *)
  let st = Random.State.make [| 0x09ca; nshapes |] in
  let lat_reg = Telemetry.Metrics.create () in
  let lat_hist =
    Telemetry.Metrics.histogram lat_reg
      ~help:"serve request latency (ms)" "bench_serve_ms"
  in
  let hits = ref 0 and rebinds = ref 0 and misses = ref 0 in
  let errors = ref 0 in
  let audits = ref 0 and violations = ref [] in
  let max_audits = 25 in
  let n_req = !serve_requests in
  let t0 = Gpos.Clock.now () in
  for i = 1 to n_req do
    let qid, sql = shapes.(Random.State.int st nshapes) in
    let roll = Random.State.int st 100 in
    let text =
      if roll < 80 then sql
      else if roll < 92 then respace st sql
      else match perturb_int sql with Some s -> s | None -> sql
    in
    match Server.optimize_sql server text with
    | Error _ -> incr errors
    | Ok r -> (
        Telemetry.Metrics.observe lat_hist r.Server.r_ms;
        match r.Server.r_result with
        | Server.Hit ->
            incr hits;
            (* byte-identity: a cache hit must serialize exactly like a
               fresh, cache-free optimization of the same request text *)
            if !audits < max_audits && i mod 37 = 0 then begin
              incr audits;
              let cold =
                Dxl.Dxl_plan.to_string (optimize_orca e text).Orca.Optimizer.plan
              in
              if Lazy.force r.Server.r_dxl <> cold then
                violations :=
                  Printf.sprintf "q%d: hit plan differs from cold optimization"
                    qid
                  :: !violations
            end
        | Server.Rebound -> incr rebinds
        | Server.Missed -> incr misses)
  done;
  let wall_ms = Gpos.Clock.ms_since t0 in
  let s = Server.stats server in
  let c = s.Server.s_cache in
  let answered = !hits + !rebinds in
  let hit_rate = float_of_int answered /. float_of_int (max 1 n_req) in
  let qps = float_of_int n_req /. Float.max 1e-9 (wall_ms /. 1000.0) in
  let lat = Telemetry.Metrics.hsnap lat_hist in
  let p50 = Telemetry.Metrics.quantile lat 0.50 in
  let p95 = Telemetry.Metrics.quantile lat 0.95 in
  let p99 = Telemetry.Metrics.quantile lat 0.99 in
  Printf.printf
    "requests : %d over %d shapes in %.1f ms (%.0f requests/s)\n" n_req nshapes
    wall_ms qps;
  Printf.printf
    "cache    : %d hits, %d rebinds, %d misses (hit rate %.1f%%), %d \
     evictions, %d collisions\n"
    !hits !rebinds !misses (100.0 *. hit_rate) c.Server.Plan_cache.evictions
    c.Server.Plan_cache.collisions;
  Printf.printf "latency  : p50=%.2f p95=%.2f p99=%.2f ms\n" p50 p95 p99;
  (match !violations with
  | [] ->
      Printf.printf
        "identity : %d sampled hits byte-identical to cold optimization\n"
        !audits
  | ms ->
      Printf.printf "IDENTITY VIOLATIONS:\n";
      List.iter (Printf.printf "  %s\n") (List.rev ms));
  let slo_report = Sre.Slo.report (Server.slo server) in
  Printf.printf
    "slo      : availability=%.4f attainment=%.4f latency_burn=%.3f \
     availability_burn=%.3f (%s)\n"
    slo_report.Sre.Slo.r_availability slo_report.Sre.Slo.r_attainment
    slo_report.Sre.Slo.r_latency_burn slo_report.Sre.Slo.r_availability_burn
    (if Sre.Slo.healthy slo_report then "healthy" else "violated");
  (match !serve_events with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Sre.Events.to_json_lines (Server.events server));
      close_out oc;
      Printf.printf "serve event log written to %s (%d retained of %d)\n" path
        (List.length (Sre.Events.entries (Server.events server)))
        (Sre.Events.total (Server.events server)));
  (match !opt_json with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 1024 in
      let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      pf
        "{\"experiment\":\"serve\",\"sf\":%g,\"segments\":%d,\"workers\":%d,\n"
        !sf !nsegs !workers;
      pf
        "\"summary\":{\"requests\":%d,\"shapes\":%d,\"errors\":%d,\
         \"hits\":%d,\"rebinds\":%d,\"misses\":%d,\"evictions\":%d,\
         \"collisions\":%d,\"identity_checks\":%d,\
         \"identity_violations\":%d,\"hit_rate\":%.4f,\"qps\":%.2f,\
         \"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f,\
         \"wall_ms\":%.3f,\n"
        n_req nshapes !errors !hits !rebinds !misses
        c.Server.Plan_cache.evictions c.Server.Plan_cache.collisions !audits
        (List.length !violations)
        hit_rate qps p50 p95 p99 wall_ms;
      pf "\"slo\":%s}}\n" (Sre.Slo.to_json slo_report);
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "serve JSON written to %s\n" path);
  if !violations <> [] then exit 1

(* ======================== running example (§4.1) ====================== *)

let running_example () =
  header "Running example (paper §4.1, Figs. 4-7) -- see examples/running_example.ml";
  Printf.printf "dune exec examples/running_example.exe\n"

(* ========================= Bechamel micro-benches ====================== *)

let micro () =
  let e = get_env () in
  header "Bechamel micro-benchmarks (one per figure/table driver)";
  let open Bechamel in
  let sql_simple = (Tpcds.Queries.get 95).Tpcds.Queries.sql in
  let sql_star = (Tpcds.Queries.get 1).Tpcds.Queries.sql in
  let sql_join5 = (Tpcds.Queries.get 5).Tpcds.Queries.sql in
  let sql_cte = (Tpcds.Queries.get 31).Tpcds.Queries.sql in
  let mk_opt name sql =
    Test.make ~name (Staged.stage (fun () -> ignore (optimize_orca e sql)))
  in
  let hist_a =
    Stats.Histogram.build
      (List.init 4096 (fun i -> Datum.Int (i * 7 mod 1000)))
  in
  let hist_b =
    Stats.Histogram.build (List.init 4096 (fun i -> Datum.Int (i mod 500)))
  in
  let report = optimize_orca e sql_star in
  let tests =
    [
      mk_opt "fig12/optimize-date-range" sql_simple;
      mk_opt "fig12/optimize-star-join" sql_star;
      mk_opt "fig12/optimize-5way-join" sql_join5;
      mk_opt "fig12/optimize-cte" sql_cte;
      Test.make ~name:"stats/histogram-join"
        (Staged.stage (fun () -> ignore (Stats.Histogram.join_eq hist_a hist_b)));
      Test.make ~name:"memo/plan-extraction"
        (Staged.stage (fun () ->
             ignore
               (Memolib.Extract.best_plan report.Orca.Optimizer.memo
                  (Memolib.Memo.root report.Orca.Optimizer.memo)
                  report.Orca.Optimizer.root_req)));
      Test.make ~name:"exec/run-star-join"
        (Staged.stage (fun () -> ignore (execute e report.Orca.Optimizer.plan)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) () in
    let results =
      Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ])
    in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        instance results
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
            Printf.printf "%-32s %12.1f ns/run\n" name est
        | _ -> Printf.printf "%-32s (no estimate)\n" name)
      results
  in
  List.iter benchmark tests

(* ================================ main ================================ *)

let all_experiments () =
  fig12 ();
  opt_stats ();
  fig13 ();
  fig14 ();
  fig15 ();
  taqo ();
  par_opt ();
  stages ();
  ablate ();
  micro ()

let experiments =
  [
    ("fig12", fig12);
    ("opt-stats", opt_stats);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("taqo", taqo);
    ("par-opt", par_opt);
    ("stages", stages);
    ("ablate", ablate);
    ("running-example", running_example);
    ("profile", profile);
    ("opt-speed", opt_speed);
    ("serve", serve_bench);
    ("micro", micro);
  ]

let usage () =
  Printf.eprintf
    "usage: bench [EXPERIMENT...] [--sf F] [--segs N] [--workers N]\n\
    \       [--requests N] [--profile-json PATH] [--json PATH]\n\
     experiments: %s\n"
    (String.concat " " (List.map fst experiments))

let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bench: %s\n" msg;
      usage ();
      exit 2)
    fmt

let () =
  let positive_float flag v =
    match float_of_string_opt v with
    | Some f when f > 0.0 -> f
    | _ -> usage_error "%s expects a positive number, got %S" flag v
  in
  let positive_int flag v =
    match int_of_string_opt v with
    | Some i when i > 0 -> i
    | _ -> usage_error "%s expects a positive integer, got %S" flag v
  in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | "--sf" :: v :: rest ->
        sf := positive_float "--sf" v;
        parse rest
    | "--segs" :: v :: rest ->
        nsegs := positive_int "--segs" v;
        parse rest
    | "--workers" :: v :: rest ->
        workers := positive_int "--workers" v;
        parse rest
    | "--requests" :: v :: rest ->
        serve_requests := positive_int "--requests" v;
        parse rest
    | "--events" :: v :: rest ->
        serve_events := Some v;
        parse rest
    | "--profile-json" :: v :: rest ->
        profile_json := Some v;
        parse rest
    | "--json" :: v :: rest ->
        opt_json := Some v;
        parse rest
    | [ ("--sf" | "--segs" | "--workers" | "--requests" | "--events"
        | "--profile-json" | "--json") as f ]
      ->
        usage_error "%s expects a value" f
    | x :: rest -> x :: parse rest
    | [] -> []
  in
  let cmds = parse (List.tl args) in
  (* reject unknown names before running anything *)
  List.iter
    (fun name ->
      if not (List.mem_assoc name experiments) then
        usage_error "unknown experiment %S" name)
    cmds;
  let dispatch name = (List.assoc name experiments) () in
  match cmds with
  (* bare --profile-json means "emit the profile", not "run everything" *)
  | [] -> if !profile_json <> None then profile () else all_experiments ()
  | cmds ->
      List.iter dispatch cmds;
      if !profile_json <> None && not (List.mem "profile" cmds) then profile ()
